//! The multi-tariff approach (paper §3.3) — the one the authors could
//! not run: "Unfortunately, we do not have the required time series for
//! this approach, thus, we cannot show any results of it."
//!
//! The simulator closes that gap: the same household is observed for a
//! month under a flat tariff (the reference) and a month under an
//! overnight time-of-use tariff it responds to by delaying flexible
//! appliances into the cheap window. The extractor sees only the two
//! series — no tariff information — and recovers the shifted load.
//!
//! ```sh
//! cargo run --example multi_tariff_study
//! ```

use flextract::core::{
    ExtractionConfig, ExtractionInput, FlexibilityExtractor, MultiTariffExtractor,
};
use flextract::sim::{simulate_tariff_pair, HouseholdArchetype, HouseholdConfig, TariffResponse};
use flextract::time::{Duration, Resolution, TimeRange};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let household = HouseholdConfig::new(11, HouseholdArchetype::Couple);
    let flat_month = TimeRange::starting_at("2013-02-04".parse().unwrap(), Duration::weeks(4))
        .expect("four weeks is positive");
    let tou_month = TimeRange::starting_at("2013-03-04".parse().unwrap(), Duration::weeks(4))
        .expect("four weeks is positive");

    // Consumers delay flexible usage into the post-22:00 low tariff
    // with 85 % probability.
    let response = TariffResponse::overnight(0.85);
    let (flat, multi) = simulate_tariff_pair(&household, flat_month, tou_month, response);

    let shifted: Vec<_> = multi
        .activations
        .iter()
        .filter(|a| a.was_shifted())
        .collect();
    let shifted_energy: f64 = shifted.iter().map(|a| a.energy_kwh).sum();
    println!(
        "simulated: {} activations, {} tariff-shifted ({:.1} kWh moved into the night)",
        multi.activations.len(),
        shifted.len(),
        shifted_energy
    );
    for a in shifted.iter().take(4) {
        println!(
            "  {} (delayed {} from {})",
            a,
            a.shift_amount(),
            a.shifted_from.unwrap().time()
        );
    }

    // --- Extraction: compare observed month against the reference.
    let reference = flat.series_at(Resolution::MIN_15);
    let observed = multi.series_at(Resolution::MIN_15);
    let extractor = MultiTariffExtractor::new(ExtractionConfig::default());
    let out = extractor
        .extract(
            &ExtractionInput::household(&observed).with_reference(&reference),
            &mut StdRng::seed_from_u64(3),
        )
        .expect("reference provided");
    out.check_invariants(&observed)
        .expect("energy accounting holds");

    println!(
        "\nmulti-tariff extraction: {} flex-offers, {:.1} kWh ({:.1} % of consumption)",
        out.flex_offers.len(),
        out.extracted_energy(),
        out.achieved_share() * 100.0
    );
    // Where did the offers land? Count start hours: the arrivals live
    // in the low-tariff window (22:00–06:00), and the earliest starts
    // (the windows the load vacated) earlier in the day.
    let mut night_arrivals = 0;
    for offer in &out.flex_offers {
        let arrival_hour = offer.latest_start().time().hour;
        if !(6..22).contains(&arrival_hour) {
            night_arrivals += 1;
        }
    }
    println!(
        "{night_arrivals} of {} offers arrive inside the 22:00-06:00 low-tariff window",
        out.flex_offers.len()
    );
    for offer in out.flex_offers.iter().take(4) {
        println!(
            "  {offer} (window {} → {})",
            offer.earliest_start().time(),
            offer.latest_start().time()
        );
    }
}
