//! The full MIRABEL loop the paper's extraction exists to feed:
//! simulate a fleet → extract flex-offers per household → aggregate
//! into macro offers (ref [4]) → schedule against wind production
//! (ref [5]) → disaggregate back to household schedules.
//!
//! ```sh
//! cargo run --example mirabel_pipeline
//! ```

use flextract::agg::{aggregate_offers, schedule_offers, AggregationConfig, ScheduleConfig};
use flextract::core::{ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor};
use flextract::flexoffer::FlexOffer;
use flextract::series::TimeSeries;
use flextract::sim::{simulate_fleet, simulate_wind_production, FleetConfig, WindFarmConfig};
use flextract::time::{Duration, Resolution, TimeRange};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let horizon = TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::days(7))
        .expect("a week is positive");

    // --- 1. A small MIRABEL market area: 25 mixed households.
    let fleet_cfg = FleetConfig {
        households: 25,
        base_seed: 2013,
        threads: 4,
        ..FleetConfig::default()
    };
    let fleet = simulate_fleet(&fleet_cfg, horizon);
    println!(
        "fleet: {} households, {:.0} kWh over {} days",
        fleet.households.len(),
        fleet.total.total_energy(),
        7
    );

    // --- 2. Per-household peak-based extraction (the approach MIRABEL
    // actually uses for its evaluation, §6).
    let extractor = PeakExtractor::new(ExtractionConfig::default());
    let mut offers: Vec<FlexOffer> = Vec::new();
    let mut residual: Option<TimeSeries> = None;
    for h in &fleet.households {
        let market = h.series_at(Resolution::MIN_15);
        let out = extractor
            .extract(
                &ExtractionInput::household(&market),
                &mut StdRng::seed_from_u64(1000 + h.config.id),
            )
            .expect("household input is non-empty");
        offers.extend(out.flex_offers);
        residual = Some(match residual {
            None => out.modified_series,
            Some(acc) => acc
                .add(&out.modified_series)
                .expect("fleet shares one grid"),
        });
    }
    let residual = residual.expect("fleet is non-empty");
    println!("extraction: {} micro flex-offers", offers.len());

    // --- 3. Aggregation into macro offers.
    let aggregates =
        aggregate_offers(&offers, &AggregationConfig::default()).expect("offers are non-empty");
    let micro: usize = aggregates.iter().map(|a| a.member_count()).sum();
    println!(
        "aggregation: {} macro offers from {} micro (compression {:.1}×)",
        aggregates.len(),
        micro,
        micro as f64 / aggregates.len() as f64
    );

    // --- 4. Scheduling against a wind farm sized to the fleet.
    let farm = WindFarmConfig {
        capacity_kw: fleet.total.total_energy() / (7.0 * 24.0),
        seed: 7,
        ..WindFarmConfig::default()
    };
    let production = simulate_wind_production(&farm, horizon, Resolution::MIN_15);
    let agg_offers: Vec<FlexOffer> = aggregates.iter().map(|a| a.offer.clone()).collect();
    let result = schedule_offers(
        &agg_offers,
        &residual,
        &production,
        &ScheduleConfig::default(),
        &mut StdRng::seed_from_u64(99),
    )
    .expect("production overlaps the horizon");
    println!(
        "scheduling: squared imbalance {:.0} → {:.0} ({:.1} % better), RES utilisation {:.0} % → {:.0} %",
        result.before.squared_imbalance,
        result.after.squared_imbalance,
        result.improvement() * 100.0,
        result.before.res_utilisation * 100.0,
        result.after.res_utilisation * 100.0,
    );

    // --- 5. Disaggregate the first macro schedule back to households.
    let first = &aggregates[0];
    let scheduled = result
        .scheduled
        .iter()
        .find(|s| s.offer().id() == first.offer.id())
        .expect("every aggregate was scheduled");
    let members = first
        .disaggregate(scheduled)
        .expect("disaggregation is exact");
    println!(
        "disaggregation: macro offer {} at {} fans out to {} household schedules:",
        first.offer.id(),
        scheduled.start(),
        members.len()
    );
    for m in members.iter().take(5) {
        println!("  {m}");
    }
}
