//! The paper's §6 future-work agenda, implemented end to end:
//!
//! 1. **real-time flex-offer generation** — a generator trained on a
//!    household's history emits an offer the minute a scheduled
//!    appliance switches on;
//! 2. **production flex-offers** — a wind producer turns its forecast
//!    ramps into offers ("start … either in 2 hours or 3 hours
//!    ahead"), a conventional producer offers almost all its program;
//! 3. **industrial consumers** — the same extraction machinery runs
//!    unchanged on a simulated two-shift plant.
//!
//! ```sh
//! cargo run --example future_work
//! ```

use flextract::appliance::Catalog;
use flextract::core::{
    ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor, ProductionExtractor,
    RealTimeGenerator,
};
use flextract::series::forecast::{forecast, ForecastMethod};
use flextract::sim::{
    simulate_household, simulate_industrial, simulate_wind_production, HouseholdArchetype,
    HouseholdConfig, IndustrialConfig, WindFarmConfig,
};
use flextract::time::{Duration, Resolution, TimeRange};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let horizon = |start: &str, days: i64| {
        TimeRange::starting_at(start.parse().unwrap(), Duration::days(days)).unwrap()
    };

    // ---------- 1. Real-time generation (§6: "real-time flex-offer
    // generators, which detect flexibilities and formulate flex-offers
    // based on the usual appliance usage or the given (mined) schedule").
    println!("== real-time flex-offer generation ==");
    let household = HouseholdConfig::new(21, HouseholdArchetype::Couple);
    let history = simulate_household(&household, horizon("2013-03-04", 14));
    let generator = RealTimeGenerator::train(
        Catalog::extended(),
        &history.series,
        ExtractionConfig::default(),
    )
    .expect("two weeks of history");
    println!(
        "trained on {} days; mined schedules for {} appliances",
        14,
        generator.schedules().len()
    );
    // Stream the next live day minute-by-minute.
    let live = simulate_household(&household.clone().with_seed(777), horizon("2013-03-18", 1));
    let mut gen = generator;
    let mut emitted = Vec::new();
    for (t, v) in live.series.iter() {
        for offer in gen.push(t, v) {
            println!("  {} -> emitted {offer}", t.time());
            emitted.push(offer);
        }
    }
    println!("  {} real-time offers from one live day\n", emitted.len());

    // ---------- 2. Production flex-offers (§6: RES + traditional).
    println!("== production flex-offers ==");
    let farm = WindFarmConfig::default();
    let observed = simulate_wind_production(&farm, horizon("2013-03-11", 7), Resolution::MIN_15);
    let fc = forecast(&observed, 96, ForecastMethod::SeasonalScaled)
        .expect("a week of production history");
    let res_offers = ProductionExtractor::renewable(ExtractionConfig::default())
        .extract(
            &ExtractionInput::household(&fc),
            &mut StdRng::seed_from_u64(1),
        )
        .expect("forecast is non-empty");
    println!(
        "wind producer: {} ramp offers from tomorrow's forecast ({:.0} kWh forecast)",
        res_offers.flex_offers.len(),
        fc.total_energy()
    );
    for o in res_offers.flex_offers.iter().take(3) {
        println!("  {o}");
    }
    let dispatchable =
        ProductionExtractor::dispatchable(ExtractionConfig::default(), Duration::hours(12))
            .extract(
                &ExtractionInput::household(&fc),
                &mut StdRng::seed_from_u64(1),
            )
            .expect("forecast is non-empty");
    println!(
        "conventional producer: {} offer(s) covering {:.0} kWh (almost all production)\n",
        dispatchable.flex_offers.len(),
        dispatchable.extracted_energy()
    );

    // ---------- 3. Industrial consumers.
    println!("== industrial consumer ==");
    let plant = IndustrialConfig::medium_plant(1);
    let sim = simulate_industrial(&plant, horizon("2013-03-18", 7));
    println!(
        "two-shift plant: {:.0} kWh/week, {} batch runs, true flexible share {:.1} %",
        sim.series.total_energy(),
        sim.activations.len(),
        sim.true_flexible_share() * 100.0
    );
    let out = PeakExtractor::new(ExtractionConfig::default())
        .extract(
            &ExtractionInput::household(&sim.series),
            &mut StdRng::seed_from_u64(2),
        )
        .expect("plant series is non-empty");
    println!(
        "peak-based extraction runs unchanged: {} offers, {:.0} kWh ({:.1} %)",
        out.flex_offers.len(),
        out.extracted_energy(),
        out.achieved_share() * 100.0
    );
    for o in out.flex_offers.iter().take(3) {
        println!("  {o}");
    }
}
