//! Appliance-level extraction (paper §4): disaggregate a household's
//! total consumption into appliance cycles, mine usage frequencies and
//! schedules (step 1), then extract per-activation flex-offers
//! (step 2) — and score everything against the simulator's ground
//! truth, which the paper's authors did not have.
//!
//! ```sh
//! cargo run --example appliance_disaggregation
//! ```

use flextract::appliance::Catalog;
use flextract::core::{
    ExtractionConfig, ExtractionInput, FlexibilityExtractor, FrequencyBasedExtractor,
    ScheduleBasedExtractor,
};
use flextract::disagg::{detect_activations, FrequencyTable, MatchConfig, MinedSchedule};
use flextract::eval::GroundTruthScore;
use flextract::sim::{simulate_household, HouseholdArchetype, HouseholdConfig};
use flextract::time::{Duration, Resolution, TimeRange};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Data: four weeks of 1-minute family consumption.
    let household = HouseholdConfig::new(3, HouseholdArchetype::FamilyWithChildren);
    let month = TimeRange::starting_at("2013-03-04".parse().unwrap(), Duration::weeks(4))
        .expect("four weeks is positive");
    let sim = simulate_household(&household, month);
    let catalog = Catalog::extended();
    println!(
        "simulated {} appliance cycles; true flexible share {:.1} %",
        sim.activations.len(),
        sim.true_flexible_share() * 100.0
    );

    // --- Step 1a: detection + usage-frequency table (§4.1).
    let shiftable = catalog.shiftable();
    let (detections, _) = detect_activations(&sim.series, &shiftable, &MatchConfig::default());
    let table = FrequencyTable::mine(&detections, 28.0, &catalog);
    println!("\nmined frequency table (§4.1 step 1):\n{}", table.render());

    // --- Step 1b: usage schedules (§4.2).
    let schedules = MinedSchedule::mine_all(&detections, 20.0, 8.0, 60);
    println!("mined schedules (§4.2 step 1):");
    for s in &schedules {
        for slot in s.slots(0.25) {
            println!(
                "  {}: {:?} days {}–{} (expect {:.2}/day)",
                s.appliance,
                slot.day_kind,
                slot.window_start,
                slot.window_end,
                slot.expected_per_day
            );
        }
    }

    // --- Step 2: flex-offers from both appliance-level approaches.
    let market = sim.series_at(Resolution::MIN_15);
    let truth = sim.flexible_series_at(Resolution::MIN_15);
    for (name, out) in [
        (
            "frequency-based (§4.1)",
            FrequencyBasedExtractor::new(ExtractionConfig::default()).extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&sim.series)
                    .with_catalog(&catalog),
                &mut StdRng::seed_from_u64(5),
            ),
        ),
        (
            "schedule-based (§4.2)",
            ScheduleBasedExtractor::new(ExtractionConfig::default()).extract(
                &ExtractionInput::household(&market)
                    .with_fine_series(&sim.series)
                    .with_catalog(&catalog),
                &mut StdRng::seed_from_u64(5),
            ),
        ),
    ] {
        let out = out.expect("catalog and series provided");
        let score = GroundTruthScore::score(&out.extracted_series, &truth);
        println!(
            "\n{name}: {} offers, {:.1} kWh extracted — vs ground truth: {score}",
            out.flex_offers.len(),
            out.extracted_energy(),
        );
        for offer in out.flex_offers.iter().take(3) {
            println!("  {offer}");
        }
        if out.flex_offers.len() > 3 {
            println!("  … and {} more", out.flex_offers.len() - 3);
        }
    }
}
