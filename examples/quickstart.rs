//! Quickstart: simulate a household week, extract flex-offers with the
//! paper's peak-based approach, and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flextract::core::{ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor};
use flextract::sim::{simulate_household, HouseholdArchetype, HouseholdConfig};
use flextract::time::{Duration, Resolution, TimeRange};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. Data. Real MIRABEL metering series are not available, so
    // the simulator plays the grid operator: a family household,
    // one week, 1-minute ground truth aggregated to the 15-minute
    // market granularity the paper's extractors consume.
    let household = HouseholdConfig::new(1, HouseholdArchetype::FamilyWithChildren);
    let week = TimeRange::starting_at("2013-03-18".parse().unwrap(), Duration::weeks(1))
        .expect("a week is positive");
    let sim = simulate_household(&household, week);
    let market = sim.series_at(Resolution::MIN_15);
    println!(
        "simulated {}: {:.1} kWh over {} intervals ({} appliance cycles, {:.1} kWh truly flexible)",
        household.archetype,
        market.total_energy(),
        market.len(),
        sim.activations.len(),
        sim.flexible_series.total_energy(),
    );

    // --- 2. Extraction. Peak-based (§3.2): one flex-offer per day,
    // positioned on a size-proportionally chosen consumption peak.
    let extractor = PeakExtractor::new(ExtractionConfig::default());
    let out = extractor
        .extract(
            &ExtractionInput::household(&market),
            &mut StdRng::seed_from_u64(42),
        )
        .expect("household input is non-empty");
    out.check_invariants(&market)
        .expect("energy accounting holds");

    println!(
        "\nextracted {} flex-offers ({}):",
        out.flex_offers.len(),
        out.approach
    );
    for offer in &out.flex_offers {
        println!("  {offer}");
    }
    println!(
        "\nextracted {:.2} kWh = {:.1} % of consumption (configured 5 %)",
        out.extracted_energy(),
        out.achieved_share() * 100.0
    );

    // --- 3. Diagnostics. Every day's peak walk-through, exactly the
    // information annotated in the paper's Figure 5.
    let report = &out.diagnostics.peak_reports[0];
    println!(
        "\nfirst day: total {:.2} kWh, average line {:.3} kWh, filter ≥ {:.3} kWh",
        report.day_total_kwh, report.threshold_kwh, report.min_peak_energy_kwh
    );
    for p in &report.peaks {
        println!(
            "  peak {} @ {}: size {:.2} kWh{}",
            p.number,
            p.start.time(),
            p.size_kwh,
            if p.survived_filter {
                format!(", survives (p = {:.0} %)", p.probability * 100.0)
            } else {
                ", filtered out".to_string()
            }
        );
    }
}
