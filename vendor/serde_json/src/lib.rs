//! Offline vendored stand-in for `serde_json`.
//!
//! Prints and parses JSON through the vendored `serde` [`Value`] tree.
//! Supports exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`], with serde_json's observable
//! conventions (externally tagged enums via the derive, `null` for
//! `None` and non-finite floats, shortest round-trip float printing).

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest string that round-trips,
                // always with a decimal point or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                // serde_json's representation for NaN/±inf.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "bad escape {:?} at offset {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&1.5_f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0_f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(to_string(&vec![1_i64, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(to_string(&Option::<i64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn float_shortest_round_trip() {
        for x in [0.1, 1e300, -2.5e-8, f64::MAX, std::f64::consts::PI] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x);
        }
    }

    #[test]
    fn tuples_are_arrays() {
        let v = vec![(1_u32, true), (2, false)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,true],[2,false]]");
        assert_eq!(from_str::<Vec<(u32, bool)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = vec![vec![1_i64], vec![], vec![2, 3]];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<i64>>>(&json).unwrap(), v);
    }
}
