//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` stand-in.
//!
//! With no access to crates.io there is no `syn`/`quote`, so this crate
//! parses the item with a small purpose-built scanner over
//! [`proc_macro::TokenStream`] and emits the impls as source text. It
//! supports exactly the shapes present in this workspace:
//!
//! * structs with named fields (optionally `#[serde(transparent)]` on
//!   the struct, `#[serde(default)]` on individual fields),
//! * tuple and unit structs,
//! * enums with unit, tuple and struct variants (externally tagged,
//!   like real serde's default representation).
//!
//! Generic types are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: absent map keys fall back to
    /// `Default::default()` instead of erroring.
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        transparent: bool,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip attributes (`#[...]`, including doc comments); report the
    /// union of the `#[serde(...)]` flags they carried.
    fn skip_attrs(&mut self) -> SerdeFlags {
        let mut flags = SerdeFlags::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                let found = serde_attr_flags(g.stream());
                flags.transparent |= found.transparent;
                flags.default |= found.default;
            }
        }
        flags
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("serde_derive: expected {what}, found {other:?}")),
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct SerdeFlags {
    transparent: bool,
    default: bool,
}

fn serde_attr_flags(stream: TokenStream) -> SerdeFlags {
    let mut flags = SerdeFlags::default();
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return flags,
    }
    if let Some(TokenTree::Group(g)) = iter.next() {
        for t in g.stream() {
            if let TokenTree::Ident(id) = &t {
                match id.to_string().as_str() {
                    "transparent" => flags.transparent = true,
                    "default" => flags.default = true,
                    _ => {}
                }
            }
        }
    }
    flags
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let transparent = cur.skip_attrs().transparent;
    cur.skip_visibility();
    let kind = cur.expect_ident("`struct` or `enum`")?;
    let name = cur.expect_ident("type name")?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive: generic type `{name}` is not supported by the vendored derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde_derive: unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct {
                name,
                transparent,
                fields,
            })
        }
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde_derive: unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("serde_derive: cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let flags = cur.skip_attrs();
        cur.skip_visibility();
        if cur.at_end() {
            break;
        }
        fields.push(Field {
            name: cur.expect_ident("field name")?,
            default: flags.default,
        });
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde_derive: expected `:`, found {other:?}")),
        }
        skip_type_until_comma(&mut cur);
    }
    Ok(fields)
}

/// Advance past one type, stopping after the field-separating comma.
/// Commas inside angle brackets belong to the type; commas inside
/// parens/brackets are invisible (whole groups are single tokens).
fn skip_type_until_comma(cur: &mut Cursor) {
    let mut angle_depth = 0_i32;
    while let Some(t) = cur.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.at_end() {
        return 0;
    }
    let mut count = 0;
    while !cur.at_end() {
        cur.skip_attrs();
        cur.skip_visibility();
        if cur.at_end() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut cur);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name")?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                cur.next();
                Fields::Named(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                cur.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Skip to the separating comma (covers `= discr` too).
        while let Some(t) = cur.next() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            transparent,
            fields,
        } => {
            let body = match fields {
                Fields::Named(names) if *transparent && names.len() == 1 => {
                    format!("::serde::Serialize::serialize(&self.{})", names[0].name)
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \x20   fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    ),
                    Fields::Named(fnames) => {
                        let binds = fnames
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let entries: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({vname:?}), \
                         ::serde::Serialize::serialize(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \x20   fn serialize(&self) -> ::serde::Value {{\n\
                 \x20       match self {{ {} }}\n\
                 \x20   }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// One `name: ...?` initializer for a named field read out of the map
/// value `src`. `#[serde(default)]` fields tolerate a missing key.
fn named_field_init(f: &Field, ty: &str, src: &str) -> String {
    let (name, helper) = (
        &f.name,
        if f.default {
            "field_or_default"
        } else {
            "field"
        },
    );
    format!("{name}: ::serde::__private::{helper}({src}, {ty:?}, {name:?})?")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            transparent,
            fields,
        } => {
            let body = match fields {
                Fields::Named(names) if *transparent && names.len() == 1 => format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::deserialize(v)? }})",
                    names[0].name
                ),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| named_field_init(f, name, "v"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::__private::element(v, {name:?}, {i}, {n})?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!(
                    "match v {{\n\
                     \x20   ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     \x20   other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: expected null, got {{}}\", other.kind()))),\n\
                     }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \x20   fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fnames) => {
                        let inits: Vec<String> = fnames
                            .iter()
                            .map(|f| named_field_init(f, name, "inner"))
                            .collect();
                        Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                    Fields::Tuple(1) => Some(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::__private::element(inner, {name:?}, {i}, {n})?")
                            })
                            .collect();
                        Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}({})),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \x20   fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 \x20       match v {{\n\
                 \x20           ::serde::Value::Str(s) => match s.as_str() {{\n\
                 \x20               {unit}\n\
                 \x20               other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 \x20           }},\n\
                 \x20           ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 \x20               let (tag, inner) = &entries[0];\n\
                 \x20               match tag.as_str() {{\n\
                 \x20                   {data}\n\
                 \x20                   other => ::std::result::Result::Err(\
                 ::serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 \x20               }}\n\
                 \x20           }}\n\
                 \x20           other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"{name}: expected variant tag, got {{}}\", other.kind()))),\n\
                 \x20       }}\n\
                 \x20   }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    }
}
