//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], the `criterion_group!`/
//! `criterion_main!` macros) with a deliberately simple measurement
//! loop: a short warm-up, then a fixed batch of timed iterations whose
//! mean is printed to stdout. No statistics, no HTML reports — enough
//! to compile and to eyeball relative performance offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = u64::from(self.samples);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Parse CLI args (accepted and ignored in the vendored stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one(&id.into().id, sample_size, None, f);
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: u32,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: sample_size,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<56} (no measurement)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / per_iter),
    });
    println!(
        "{label:<56} {:>12.3} µs/iter{}",
        per_iter * 1e6,
        rate.unwrap_or_default()
    );
}

/// Group benchmark functions under a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
