//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps the std primitives and exposes parking_lot's ergonomics:
//! `lock()` returns the guard directly (poisoning is ignored, matching
//! parking_lot's behaviour of not having poisoning at all).

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive; `lock()` never returns a `Result`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Reader-writer lock; `read()`/`write()` never return a `Result`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_collects_from_threads() {
        let m = std::sync::Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = m.clone();
                std::thread::spawn(move || m.lock().push(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = m.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
