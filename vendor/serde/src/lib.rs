//! Offline vendored stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy data model, this stub
//! round-trips everything through an owned [`Value`] tree — more than
//! enough for the config files and JSON round-trip tests in this
//! workspace, with the same externally-tagged enum representation and
//! `#[serde(transparent)]` support the code relies on.
//!
//! [`Serialize`]/[`Deserialize`] here are both a trait *and* a derive
//! macro (re-exported from `serde_derive`), mirroring the real crate's
//! public surface.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing data tree, the intermediate form for every
/// (de)serialization in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// Key/value map with preserved insertion order (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// (De)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the intermediate tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the intermediate tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u128;
                if wide <= i64::MAX as u128 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(wide as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    // Non-finite floats serialize to null (as in
                    // serde_json); accept the round trip back.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {}-tuple, got {}", LEN, other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort for stable output, like serde_json with preserve_order off.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support machinery used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Fetch and deserialize map field `name`.
    pub fn field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(found) => {
                T::deserialize(found).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
            }
            None => Err(Error::custom(format!("{ty}: missing field `{name}`"))),
        }
    }

    /// Fetch and deserialize map field `name`, falling back to
    /// `Default::default()` when the key is absent — the runtime half
    /// of `#[serde(default)]`. Documents written before a field existed
    /// keep deserializing forever.
    pub fn field_or_default<T: Deserialize + Default>(
        v: &Value,
        ty: &str,
        name: &str,
    ) -> Result<T, Error> {
        match v.get(name) {
            Some(found) => {
                T::deserialize(found).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Fetch and deserialize tuple element `idx` of a [`Value::Seq`].
    pub fn element<T: Deserialize>(
        v: &Value,
        ty: &str,
        idx: usize,
        len: usize,
    ) -> Result<T, Error> {
        match v {
            Value::Seq(items) if items.len() == len => {
                T::deserialize(&items[idx]).map_err(|e| Error::custom(format!("{ty}[{idx}]: {e}")))
            }
            Value::Seq(items) => Err(Error::custom(format!(
                "{ty}: expected {len} elements, got {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "{ty}: expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}
