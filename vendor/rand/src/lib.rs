//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, deterministic re-implementation of the slice of the
//! `rand` API the code base actually uses:
//!
//! * [`rngs::StdRng`] — a seedable generator ([`SeedableRng::seed_from_u64`]),
//!   implemented as xoshiro256++ seeded through SplitMix64,
//! * the [`Rng`] extension trait with both the rand-0.9 method names
//!   (`random`, `random_range`, `random_bool`) and the rand-0.8 aliases
//!   (`gen`, `gen_range`, `gen_bool`) the seed code mixes freely,
//! * the free functions [`rng()`] and [`random()`].
//!
//! The generator is *not* cryptographically secure and the range
//! sampling uses plain modulo reduction; both are fine for simulation
//! and tests, which is all this workspace needs.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;

    /// Build from entropy (here: clock + a process-local counter).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// Types that can be sampled uniformly from a generator.
///
/// Stands in for `rand`'s `StandardUniform` distribution: `f64` is
/// uniform in `[0, 1)`, integers over their whole range.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open or closed interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    ///
    /// # Panics
    /// Panics if the interval is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (rand-0.8 name).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample of `T` (rand-0.9 name).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range` (rand-0.8 name).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Uniform sample from `range` (rand-0.9 name).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (rand-0.8 name).
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Bernoulli draw with probability `p` (rand-0.9 name).
    fn random_bool(&mut self, p: f64) -> bool {
        self.gen_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed, which is all the simulation and
    /// test code relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// A fresh generator seeded from process entropy (rand-0.9 `rand::rng()`).
pub fn rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(entropy_seed())
}

/// One uniform sample from a fresh entropy-seeded generator.
pub fn random<T: Standard>() -> T {
    T::sample(&mut rng())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5_i64..5);
            assert!((-5..5).contains(&x));
            let y: f64 = r.gen_range(0.25_f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: u8 = r.gen_range(1_u8..=3);
            assert!((1..=3).contains(&z));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
