//! Offline vendored stand-in for the `bytes` crate.
//!
//! Backed by plain `Vec<u8>`/offset instead of refcounted slabs — no
//! zero-copy cleverness, just the [`Buf`]/[`BufMut`] methods the binary
//! series codec needs, with the same semantics.

use std::ops::RangeBounds;

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// View of the readable bytes.
    fn chunk(&self) -> &[u8];

    /// Drop `cnt` bytes from the front.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy exactly `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    offset: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the readable region.
    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    /// `true` if nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the readable region into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Sub-buffer over `range` of the readable region.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of bounds");
        Bytes {
            data: self.as_ref()[start..end].to_vec(),
            offset: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, offset: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            offset: 0,
        }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Self {
            data: data.to_vec(),
            offset: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.offset += cnt;
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            offset: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"FXT1");
        buf.put_i64_le(-77);
        buf.put_u32_le(15);
        buf.put_u64_le(3);
        buf.put_f64_le(2.5);
        let mut bytes = buf.freeze();
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"FXT1");
        assert_eq!(bytes.get_i64_le(), -77);
        assert_eq!(bytes.get_u32_le(), 15);
        assert_eq!(bytes.get_u64_le(), 3);
        assert_eq!(bytes.get_f64_le(), 2.5);
        assert!(bytes.is_empty());
    }

    #[test]
    fn slice_is_a_view_from_current_offset() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        assert_eq!(b.slice(..3).to_vec(), vec![0, 1, 2]);
        assert_eq!(b.slice(2..4).to_vec(), vec![2, 3]);
        let mut advanced = b.clone();
        advanced.advance(2);
        assert_eq!(advanced.slice(..2).to_vec(), vec![2, 3]);
    }
}
