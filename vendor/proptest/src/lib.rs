//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property
//! suites use — the [`proptest!`] macro, `prop_assert*`/[`prop_assume!`],
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`, ranges and
//! tuples as strategies, `prop::collection::vec` and `any::<T>()` —
//! over a deterministic per-test RNG.
//!
//! Differences from real proptest, deliberately accepted: no shrinking
//! (a failing case reports the generated inputs via `Debug` in the
//! assertion message instead of a minimized one), and generation is
//! derived from a fixed seed per test name, so runs are reproducible
//! without a persistence file.

/// Test-case RNG and error plumbing used by the generated runners.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(
                hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Assertion failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Precondition rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }
}

/// Runner configuration.
pub mod config {
    /// Knobs for the [`crate::proptest!`] runner.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
        /// Abort threshold for `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous collections ([`Union`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies of one value type
    /// (what [`crate::prop_oneof!`] builds).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` pairs.
        ///
        /// # Panics
        /// Panics if `options` is empty or all weights are zero.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut draw = rng.gen_range(0_u64..total);
            for (weight, strat) in &self.options {
                let weight = u64::from(*weight);
                if draw < weight {
                    return strat.generate(rng);
                }
                draw -= weight;
            }
            unreachable!("weighted draw out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property suites import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::config::ProptestConfig = $cfg;
                let mut accepted: u32 = 0;
                let mut rejects: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest {}: too many prop_assume! rejections ({rejects})",
                        stringify!($name),
                    );
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => rejects += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case - 1,
                            msg,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    left,
                    right,
                ),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`: {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    left,
                ),
            ));
        }
    }};
}

/// Reject the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Choose between strategies, optionally weighted
/// (`prop_oneof![2 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1_u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
