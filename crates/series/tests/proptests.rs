//! Property tests for the series engine.

use flextract_series::{
    codec, decompose, missing, peaks, resample, stats, PeakThreshold, TimeSeries,
};
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use proptest::prelude::*;

/// Non-negative kWh values like real consumption intervals.
fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0_f64..5.0, 1..max_len)
}

fn arb_start() -> impl Strategy<Value = Timestamp> {
    // Aligned to the daily grid so every resolution accepts it.
    (-2000_i64..8000).prop_map(|d| Timestamp::from_minutes(d * 1440))
}

proptest! {
    #[test]
    fn codec_round_trip(start in arb_start(), values in arb_values(200)) {
        let s = TimeSeries::new(start, Resolution::MIN_15, values).unwrap();
        let decoded = codec::decode(codec::encode(&s)).unwrap();
        prop_assert_eq!(decoded, s);
    }

    #[test]
    fn slice_energy_never_exceeds_total(
        start in arb_start(),
        values in arb_values(300),
        lo in 0_i64..300,
        len in 0_i64..300,
    ) {
        let s = TimeSeries::new(start, Resolution::MIN_15, values).unwrap();
        let r = TimeRange::starting_at(
            start + Duration::minutes(lo * 15),
            Duration::minutes(len * 15),
        ).unwrap();
        let sub = s.slice(r);
        prop_assert!(sub.total_energy() <= s.total_energy() + 1e-9);
        prop_assert!(sub.len() <= s.len());
        // A slice of the full range is the series itself.
        let full = s.slice(s.range());
        prop_assert_eq!(full, s);
    }

    #[test]
    fn add_sub_inverse(start in arb_start(), values in arb_values(200)) {
        let a = TimeSeries::new(start, Resolution::MIN_15, values.clone()).unwrap();
        let b = a.scale(0.3);
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        for (x, y) in back.values().iter().zip(a.values()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_round_trip_preserves_energy(
        start in arb_start(),
        chunks in 1_usize..30,
    ) {
        let values: Vec<f64> = (0..chunks * 4).map(|i| (i % 5) as f64 * 0.2).collect();
        let fine = TimeSeries::new(start, Resolution::MIN_15, values).unwrap();
        let coarse = resample::downsample(&fine, Resolution::HOUR_1).unwrap();
        prop_assert!((coarse.total_energy() - fine.total_energy()).abs() < 1e-9);
        let up = resample::upsample(&coarse, Resolution::MIN_15).unwrap();
        prop_assert_eq!(up.len(), fine.len());
        prop_assert!((up.total_energy() - fine.total_energy()).abs() < 1e-9);
    }

    #[test]
    fn peaks_partition_energy_above_threshold(start in arb_start(), values in arb_values(200)) {
        let s = TimeSeries::new(start, Resolution::MIN_15, values).unwrap();
        if let Ok((thr, found)) = peaks::detect_peaks(&s, PeakThreshold::Mean) {
            // Peak energies are sums of the member intervals.
            let sum_peaks: f64 = found.iter().map(|p| p.energy_kwh).sum();
            let direct: f64 = s.values().iter().filter(|&&v| v > thr).sum();
            prop_assert!((sum_peaks - direct).abs() < 1e-9);
            // Peaks are disjoint and ordered.
            for pair in found.windows(2) {
                prop_assert!(pair[0].end_index() < pair[1].start_index + 1);
                prop_assert!(pair[0].end_index() <= pair[1].start_index);
            }
            // Every peak interval is strictly above the threshold.
            for p in &found {
                for i in p.start_index..p.end_index() {
                    prop_assert!(s.values()[i] > thr);
                }
            }
        }
    }

    #[test]
    fn selection_probabilities_sum_to_one(values in arb_values(200)) {
        let s = TimeSeries::new(Timestamp::EPOCH, Resolution::MIN_15, values).unwrap();
        let (_, found) = peaks::detect_peaks(&s, PeakThreshold::Mean).unwrap();
        let probs = peaks::selection_probabilities(&found);
        if !probs.is_empty() {
            prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn decomposition_reconstructs(values in prop::collection::vec(0.0_f64..3.0, 48..200)) {
        let d = decompose::decompose_values(&values, 24).unwrap();
        let back = d.reconstruct();
        for (a, b) in values.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let profile_sum: f64 = d.seasonal_profile().iter().sum();
        prop_assert!(profile_sum.abs() < 1e-9);
    }

    #[test]
    fn fill_strategies_remove_all_gaps(
        mut values in prop::collection::vec(
            prop_oneof![3 => (0.0_f64..5.0).prop_map(Some), 1 => Just(None)],
            4..100,
        ),
    ) {
        // Ensure at least one finite anchor.
        values[0] = Some(1.0);
        for strategy in [
            missing::FillStrategy::Linear,
            missing::FillStrategy::Previous,
            missing::FillStrategy::SeasonalDaily,
            missing::FillStrategy::Zero,
        ] {
            let mut raw: Vec<f64> =
                values.iter().map(|v| v.unwrap_or(f64::NAN)).collect();
            let gaps = missing::gap_count(&raw);
            let filled = missing::fill_gaps(&mut raw, strategy, 24).unwrap();
            prop_assert_eq!(filled, gaps);
            prop_assert!(!missing::has_gaps(&raw));
            prop_assert!(raw.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn znormalize_is_affine_invariant_in_shape(values in arb_values(64)) {
        prop_assume!(stats::std_dev(&values).unwrap() > 1e-6);
        let z1 = stats::znormalize(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v * 3.0 + 7.0).collect();
        let z2 = stats::znormalize(&shifted);
        for (a, b) in z1.iter().zip(&z2) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn autocorrelation_is_bounded(values in arb_values(128), lag in 0_usize..32) {
        if let Some(r) = stats::autocorrelation(&values, lag) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
