//! # flextract-series
//!
//! Fixed-interval energy time-series engine for the `flextract`
//! workspace — the substrate every extraction approach in the paper
//! operates on.
//!
//! The central type is [`TimeSeries`]: a start instant, a
//! [`Resolution`](flextract_time::Resolution) and a dense vector of
//! energy values (kWh per interval). Around it the crate provides the
//! analytical toolkit the paper leans on but delegates to "general
//! analytical tools such as Matlab" (§5, ref \[11\]) — here everything is
//! implemented natively:
//!
//! * [`stats`] — descriptive statistics, Pearson correlation,
//!   autocorrelation, sparseness: exactly the measures the paper names
//!   when discussing how extracted flex-offers could be evaluated
//!   ("correlation, sparseness, autocorrelation", §3.1).
//! * [`decompose`] — classical trend/seasonal/remainder decomposition
//!   ("the time series is composed of the trend, seasonal, and error
//!   components", §5 ref \[12\]).
//! * [`peaks`] — contiguous-run peak detection with pluggable
//!   thresholds, the engine of the peak-based approach (§3.2, Fig. 5).
//! * [`segment`] — day segmentation and typical-day profiles, the
//!   engine of the multi-tariff approach's baseline estimation (§3.3).
//! * [`sax`] — SAX discretisation and motif discovery ("finding motifs
//!   in time series", §5 ref \[13\]), used by schedule mining.
//! * [`resample`] — exact down-sampling and uniform up-sampling between
//!   resolutions (ref \[14\] motivates reasoning across granularities).
//! * [`missing`] — gap handling: detection and fill strategies.
//! * [`codec`] — compact binary interchange format built on [`bytes`].
//!
//! ```
//! use flextract_series::TimeSeries;
//! use flextract_time::{Resolution, Timestamp};
//!
//! // One day of 15-min consumption, 0.4 kWh per interval.
//! let day = TimeSeries::constant(
//!     Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).unwrap(),
//!     Resolution::MIN_15,
//!     0.4,
//!     96,
//! );
//! assert!((day.total_energy() - 38.4).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod codec;
pub mod decompose;
pub mod forecast;
pub mod missing;
pub mod peaks;
pub mod resample;
pub mod rolling;
pub mod sax;
pub mod segment;
mod series;
pub mod stats;

pub use missing::FillStrategy;
pub use peaks::{Peak, PeakThreshold};
pub use series::TimeSeries;

/// Errors produced by series construction and algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesError {
    /// Two series were combined that do not share a resolution.
    ResolutionMismatch {
        /// Resolution of the left operand.
        left: flextract_time::Resolution,
        /// Resolution of the right operand.
        right: flextract_time::Resolution,
    },
    /// Two series were combined whose interval grids are not aligned
    /// (different phase or start).
    AlignmentMismatch,
    /// Two equal-length series were required.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A resample needed the series length to be a whole multiple of
    /// the fine-intervals-per-coarse-interval chunk, and it was not.
    RaggedLength {
        /// Actual (fine) series length.
        len: usize,
        /// Required multiple: fine intervals per coarse interval.
        chunk: usize,
    },
    /// An operation needed more data than the series holds.
    TooShort {
        /// Actual series length.
        len: usize,
        /// Minimum required length.
        required: usize,
    },
    /// A non-finite value (NaN or ±∞) was handed to a constructor at
    /// the given index; [`TimeSeries`] guarantees all-finite values.
    NonFinite {
        /// Index of the first offending value.
        index: usize,
    },
    /// A timestamp or index fell outside the series span.
    OutOfRange,
    /// An operation that requires data was applied to an empty series.
    Empty,
    /// The start timestamp is not aligned to the resolution grid.
    UnalignedStart,
    /// A decode failed (truncated buffer, bad magic, unknown version).
    Codec {
        /// Human-readable description of the decode failure.
        what: &'static str,
    },
    /// An operation needed a finer/coarser resolution relationship that
    /// does not hold (e.g. resampling 15 min → 10 min).
    IncompatibleResolution,
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::ResolutionMismatch { left, right } => {
                write!(f, "resolution mismatch: {left} vs {right}")
            }
            SeriesError::AlignmentMismatch => write!(f, "series grids are not aligned"),
            SeriesError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            SeriesError::RaggedLength { len, chunk } => {
                write!(
                    f,
                    "series length {len} is not a whole multiple of {chunk} \
                     fine intervals per coarse interval \
                     (nearest whole length: {})",
                    (len / chunk) * chunk
                )
            }
            SeriesError::TooShort { len, required } => {
                write!(
                    f,
                    "series too short: {len} intervals, need at least {required}"
                )
            }
            SeriesError::NonFinite { index } => {
                write!(f, "non-finite value (NaN or ±∞) at index {index}")
            }
            SeriesError::OutOfRange => write!(f, "timestamp or index outside series span"),
            SeriesError::Empty => write!(f, "operation requires a non-empty series"),
            SeriesError::UnalignedStart => {
                write!(f, "series start is not aligned to the resolution grid")
            }
            SeriesError::Codec { what } => write!(f, "codec error: {what}"),
            SeriesError::IncompatibleResolution => {
                write!(f, "resolutions are not integer multiples of each other")
            }
        }
    }
}

impl std::error::Error for SeriesError {}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use flextract_time::Resolution;

    #[test]
    fn error_display() {
        let e = SeriesError::ResolutionMismatch {
            left: Resolution::MIN_15,
            right: Resolution::HOUR_1,
        };
        assert!(e.to_string().contains("15min"));
        assert!(e.to_string().contains("1h"));
        assert!(SeriesError::Empty.to_string().contains("non-empty"));
        assert!(SeriesError::Codec { what: "bad magic" }
            .to_string()
            .contains("bad magic"));
        assert!(SeriesError::LengthMismatch { left: 3, right: 4 }
            .to_string()
            .contains('3'));
        // The ragged-resample message states fine length and required
        // multiple explicitly — it must not read like a two-series
        // length comparison.
        let ragged = SeriesError::RaggedLength { len: 5, chunk: 4 }.to_string();
        assert!(ragged.contains("length 5"), "{ragged}");
        assert!(ragged.contains("multiple of 4"), "{ragged}");
        assert!(ragged.contains("nearest whole length: 4"), "{ragged}");
        let short = SeriesError::TooShort {
            len: 5,
            required: 8,
        }
        .to_string();
        assert!(short.contains("5 intervals"), "{short}");
        assert!(short.contains("at least 8"), "{short}");
        assert!(SeriesError::NonFinite { index: 7 }
            .to_string()
            .contains('7'));
    }
}
