//! Rolling-window statistics.
//!
//! Online baselines are everywhere in this workspace: the real-time
//! generator tracks a rolling median of recent power, the multi-tariff
//! detector needs local level estimates, and plotting smoothed series
//! is the first thing any analyst does with metering data. These
//! helpers compute trailing-window statistics in one pass.
//!
//! All functions use a *trailing* window: `out[i]` summarises
//! `xs[i.saturating_sub(window-1) ..= i]`, so the result is causal
//! (usable online) and output length equals input length.

use std::collections::VecDeque;

/// Trailing-window mean.
pub fn rolling_mean(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for i in 0..xs.len() {
        sum += xs[i];
        if i >= window {
            sum -= xs[i - window];
        }
        let n = (i + 1).min(window) as f64;
        out.push(sum / n);
    }
    out
}

/// Trailing-window population standard deviation.
pub fn rolling_std(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for i in 0..xs.len() {
        sum += xs[i];
        sum_sq += xs[i] * xs[i];
        if i >= window {
            sum -= xs[i - window];
            sum_sq -= xs[i - window] * xs[i - window];
        }
        let n = (i + 1).min(window) as f64;
        let mean = sum / n;
        // Guard tiny negatives from float cancellation.
        out.push((sum_sq / n - mean * mean).max(0.0).sqrt());
    }
    out
}

/// Trailing-window minimum (monotonic-deque algorithm, O(n) total).
pub fn rolling_min(xs: &[f64], window: usize) -> Vec<f64> {
    rolling_extreme(xs, window, |a, b| a <= b)
}

/// Trailing-window maximum (monotonic-deque algorithm, O(n) total).
pub fn rolling_max(xs: &[f64], window: usize) -> Vec<f64> {
    rolling_extreme(xs, window, |a, b| a >= b)
}

fn rolling_extreme(xs: &[f64], window: usize, keep: impl Fn(f64, f64) -> bool) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut deque: VecDeque<usize> = VecDeque::new();
    for i in 0..xs.len() {
        while let Some(&back) = deque.back() {
            if keep(xs[i], xs[back]) {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        if let Some(&front) = deque.front() {
            if i >= window && front <= i - window {
                deque.pop_front();
            }
        }
        // `i` was just pushed, so the deque is never empty here; fall
        // back to `i` rather than panicking on the impossible case.
        let front = deque.front().copied().unwrap_or(i);
        out.push(xs[front]);
    }
    out
}

/// Trailing-window median (exact, via a sorted insert-remove buffer —
/// O(n·w) worst case, fine for the ≤ few-hundred-sample windows used
/// here).
pub fn rolling_median(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut sorted: Vec<f64> = Vec::with_capacity(window);
    for i in 0..xs.len() {
        let pos = sorted
            .binary_search_by(|v| v.total_cmp(&xs[i]))
            .unwrap_or_else(|p| p);
        sorted.insert(pos, xs[i]);
        if i >= window {
            let old = xs[i - window];
            let pos = sorted
                .binary_search_by(|v| v.total_cmp(&old))
                .unwrap_or_else(|p| p);
            sorted.remove(pos);
        }
        let n = sorted.len();
        out.push(if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_warms_up_then_slides() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let m = rolling_mean(&xs, 3);
        assert!((m[0] - 1.0).abs() < EPS);
        assert!((m[1] - 1.5).abs() < EPS);
        assert!((m[2] - 2.0).abs() < EPS);
        assert!((m[3] - 3.0).abs() < EPS);
        assert!((m[4] - 4.0).abs() < EPS);
    }

    #[test]
    fn std_matches_direct_computation() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0];
        let s = rolling_std(&xs, 3);
        for i in 2..xs.len() {
            let w = &xs[i - 2..=i];
            let direct = crate::stats::std_dev(w).unwrap();
            assert!(
                (s[i] - direct).abs() < 1e-9,
                "index {i}: {} vs {direct}",
                s[i]
            );
        }
        // Flat window → zero std, not NaN.
        let flat = rolling_std(&[2.0; 5], 3);
        assert!(flat.iter().all(|v| v.abs() < EPS));
    }

    #[test]
    fn min_max_track_extremes() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mn = rolling_min(&xs, 3);
        let mx = rolling_max(&xs, 3);
        for i in 0..xs.len() {
            let lo = i.saturating_sub(2);
            let w = &xs[lo..=i];
            let dmn = w.iter().cloned().fold(f64::INFINITY, f64::min);
            let dmx = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(mn[i], dmn, "min at {i}");
            assert_eq!(mx[i], dmx, "max at {i}");
        }
    }

    #[test]
    fn median_matches_direct_computation() {
        let xs = [7.0, 1.0, 5.0, 3.0, 8.0, 2.0, 9.0, 4.0];
        let med = rolling_median(&xs, 4);
        for i in 0..xs.len() {
            let lo = i.saturating_sub(3);
            let direct = crate::stats::median(&xs[lo..=i]).unwrap();
            assert!(
                (med[i] - direct).abs() < EPS,
                "index {i}: {} vs {direct}",
                med[i]
            );
        }
    }

    #[test]
    fn window_one_is_identity() {
        let xs = [4.0, 2.0, 7.0];
        assert_eq!(rolling_mean(&xs, 1), xs.to_vec());
        assert_eq!(rolling_median(&xs, 1), xs.to_vec());
        assert_eq!(rolling_min(&xs, 1), xs.to_vec());
        assert_eq!(rolling_max(&xs, 1), xs.to_vec());
    }

    #[test]
    fn window_larger_than_input_uses_all_history() {
        let xs = [1.0, 2.0, 3.0];
        let m = rolling_mean(&xs, 100);
        assert!((m[2] - 2.0).abs() < EPS);
        let md = rolling_median(&xs, 100);
        assert!((md[2] - 2.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        rolling_mean(&[1.0], 0);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(rolling_mean(&[], 3).is_empty());
        assert!(rolling_std(&[], 3).is_empty());
        assert!(rolling_min(&[], 3).is_empty());
        assert!(rolling_median(&[], 3).is_empty());
    }
}
