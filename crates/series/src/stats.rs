//! Descriptive statistics over series values.
//!
//! These are the measures the paper names when discussing output quality
//! ("the statistics (e.g., correlation, sparseness, autocorrelation) of
//! the output of flexibility extraction", §3.1), implemented natively so
//! the workspace has no external analytics dependency (§5 ref \[11\]).
//!
//! All functions operate on plain `&[f64]` so they work on whole series
//! ([`crate::TimeSeries::values`]), slices of days, decomposition
//! components, or flex-offer profiles alike.

/// Arithmetic mean; `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divide by `n`); `None` on empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divide by `n-1`); `None` when fewer than 2 values.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Smallest value; `None` on empty input.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(a) => Some(a.min(v)),
    })
}

/// Largest value; `None` on empty input.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(a) => Some(a.max(v)),
    })
}

/// Linear-interpolated quantile, `q` in `[0, 1]`; `None` on empty input
/// or out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("series values are finite"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// `None` if lengths differ, fewer than 2 points, or either side has
/// zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Autocorrelation of `xs` at `lag` (biased estimator, normalised by the
/// full-series variance). `None` when `lag >= len` or variance is zero.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    let n = xs.len();
    if lag >= n {
        return None;
    }
    let m = mean(xs)?;
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return None;
    }
    let num: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
    Some(num / denom)
}

/// Cross-correlation of `xs` against `ys` shifted by `lag`
/// (`ys[i + lag]` paired with `xs[i]`), normalised like Pearson over the
/// overlapping window.
pub fn cross_correlation(xs: &[f64], ys: &[f64], lag: usize) -> Option<f64> {
    if lag >= ys.len() {
        return None;
    }
    let n = xs.len().min(ys.len() - lag);
    if n < 2 {
        return None;
    }
    pearson(&xs[..n], &ys[lag..lag + n])
}

/// Sparseness: the fraction of values with magnitude at most `eps`.
///
/// Consumption series are dense; *extracted flexibility* series are
/// sparse — most intervals carry no flexible energy. The paper lists
/// sparseness among the statistics by which extraction output would be
/// judged (§3.1).
pub fn sparseness(xs: &[f64], eps: f64) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.iter().filter(|v| v.abs() <= eps).count() as f64 / xs.len() as f64
}

/// Root-mean-square error between two equal-length slices.
pub fn rmse(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let se: f64 = xs.iter().zip(ys).map(|(x, y)| (x - y) * (x - y)).sum();
    Some((se / xs.len() as f64).sqrt())
}

/// Mean absolute error between two equal-length slices.
pub fn mae(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    Some(xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum::<f64>() / xs.len() as f64)
}

/// Z-score normalisation: `(x - mean) / std`. Returns the input copied
/// unchanged when the standard deviation is (numerically) zero, which is
/// the convention SAX uses for flat windows.
pub fn znormalize(xs: &[f64]) -> Vec<f64> {
    match (mean(xs), std_dev(xs)) {
        (Some(m), Some(s)) if s > 1e-12 => xs.iter().map(|x| (x - m) / s).collect(),
        _ => xs.to_vec(),
    }
}

/// Shannon entropy (nats) of a discrete distribution given by
/// non-negative weights; zero-weight bins are skipped. `None` if the
/// total weight is not positive.
pub fn entropy(weights: &[f64]) -> Option<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    Some(
        weights
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| {
                let p = w / total;
                -p * p.ln()
            })
            .sum(),
    )
}

/// Normalised entropy in `[0, 1]`: [`entropy`] divided by `ln(len)`.
///
/// 1 means perfectly uniform (the paper's criticism of the random
/// baseline: "macro flex-offers are more or less uniformly dispatched
/// within the day"), 0 means fully concentrated in one bin.
pub fn normalized_entropy(weights: &[f64]) -> Option<f64> {
    if weights.len() < 2 {
        return None;
    }
    Some(entropy(weights)? / (weights.len() as f64).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mean_variance_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs).unwrap() - 2.5).abs() < EPS);
        assert!((variance(&xs).unwrap() - 1.25).abs() < EPS);
        assert!((sample_variance(&xs).unwrap() - 5.0 / 3.0).abs() < EPS);
        assert!((std_dev(&xs).unwrap() - 1.25_f64.sqrt()).abs() < EPS);
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(sample_variance(&[1.0]), None);
    }

    #[test]
    fn min_max_quantiles() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(9.0));
        assert_eq!(median(&xs), Some(3.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(9.0));
        assert_eq!(quantile(&xs, 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
        // Interpolation between sorted neighbours.
        let ys = [0.0, 10.0];
        assert!((quantile(&ys, 0.25).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < EPS);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < EPS);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None); // zero variance
        assert_eq!(pearson(&xs, &ys[..3]), None); // length mismatch
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        // Period-4 sawtooth: lag-4 autocorrelation is strongly positive,
        // lag-2 strongly negative.
        let xs: Vec<f64> = (0..64).map(|i| (i % 4) as f64).collect();
        let r4 = autocorrelation(&xs, 4).unwrap();
        let r2 = autocorrelation(&xs, 2).unwrap();
        assert!(r4 > 0.8, "lag-4 {r4}");
        assert!(r2 < 0.0, "lag-2 {r2}");
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < EPS);
        assert_eq!(autocorrelation(&xs, 64), None);
        assert_eq!(autocorrelation(&[1.0, 1.0], 1), None); // zero variance
    }

    #[test]
    fn cross_correlation_detects_shift() {
        let base: Vec<f64> = (0..32).map(|i| ((i % 8) as f64 - 3.5).abs()).collect();
        let shifted: Vec<f64> = base.iter().cycle().skip(3).take(32).copied().collect();
        // Correlation at the matching lag is (near) perfect.
        let at3 = cross_correlation(&base, &shifted, 5).unwrap(); // 3+5=8 ≡ period
        assert!(at3 > 0.99, "{at3}");
        assert_eq!(cross_correlation(&base, &shifted, 32), None);
    }

    #[test]
    fn sparseness_counts_zeros() {
        let xs = [0.0, 0.0, 1.0, 0.0];
        assert!((sparseness(&xs, 0.0) - 0.75).abs() < EPS);
        assert!((sparseness(&xs, 2.0) - 1.0).abs() < EPS);
        assert_eq!(sparseness(&[], 0.0), 1.0);
    }

    #[test]
    fn error_metrics() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 5.0];
        assert!((rmse(&xs, &ys).unwrap() - (4.0_f64 / 3.0).sqrt()).abs() < EPS);
        assert!((mae(&xs, &ys).unwrap() - 2.0 / 3.0).abs() < EPS);
        assert_eq!(rmse(&xs, &ys[..2]), None);
        assert_eq!(mae(&[], &[]), None);
    }

    #[test]
    fn znormalize_properties() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = znormalize(&xs);
        assert!(mean(&z).unwrap().abs() < EPS);
        assert!((std_dev(&z).unwrap() - 1.0).abs() < EPS);
        // Flat input passes through unchanged.
        let flat = [2.0, 2.0, 2.0];
        assert_eq!(znormalize(&flat), flat.to_vec());
    }

    #[test]
    fn entropy_extremes() {
        // Uniform → maximal, concentrated → zero.
        let uniform = [1.0, 1.0, 1.0, 1.0];
        assert!((normalized_entropy(&uniform).unwrap() - 1.0).abs() < EPS);
        let point = [1.0, 0.0, 0.0, 0.0];
        assert!(normalized_entropy(&point).unwrap().abs() < EPS);
        assert_eq!(entropy(&[0.0, 0.0]), None);
        assert_eq!(normalized_entropy(&[1.0]), None);
    }
}
