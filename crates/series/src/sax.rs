//! SAX discretisation and motif discovery.
//!
//! The paper's related work points at "time series data mining
//! techniques, which stress subsequent matching, anomaly detection,
//! specific feature extraction" and cites Lin & Keogh's *Finding motifs
//! in time series* (§5 ref \[13\]). Schedule mining (§4.2) needs exactly
//! this machinery: recurring sub-daily consumption shapes are motifs
//! whose position in the day reveals the appliance schedule.
//!
//! The implementation is the standard pipeline:
//!
//! 1. z-normalise a sliding window;
//! 2. Piecewise Aggregate Approximation ([`paa`]) down to `word_len`
//!    segments;
//! 3. map segment means to symbols with Gaussian breakpoints
//!    ([`sax_word`]);
//! 4. hash identical words to find recurring shapes ([`find_motifs`]).

use crate::stats::znormalize;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Gaussian equiprobable breakpoints for alphabet sizes 2–10
/// (standard SAX lookup table).
fn breakpoints(alphabet: usize) -> &'static [f64] {
    match alphabet {
        2 => &[0.0],
        3 => &[-0.43, 0.43],
        4 => &[-0.67, 0.0, 0.67],
        5 => &[-0.84, -0.25, 0.25, 0.84],
        6 => &[-0.97, -0.43, 0.0, 0.43, 0.97],
        7 => &[-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
        8 => &[-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
        9 => &[-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
        10 => &[-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
        _ => panic!("SAX alphabet size must be in 2..=10, got {alphabet}"),
    }
}

/// Piecewise Aggregate Approximation: compress `xs` to `segments` means.
///
/// Handles lengths that do not divide evenly by weighting boundary
/// samples fractionally (the exact PAA definition).
pub fn paa(xs: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA needs at least one segment");
    let n = xs.len();
    if n == 0 {
        return vec![0.0; segments];
    }
    if n.is_multiple_of(segments) {
        let k = n / segments;
        return xs
            .chunks_exact(k)
            .map(|c| c.iter().sum::<f64>() / k as f64)
            .collect();
    }
    // Fractional PAA: distribute each sample across overlapping segments.
    let mut out = vec![0.0; segments];
    let ratio = segments as f64 / n as f64;
    for (i, &x) in xs.iter().enumerate() {
        let lo = i as f64 * ratio;
        let hi = (i + 1) as f64 * ratio;
        let mut seg = lo.floor() as usize;
        let mut pos = lo;
        while pos < hi - 1e-12 && seg < segments {
            let seg_end = (seg + 1) as f64;
            let w = (hi.min(seg_end) - pos).max(0.0);
            out[seg] += x * w;
            pos = seg_end;
            seg += 1;
        }
    }
    // Each segment's overlap weights sum to exactly 1 in segment units,
    // so the accumulated value is already the segment mean.
    out
}

/// The SAX word of a window: z-normalise, PAA, then symbolise.
///
/// Symbols are `b'a'..` in increasing value order. Alphabet must be in
/// `2..=10`.
pub fn sax_word(window: &[f64], word_len: usize, alphabet: usize) -> Vec<u8> {
    let bps = breakpoints(alphabet);
    let z = znormalize(window);
    let segments = paa(&z, word_len);
    segments
        .iter()
        .map(|&v| {
            let mut sym = 0u8;
            for &bp in bps {
                if v > bp {
                    sym += 1;
                }
            }
            b'a' + sym
        })
        .collect()
}

/// A recurring discretised shape found by [`find_motifs`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Motif {
    /// The SAX word shared by all occurrences.
    pub word: Vec<u8>,
    /// Start indices of each (non-overlapping) occurrence.
    pub occurrences: Vec<usize>,
}

impl Motif {
    /// Number of occurrences.
    pub fn support(&self) -> usize {
        self.occurrences.len()
    }

    /// The word as a printable string (`a`–`j`).
    pub fn word_str(&self) -> String {
        String::from_utf8_lossy(&self.word).into_owned()
    }
}

/// Slide a window of `window_len` over `xs` (step 1), compute each SAX
/// word, and report words occurring at least `min_support` times.
///
/// Trivial matches are suppressed: an occurrence is only counted when it
/// starts at least `window_len` after the previous counted occurrence of
/// the same word, so overlapping copies of one event don't inflate
/// support. Motifs are returned by decreasing support.
pub fn find_motifs(
    xs: &[f64],
    window_len: usize,
    word_len: usize,
    alphabet: usize,
    min_support: usize,
) -> Vec<Motif> {
    if xs.len() < window_len || window_len == 0 {
        return Vec::new();
    }
    let mut table: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
    for start in 0..=(xs.len() - window_len) {
        let word = sax_word(&xs[start..start + window_len], word_len, alphabet);
        let entry = table.entry(word).or_default();
        // Non-overlap rule against the previous counted occurrence.
        if entry.last().is_none_or(|&prev| start >= prev + window_len) {
            entry.push(start);
        }
    }
    let mut motifs: Vec<Motif> = table
        .into_iter()
        .filter(|(_, occ)| occ.len() >= min_support)
        .map(|(word, occurrences)| Motif { word, occurrences })
        .collect();
    motifs.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then_with(|| a.word.cmp(&b.word))
    });
    motifs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_even_division_is_chunk_means() {
        let xs = [1.0, 3.0, 5.0, 7.0];
        assert_eq!(paa(&xs, 2), vec![2.0, 6.0]);
        assert_eq!(paa(&xs, 4), xs.to_vec());
        assert_eq!(paa(&xs, 1), vec![4.0]);
    }

    #[test]
    fn paa_fractional_division_conserves_mass() {
        // 5 samples into 2 segments: each segment worth 2.5 samples.
        let xs = [2.0, 2.0, 2.0, 2.0, 2.0];
        let segs = paa(&xs, 2);
        // Constant input → both segments represent the same mean after
        // normalising by the segment weight (2.5 samples × ratio 0.4 = 1).
        assert!((segs[0] - 2.0).abs() < 1e-9, "{segs:?}");
        assert!((segs[1] - 2.0).abs() < 1e-9, "{segs:?}");
    }

    #[test]
    fn sax_word_orders_symbols() {
        // Ramp: low half → 'a'-ish, high half → later letters.
        let xs: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let w = sax_word(&xs, 4, 4);
        assert_eq!(w.len(), 4);
        assert!(w[0] < w[3], "{w:?}");
        assert_eq!(w[0], b'a');
        assert_eq!(w[3], b'd');
    }

    #[test]
    fn flat_window_maps_to_middle_symbols() {
        let xs = vec![3.0; 16];
        let w = sax_word(&xs, 4, 4);
        // Flat → znormalize passes values through; 3.0 > all breakpoints
        // {-0.67, 0, 0.67} → everything the top symbol. What matters is
        // uniformity, not the specific letter.
        assert!(w.iter().all(|&c| c == w[0]), "{w:?}");
    }

    #[test]
    #[should_panic(expected = "alphabet")]
    fn oversized_alphabet_panics() {
        sax_word(&[1.0, 2.0], 2, 11);
    }

    #[test]
    fn motifs_find_repeated_shapes() {
        // A spike shape repeated 3 times over flat background noise-free.
        let mut xs = vec![0.0; 64];
        for &at in &[5usize, 25, 45] {
            xs[at] = 1.0;
            xs[at + 1] = 4.0;
            xs[at + 2] = 1.0;
        }
        let motifs = find_motifs(&xs, 5, 5, 3, 3);
        assert!(!motifs.is_empty());
        let top = &motifs[0];
        assert!(top.support() >= 3, "support {}", top.support());
        assert_eq!(top.word.len(), 5);
        assert!(!top.word_str().is_empty());
    }

    #[test]
    fn motif_occurrences_do_not_overlap() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let motifs = find_motifs(&xs, 10, 4, 4, 2);
        for m in &motifs {
            for pair in m.occurrences.windows(2) {
                assert!(pair[1] >= pair[0] + 10, "overlap in {:?}", m.occurrences);
            }
        }
    }

    #[test]
    fn short_input_yields_no_motifs() {
        assert!(find_motifs(&[1.0, 2.0], 10, 4, 4, 2).is_empty());
        assert!(find_motifs(&[], 10, 4, 4, 2).is_empty());
    }

    #[test]
    fn min_support_filters() {
        let mut xs = vec![0.0; 40];
        xs[5] = 5.0; // one lonely spike
        let motifs = find_motifs(&xs, 4, 4, 3, 5);
        // Background windows repeat plenty; spike windows don't reach 5.
        for m in &motifs {
            assert!(m.support() >= 5);
        }
    }
}
