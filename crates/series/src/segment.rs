//! Day segmentation and typical-day profiles.
//!
//! Two extraction approaches are built directly on these primitives:
//!
//! * the **basic** approach "starts with the division of input time
//!   series into periods" (§3.1) — [`split_into_periods`];
//! * the **multi-tariff** approach "firstly analyzes one tariff time
//!   series to estimate the usual consumption of a consumer … typical
//!   behavior during the work days, weekends, holidays" (§3.3) —
//!   [`typical_day_profile`] with a [`DayKind`] filter.

use crate::{SeriesError, TimeSeries};
use flextract_time::{Duration, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

/// Which civil days participate in a typical-day profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayKind {
    /// Every day.
    All,
    /// Monday–Friday.
    Workday,
    /// Saturday and Sunday.
    Weekend,
}

impl DayKind {
    /// Does a day starting at `day_start` belong to this kind?
    pub fn matches(self, day_start: Timestamp) -> bool {
        match self {
            DayKind::All => true,
            DayKind::Workday => !day_start.day_of_week().is_weekend(),
            DayKind::Weekend => day_start.day_of_week().is_weekend(),
        }
    }
}

/// Split a series into whole civil days (midnight-aligned sub-series).
///
/// Partial leading/trailing days are dropped — extraction approaches in
/// the paper reason per complete day ("detecting peaks in the 24-hour
/// period", §3.2).
pub fn split_whole_days(series: &TimeSeries) -> Vec<TimeSeries> {
    let mut out = Vec::new();
    let first_midnight = series.start().ceil_to(flextract_time::Resolution::DAY);
    let mut cur = first_midnight;
    let per_day = series.resolution().intervals_per_day();
    while cur + Duration::DAY <= series.end() {
        let day = series.slice(TimeRange::starting_at(cur, Duration::DAY).expect("day > 0"));
        debug_assert_eq!(day.len(), per_day);
        out.push(day);
        cur += Duration::DAY;
    }
    out
}

/// Split a series into consecutive periods of `period` length — the
/// basic approach's "periods spanning few hours". The final ragged
/// period (if any) is included.
pub fn split_into_periods(series: &TimeSeries, period: Duration) -> Vec<TimeSeries> {
    series
        .range()
        .split_chunks(period)
        .into_iter()
        .map(|chunk| series.slice(chunk))
        .filter(|s| !s.is_empty())
        .collect()
}

/// Total energy of each whole day in the series.
pub fn daily_totals(series: &TimeSeries) -> Vec<(Timestamp, f64)> {
    split_whole_days(series)
        .into_iter()
        .map(|d| (d.start(), d.total_energy()))
        .collect()
}

/// The mean interval-of-day profile over whole days of the given kind.
///
/// Returns a vector of `intervals_per_day` mean energies (index 0 =
/// midnight interval). This is the multi-tariff approach's estimate of
/// "the usual consumption of a consumer".
///
/// Errors with [`SeriesError::Empty`] when no day matches.
pub fn typical_day_profile(series: &TimeSeries, kind: DayKind) -> Result<Vec<f64>, SeriesError> {
    let days: Vec<TimeSeries> = split_whole_days(series)
        .into_iter()
        .filter(|d| kind.matches(d.start()))
        .collect();
    if days.is_empty() {
        return Err(SeriesError::Empty);
    }
    let n = series.resolution().intervals_per_day();
    let mut acc = vec![0.0; n];
    for day in &days {
        for (i, &v) in day.values().iter().enumerate() {
            acc[i] += v;
        }
    }
    let count = days.len() as f64;
    for v in &mut acc {
        *v /= count;
    }
    Ok(acc)
}

/// Per-interval-of-day standard deviation over whole days of a kind —
/// used to turn a typical profile into a tolerance band.
pub fn day_profile_std(series: &TimeSeries, kind: DayKind) -> Result<Vec<f64>, SeriesError> {
    let days: Vec<TimeSeries> = split_whole_days(series)
        .into_iter()
        .filter(|d| kind.matches(d.start()))
        .collect();
    if days.is_empty() {
        return Err(SeriesError::Empty);
    }
    let n = series.resolution().intervals_per_day();
    let mean = typical_day_profile(series, kind)?;
    let mut acc = vec![0.0; n];
    for day in &days {
        for (i, &v) in day.values().iter().enumerate() {
            let d = v - mean[i];
            acc[i] += d * d;
        }
    }
    let count = days.len() as f64;
    Ok(acc.into_iter().map(|s| (s / count).sqrt()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Resolution;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// Fourteen whole days starting Monday 2013-03-18, hourly resolution,
    /// where each interval holds `day_index + 1` on workdays and
    /// `10 * (day_index + 1)` on weekends.
    fn two_weeks() -> TimeSeries {
        let start = ts("2013-03-18");
        let mut values = Vec::with_capacity(14 * 24);
        for d in 0..14 {
            let t = start + Duration::days(d);
            let base = if t.day_of_week().is_weekend() {
                10.0 * (d + 1) as f64
            } else {
                (d + 1) as f64
            };
            values.extend(std::iter::repeat_n(base, 24));
        }
        TimeSeries::new(start, Resolution::HOUR_1, values).unwrap()
    }

    #[test]
    fn whole_days_drop_partial_edges() {
        // Start at 18:00, so the first partial day is dropped.
        let s = TimeSeries::new(
            ts("2013-03-18 18:00"),
            Resolution::HOUR_1,
            vec![1.0; 6 + 24 + 24 + 3], // partial + 2 whole + partial
        )
        .unwrap();
        let days = split_whole_days(&s);
        assert_eq!(days.len(), 2);
        assert_eq!(days[0].start(), ts("2013-03-19"));
        assert_eq!(days[1].start(), ts("2013-03-20"));
        assert_eq!(days[0].len(), 24);
    }

    #[test]
    fn whole_days_of_empty_series() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::HOUR_1, vec![]).unwrap();
        assert!(split_whole_days(&s).is_empty());
    }

    #[test]
    fn periods_tile_the_series() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0; 96]).unwrap();
        let periods = split_into_periods(&s, Duration::hours(6));
        assert_eq!(periods.len(), 4);
        for p in &periods {
            assert_eq!(p.len(), 24);
        }
        assert_eq!(periods[1].start(), ts("2013-03-18 06:00"));
        // Ragged tail is kept.
        let ragged = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0; 30]).unwrap();
        let ps = split_into_periods(&ragged, Duration::hours(6));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[1].len(), 6);
    }

    #[test]
    fn daily_totals_match_construction() {
        let s = two_weeks();
        let totals = daily_totals(&s);
        assert_eq!(totals.len(), 14);
        // Day 0 is Monday (workday): 24 * 1.0
        assert!((totals[0].1 - 24.0).abs() < 1e-9);
        // Day 5 is Saturday: 24 * 10 * 6
        assert!((totals[5].1 - 24.0 * 60.0).abs() < 1e-9);
        assert_eq!(
            totals[5].0.day_of_week(),
            flextract_time::DayOfWeek::Saturday
        );
    }

    #[test]
    fn typical_profiles_filter_day_kinds() {
        let s = two_weeks();
        // Workdays are days 1..=5 and 8..=12 (values d+1): mean of
        // {1,2,3,4,5,8,9,10,11,12}= 6.5.
        let wk = typical_day_profile(&s, DayKind::Workday).unwrap();
        assert_eq!(wk.len(), 24);
        assert!((wk[0] - 6.5).abs() < 1e-9);
        // Weekends are days 6,7,13,14 → values 10*{6,7,13,14}, mean 100.
        let we = typical_day_profile(&s, DayKind::Weekend).unwrap();
        assert!((we[12] - 100.0).abs() < 1e-9);
        // All-days mean sits between.
        let all = typical_day_profile(&s, DayKind::All).unwrap();
        assert!(all[0] > wk[0] && all[0] < we[0]);
    }

    #[test]
    fn profile_std_is_zero_for_identical_days() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::HOUR_1, vec![2.0; 3 * 24]).unwrap();
        let std = day_profile_std(&s, DayKind::All).unwrap();
        assert!(std.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn empty_day_kind_errors() {
        // Two workdays only — no weekend data.
        let s = TimeSeries::new(
            ts("2013-03-18"), // Monday
            Resolution::HOUR_1,
            vec![1.0; 48],
        )
        .unwrap();
        assert!(typical_day_profile(&s, DayKind::Weekend).is_err());
        assert!(day_profile_std(&s, DayKind::Weekend).is_err());
        assert!(typical_day_profile(&s, DayKind::Workday).is_ok());
    }

    #[test]
    fn day_kind_matching() {
        assert!(DayKind::Workday.matches(ts("2013-03-18"))); // Monday
        assert!(!DayKind::Weekend.matches(ts("2013-03-18")));
        assert!(DayKind::Weekend.matches(ts("2013-03-23"))); // Saturday
        assert!(DayKind::All.matches(ts("2013-03-23")));
    }
}
