//! Seasonal anomaly detection.
//!
//! The related work the paper builds on includes "time series data
//! mining techniques, which stress … anomaly detection" (§5, ref \[13\]).
//! In this workspace anomalies are the multi-tariff signal: intervals
//! where a day deviates from the consumer's typical day beyond the
//! noise band. This module generalises that detector into a reusable
//! primitive (and adds the plain rolling z-score variant).

use crate::segment::{day_profile_std, typical_day_profile, DayKind};
use crate::{rolling, SeriesError, TimeSeries};
use flextract_time::Timestamp;
use serde::{Deserialize, Serialize};

/// Direction of a detected deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyDirection {
    /// Consumption above expectation.
    High,
    /// Consumption below expectation.
    Low,
}

/// One contiguous anomalous run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// First anomalous interval.
    pub start: Timestamp,
    /// Number of consecutive anomalous intervals.
    pub intervals: usize,
    /// Above or below expectation.
    pub direction: AnomalyDirection,
    /// Total signed deviation energy over the run (kWh; negative for
    /// [`AnomalyDirection::Low`]).
    pub deviation_kwh: f64,
    /// Peak |z|-score within the run.
    pub max_z: f64,
}

/// Detect runs deviating from the series' own *seasonal expectation*:
/// the per-interval-of-day mean ± `z_threshold` standard deviations
/// (computed per day-kind from the series itself).
///
/// Requires at least two whole days. This is the standalone version of
/// the multi-tariff comparison, applicable to a single series.
pub fn seasonal_anomalies(
    series: &TimeSeries,
    z_threshold: f64,
    noise_floor_kwh: f64,
) -> Result<Vec<Anomaly>, SeriesError> {
    let all_t = typical_day_profile(series, DayKind::All)?;
    let all_s = day_profile_std(series, DayKind::All)?;
    let per_kind = |kind: DayKind| -> (Vec<f64>, Vec<f64>) {
        match (
            typical_day_profile(series, kind),
            day_profile_std(series, kind),
        ) {
            (Ok(t), Ok(s)) => (t, s),
            _ => (all_t.clone(), all_s.clone()),
        }
    };
    let (work_t, work_s) = per_kind(DayKind::Workday);
    let (week_t, week_s) = per_kind(DayKind::Weekend);
    let per_day = series.resolution().intervals_per_day();

    let mut expected = Vec::with_capacity(series.len());
    let mut band = Vec::with_capacity(series.len());
    for i in 0..series.len() {
        let t = series.timestamp_of(i);
        let (typ, sig) = if t.day_of_week().is_weekend() {
            (&week_t, &week_s)
        } else {
            (&work_t, &work_s)
        };
        let idx = (t.minute_of_day() as i64 / series.resolution().minutes()) as usize % per_day;
        expected.push(typ[idx]);
        band.push((z_threshold * sig[idx]).max(noise_floor_kwh));
    }
    Ok(collect_runs(series, &expected, &band))
}

/// Detect runs deviating from a *rolling* baseline: trailing median ±
/// `z_threshold` × trailing std over `window` intervals. Works on any
/// series length (no whole-day requirement); the leading `window`
/// intervals are never flagged (the baseline is still warming up).
pub fn rolling_anomalies(
    series: &TimeSeries,
    window: usize,
    z_threshold: f64,
    noise_floor_kwh: f64,
) -> Vec<Anomaly> {
    if series.len() <= window {
        return Vec::new();
    }
    let med = rolling::rolling_median(series.values(), window);
    let std = rolling::rolling_std(series.values(), window);
    let mut expected = vec![f64::NAN; series.len()];
    let mut band = vec![f64::INFINITY; series.len()];
    for i in window..series.len() {
        // Baseline from the *previous* window, so a step is judged
        // against history that excludes itself.
        expected[i] = med[i - 1];
        band[i] = (z_threshold * std[i - 1]).max(noise_floor_kwh);
    }
    collect_runs(series, &expected, &band)
}

/// Replace every interval covered by `anomalies` with `NaN` in a copy
/// of the series' values — the hand-off from detection to the gap-fill
/// machinery ([`crate::missing`]). Screening an anomaly means treating
/// it as if the meter had not reported at all: the masked intervals
/// become gaps and are re-filled from the surrounding signal, which is
/// how the dataset ingestion pipeline neutralises spikes and dropouts.
///
/// Anomalies entirely outside the series span (or starting off-grid)
/// are ignored; runs overhanging either end are clipped to the overlap.
pub fn mask_anomalies(series: &TimeSeries, anomalies: &[Anomaly]) -> Vec<f64> {
    let mut values = series.values().to_vec();
    let res_min = series.resolution().minutes();
    for a in anomalies {
        let offset_min = (a.start - series.start()).as_minutes();
        if offset_min.rem_euclid(res_min) != 0 {
            continue;
        }
        let idx = offset_min.div_euclid(res_min);
        let begin = idx.clamp(0, series.len() as i64);
        let end = idx
            .saturating_add(a.intervals as i64)
            .clamp(begin, series.len() as i64);
        for v in &mut values[begin as usize..end as usize] {
            *v = f64::NAN;
        }
    }
    values
}

fn collect_runs(series: &TimeSeries, expected: &[f64], band: &[f64]) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let mut run: Option<(usize, AnomalyDirection, f64, f64)> = None;
    for i in 0..=series.len() {
        let status = if i < series.len() && expected[i].is_finite() {
            let diff = series.values()[i] - expected[i];
            if diff > band[i] {
                Some((AnomalyDirection::High, diff, diff / band[i].max(1e-12)))
            } else if diff < -band[i] {
                Some((AnomalyDirection::Low, diff, -diff / band[i].max(1e-12)))
            } else {
                None
            }
        } else {
            None
        };
        match (&mut run, status) {
            (None, Some((dir, diff, z))) => run = Some((i, dir, diff, z)),
            (Some((start, dir, dev, max_z)), Some((d2, diff, z))) if *dir == d2 => {
                *dev += diff;
                *max_z = max_z.max(z);
                let _ = start;
            }
            (Some((start, dir, dev, max_z)), next) => {
                out.push(Anomaly {
                    start: series.timestamp_of(*start),
                    intervals: i - *start,
                    direction: *dir,
                    deviation_kwh: *dev,
                    max_z: *max_z,
                });
                run = next.map(|(d, diff, z)| (i, d, diff, z));
            }
            (None, None) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Resolution;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// Seven identical flat days, then one day with a block anomaly.
    fn series_with_block() -> TimeSeries {
        let mut values = vec![0.5; 8 * 96];
        for v in values.iter_mut().skip(7 * 96 + 40).take(4) {
            *v = 1.5;
        }
        TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap()
    }

    #[test]
    fn seasonal_detector_finds_the_block() {
        let s = series_with_block();
        let anomalies = seasonal_anomalies(&s, 2.0, 0.05).unwrap();
        // Exactly one high run of 4 intervals at the planted position.
        let highs: Vec<&Anomaly> = anomalies
            .iter()
            .filter(|a| a.direction == AnomalyDirection::High)
            .collect();
        assert_eq!(highs.len(), 1, "{anomalies:?}");
        assert_eq!(highs[0].intervals, 4);
        assert_eq!(highs[0].start, ts("2013-03-25 10:00"));
        assert!(highs[0].deviation_kwh > 3.0, "{}", highs[0].deviation_kwh);
        assert!(highs[0].max_z > 1.0);
    }

    #[test]
    fn seasonal_detector_is_quiet_on_clean_data() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5; 5 * 96]).unwrap();
        let anomalies = seasonal_anomalies(&s, 2.0, 0.05).unwrap();
        assert!(anomalies.is_empty(), "{anomalies:?}");
    }

    #[test]
    fn low_anomalies_are_signed_negative() {
        let mut values = vec![0.5; 8 * 96];
        for v in values.iter_mut().skip(7 * 96 + 20).take(3) {
            *v = 0.0;
        }
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap();
        let anomalies = seasonal_anomalies(&s, 2.0, 0.05).unwrap();
        let lows: Vec<&Anomaly> = anomalies
            .iter()
            .filter(|a| a.direction == AnomalyDirection::Low)
            .collect();
        assert_eq!(lows.len(), 1);
        assert!(lows[0].deviation_kwh < -1.0);
    }

    #[test]
    fn rolling_detector_flags_steps_not_baseline() {
        // Flat 0.2, one spike of 2 intervals.
        let mut values = vec![0.2; 200];
        values[150] = 2.0;
        values[151] = 2.0;
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap();
        let anomalies = rolling_anomalies(&s, 24, 3.0, 0.05);
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].direction, AnomalyDirection::High);
        assert_eq!(anomalies[0].intervals, 2);
        assert_eq!(s.index_of(anomalies[0].start), Some(150));
    }

    #[test]
    fn rolling_detector_skips_warmup() {
        // A spike inside the warm-up window is not judged.
        let mut values = vec![0.2; 100];
        values[5] = 5.0;
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap();
        let anomalies = rolling_anomalies(&s, 24, 3.0, 0.05);
        assert!(anomalies.iter().all(|a| s.index_of(a.start).unwrap() >= 24));
    }

    #[test]
    fn short_series_yield_nothing_or_error() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5; 10]).unwrap();
        assert!(rolling_anomalies(&s, 24, 3.0, 0.05).is_empty());
        assert!(seasonal_anomalies(&s, 2.0, 0.05).is_err()); // no whole day
    }

    #[test]
    fn mask_anomalies_turns_runs_into_gaps() {
        let s = series_with_block();
        let anomalies = seasonal_anomalies(&s, 2.0, 0.05).unwrap();
        let masked = mask_anomalies(&s, &anomalies);
        let nan_count = masked.iter().filter(|v| v.is_nan()).count();
        assert_eq!(nan_count, 4, "exactly the planted block is masked");
        for (i, v) in masked.iter().enumerate() {
            if (7 * 96 + 40..7 * 96 + 44).contains(&i) {
                assert!(v.is_nan());
            } else {
                assert!(!v.is_nan());
            }
        }
        // A run extending past the end is clipped, one before the
        // start is ignored.
        let wild = vec![
            Anomaly {
                start: ts("2013-03-25 23:45"),
                intervals: 10,
                direction: AnomalyDirection::High,
                deviation_kwh: 1.0,
                max_z: 2.0,
            },
            Anomaly {
                start: ts("2013-03-01"),
                intervals: 3,
                direction: AnomalyDirection::Low,
                deviation_kwh: -1.0,
                max_z: 2.0,
            },
        ];
        let masked = mask_anomalies(&s, &wild);
        assert_eq!(masked.iter().filter(|v| v.is_nan()).count(), 1);
        assert!(masked[8 * 96 - 1].is_nan());
        // A run overhanging the *start* is clipped symmetrically: the
        // in-span part is masked.
        let overhang = vec![Anomaly {
            start: ts("2013-03-17 23:45"),
            intervals: 3,
            direction: AnomalyDirection::High,
            deviation_kwh: 1.0,
            max_z: 2.0,
        }];
        let masked = mask_anomalies(&s, &overhang);
        assert!(masked[0].is_nan());
        assert!(masked[1].is_nan());
        assert_eq!(masked.iter().filter(|v| v.is_nan()).count(), 2);
    }

    #[test]
    fn noise_floor_suppresses_tiny_wiggles() {
        let mut values = vec![0.5; 6 * 96];
        values[300] = 0.52; // 0.02 above — inside a 0.05 floor
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap();
        let anomalies = seasonal_anomalies(&s, 2.0, 0.05).unwrap();
        assert!(anomalies.is_empty(), "{anomalies:?}");
    }
}
