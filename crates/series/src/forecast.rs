//! Lightweight consumption/production forecasting.
//!
//! MIRABEL pairs flex-offer management with "reliable and near
//! real-time forecasting of energy production and consumption" (paper
//! §1, ref \[6\]). The workspace needs forecasts in two places: the
//! real-time flex-offer generator (predicting the rest of a day while
//! it is still happening) and production flex-offer extraction
//! (§6: the RES producer "can maintain highly specialized and accurate
//! local weather forecast"). Two classical baselines cover both:
//!
//! * [`ForecastMethod::Persistence`] — tomorrow looks like the last
//!   observed value;
//! * [`ForecastMethod::SeasonalNaive`] — tomorrow looks like the same
//!   interval of the typical day (optionally blended toward recent
//!   levels via [`ForecastMethod::SeasonalScaled`]).

use crate::segment::{split_whole_days, typical_day_profile, DayKind};
use crate::{SeriesError, TimeSeries};
use flextract_time::Resolution;
use serde::{Deserialize, Serialize};

/// Forecasting method selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForecastMethod {
    /// Repeat the last observed value for every future interval.
    Persistence,
    /// Repeat the per-interval-of-day mean of the history (day-kind
    /// aware: workday history forecasts workdays, weekend history
    /// forecasts weekends, falling back to all days).
    SeasonalNaive,
    /// Seasonal naive scaled by the ratio of the last observed day's
    /// total to the typical day's total (adapts to level shifts).
    SeasonalScaled,
}

/// Forecast `horizon_intervals` beyond the end of `history`.
///
/// The result is a [`TimeSeries`] starting exactly at `history.end()`
/// with the same resolution. Errors with [`SeriesError::Empty`] when
/// the history is empty (or, for the seasonal methods, contains no
/// whole day).
pub fn forecast(
    history: &TimeSeries,
    horizon_intervals: usize,
    method: ForecastMethod,
) -> Result<TimeSeries, SeriesError> {
    if history.is_empty() {
        return Err(SeriesError::Empty);
    }
    let start = history.end();
    let res = history.resolution();
    let values = match method {
        ForecastMethod::Persistence => {
            let last = *history.values().last().expect("checked non-empty");
            vec![last; horizon_intervals]
        }
        ForecastMethod::SeasonalNaive => {
            seasonal_values(history, start, res, horizon_intervals, 1.0)?
        }
        ForecastMethod::SeasonalScaled => {
            let days = split_whole_days(history);
            let last_day = days.last().ok_or(SeriesError::Empty)?;
            let typical_total: f64 = typical_day_profile(history, DayKind::All)?.iter().sum();
            let scale = if typical_total > 0.0 {
                (last_day.total_energy() / typical_total).clamp(0.25, 4.0)
            } else {
                1.0
            };
            seasonal_values(history, start, res, horizon_intervals, scale)?
        }
    };
    TimeSeries::new(start, res, values)
}

fn seasonal_values(
    history: &TimeSeries,
    start: flextract_time::Timestamp,
    res: Resolution,
    horizon: usize,
    scale: f64,
) -> Result<Vec<f64>, SeriesError> {
    let all = typical_day_profile(history, DayKind::All)?;
    let work = typical_day_profile(history, DayKind::Workday).unwrap_or_else(|_| all.clone());
    let weekend = typical_day_profile(history, DayKind::Weekend).unwrap_or_else(|_| all.clone());
    let per_day = res.intervals_per_day();
    let mut out = Vec::with_capacity(horizon);
    for i in 0..horizon {
        let t = start + res.interval() * i as i64;
        let profile = if t.day_of_week().is_weekend() {
            &weekend
        } else {
            &work
        };
        let idx = (t.minute_of_day() as i64 / res.minutes()) as usize % per_day;
        out.push(profile[idx] * scale);
    }
    Ok(out)
}

/// Mean absolute percentage error of a forecast against actuals on the
/// same grid; intervals with |actual| ≤ `floor` are skipped to avoid
/// division blow-ups. `None` when nothing is comparable.
pub fn mape(forecast: &TimeSeries, actual: &TimeSeries, floor: f64) -> Option<f64> {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, f) in forecast.iter() {
        if let Some(a) = actual.value_at(t) {
            if a.abs() > floor {
                acc += ((f - a) / a).abs();
                n += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some(acc / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::{Duration, Timestamp};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// Two weeks, hourly: workdays flat 1.0, weekends flat 3.0.
    fn history() -> TimeSeries {
        let start = ts("2013-03-04"); // Monday
        let mut values = Vec::new();
        for d in 0..14 {
            let t = start + Duration::days(d);
            let level = if t.day_of_week().is_weekend() {
                3.0
            } else {
                1.0
            };
            values.extend(vec![level; 24]);
        }
        TimeSeries::new(start, Resolution::HOUR_1, values).unwrap()
    }

    #[test]
    fn persistence_repeats_last_value() {
        let h = history();
        let f = forecast(&h, 48, ForecastMethod::Persistence).unwrap();
        assert_eq!(f.start(), h.end());
        assert_eq!(f.len(), 48);
        // Last observed value is a Sunday 3.0.
        assert!(f.values().iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn seasonal_naive_respects_day_kinds() {
        let h = history(); // ends Monday 2013-03-18 00:00
        let f = forecast(&h, 24 * 7, ForecastMethod::SeasonalNaive).unwrap();
        // Mon..Fri forecast at the workday level, Sat/Sun at weekend level.
        let monday = f.slice(
            flextract_time::TimeRange::starting_at(ts("2013-03-18"), Duration::days(1)).unwrap(),
        );
        assert!(monday.values().iter().all(|&v| (v - 1.0).abs() < 1e-9));
        let saturday = f.slice(
            flextract_time::TimeRange::starting_at(ts("2013-03-23"), Duration::days(1)).unwrap(),
        );
        assert!(saturday.values().iter().all(|&v| (v - 3.0).abs() < 1e-9));
    }

    #[test]
    fn seasonal_scaled_adapts_to_level_shift() {
        // History whose final day runs 2× the typical level.
        let mut h = history();
        let n = h.len();
        for v in h.values_mut()[n - 24..].iter_mut() {
            *v *= 2.0;
        }
        let naive = forecast(&h, 24, ForecastMethod::SeasonalNaive).unwrap();
        let scaled = forecast(&h, 24, ForecastMethod::SeasonalScaled).unwrap();
        assert!(scaled.total_energy() > naive.total_energy());
    }

    #[test]
    fn forecast_grid_is_contiguous() {
        let h = history();
        for m in [
            ForecastMethod::Persistence,
            ForecastMethod::SeasonalNaive,
            ForecastMethod::SeasonalScaled,
        ] {
            let f = forecast(&h, 10, m).unwrap();
            assert_eq!(f.start(), h.end());
            assert_eq!(f.resolution(), h.resolution());
            assert_eq!(f.len(), 10);
        }
    }

    #[test]
    fn empty_history_errors() {
        let empty = TimeSeries::new(ts("2013-03-04"), Resolution::HOUR_1, vec![]).unwrap();
        assert_eq!(
            forecast(&empty, 4, ForecastMethod::Persistence),
            Err(SeriesError::Empty)
        );
        // Seasonal methods additionally need a whole day.
        let stub = TimeSeries::new(ts("2013-03-04"), Resolution::HOUR_1, vec![1.0; 3]).unwrap();
        assert!(forecast(&stub, 4, ForecastMethod::SeasonalNaive).is_err());
        assert!(forecast(&stub, 4, ForecastMethod::Persistence).is_ok());
    }

    #[test]
    fn mape_on_perfect_forecast_is_zero() {
        let h = history();
        let f = forecast(&h, 24, ForecastMethod::SeasonalNaive).unwrap();
        // Actual continues the weekly pattern exactly (Monday 1.0).
        let actual = TimeSeries::new(h.end(), Resolution::HOUR_1, vec![1.0; 24]).unwrap();
        let err = mape(&f, &actual, 1e-6).unwrap();
        assert!(err < 1e-9, "{err}");
        // Against a doubled actual, MAPE is 0.5.
        let doubled = actual.scale(2.0);
        let err = mape(&f, &doubled, 1e-6).unwrap();
        assert!((err - 0.5).abs() < 1e-9);
        // Disjoint grids → None.
        let far = TimeSeries::new(ts("2014-01-01"), Resolution::HOUR_1, vec![1.0; 4]).unwrap();
        assert_eq!(mape(&f, &far, 1e-6), None);
    }
}
