//! The core fixed-interval energy series type.

use crate::SeriesError;
#[cfg(test)]
use flextract_time::Duration;
use flextract_time::{Resolution, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

/// A dense, fixed-resolution energy time series.
///
/// Each element is the energy consumed (or produced) during one interval,
/// in **kWh per interval** — the unit used on the y-axis of the paper's
/// Figure 5. The series is anchored at an interval-aligned `start`; the
/// value at index `i` covers `[start + i·res, start + (i+1)·res)`.
///
/// The type is deliberately value-semantic (`Clone`, `PartialEq`) and
/// keeps its invariants privately:
///
/// * `start` is aligned to the resolution grid;
/// * all values are finite — enforced by [`TimeSeries::new`], which
///   rejects NaN/±∞ with [`SeriesError::NonFinite`]; gaps are
///   represented by the [`missing`] module's sentinel handling *before*
///   a raw vector becomes a `TimeSeries`.
///
/// [`missing`]: crate::missing
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: Timestamp,
    resolution: Resolution,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Construct a series from interval energies.
    ///
    /// Returns [`SeriesError::UnalignedStart`] if `start` is not on the
    /// resolution grid, and [`SeriesError::NonFinite`] if any value is
    /// NaN or ±∞ — gaps must be filled (see [`crate::missing`]) before a
    /// raw vector becomes a `TimeSeries`.
    pub fn new(
        start: Timestamp,
        resolution: Resolution,
        values: Vec<f64>,
    ) -> Result<Self, SeriesError> {
        if !start.is_aligned(resolution) {
            return Err(SeriesError::UnalignedStart);
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(SeriesError::NonFinite { index });
        }
        Ok(TimeSeries {
            start,
            resolution,
            values,
        })
    }

    /// A series of `len` intervals all holding `value`.
    ///
    /// Panics if `start` is unaligned — the constant constructor is used
    /// with literal, known-aligned starts in examples and tests.
    pub fn constant(start: Timestamp, resolution: Resolution, value: f64, len: usize) -> Self {
        Self::new(start, resolution, vec![value; len])
            .expect("constant() requires an aligned start")
    }

    /// An all-zero series on the same grid (start, resolution, length)
    /// as `other` — the allocation-light way to start an accumulator or
    /// an extraction output.
    pub fn zeros_like(other: &TimeSeries) -> Self {
        TimeSeries {
            start: other.start,
            resolution: other.resolution,
            values: vec![0.0; other.values.len()],
        }
    }

    /// An all-zero series covering `range` at `resolution`.
    pub fn zeros_over(range: TimeRange, resolution: Resolution) -> Result<Self, SeriesError> {
        let aligned = range.align_outward(resolution);
        Self::new(
            aligned.start(),
            resolution,
            vec![0.0; aligned.interval_count(resolution)],
        )
    }

    /// First instant covered by the series.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// One-past-the-last instant covered.
    pub fn end(&self) -> Timestamp {
        self.start + self.resolution.interval() * self.values.len() as i64
    }

    /// The interval width.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The covered span as a half-open range.
    pub fn range(&self) -> TimeRange {
        // `end() >= start` by construction (non-negative interval count
        // times a positive resolution), so the fallback is unreachable;
        // it exists so this accessor can never abort the process.
        TimeRange::new(self.start, self.end()).unwrap_or_else(|_| TimeRange::empty_at(self.start))
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series has no intervals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read-only view of all interval energies.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of all interval energies.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume the series, yielding its raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Energy of interval `i`, if in range.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.values.get(i).copied()
    }

    /// The index of the interval containing `t`, if covered.
    pub fn index_of(&self, t: Timestamp) -> Option<usize> {
        if t < self.start || t >= self.end() {
            return None;
        }
        Some(((t - self.start).as_minutes() / self.resolution.minutes()) as usize)
    }

    /// The start instant of interval `i` (may point one past the end,
    /// which is useful for half-open iteration).
    pub fn timestamp_of(&self, i: usize) -> Timestamp {
        self.start + self.resolution.interval() * i as i64
    }

    /// Energy of the interval containing `t`, if covered.
    pub fn value_at(&self, t: Timestamp) -> Option<f64> {
        self.index_of(t).map(|i| self.values[i])
    }

    /// Average power during interval `i` in kW (energy ÷ interval hours).
    pub fn power_kw(&self, i: usize) -> Option<f64> {
        self.get(i).map(|e| e / self.resolution.hours_f64())
    }

    /// Iterate `(interval_start, energy_kwh)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.timestamp_of(i), v))
    }

    /// Total energy over the whole series (kWh).
    pub fn total_energy(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Total energy within `range` (whole intervals whose start lies in
    /// `range`).
    pub fn energy_in(&self, range: TimeRange) -> f64 {
        self.iter()
            .filter(|(t, _)| range.contains(*t))
            .map(|(_, v)| v)
            .sum()
    }

    /// The sub-series covering the overlap of `range` with this series.
    ///
    /// The overlap is widened outward to interval boundaries. Returns an
    /// empty series at the clamped start if there is no overlap.
    pub fn slice(&self, range: TimeRange) -> TimeSeries {
        let aligned = range.align_outward(self.resolution);
        match self.range().intersect(aligned) {
            None => TimeSeries {
                start: aligned.start().max(self.start).min(self.end()),
                resolution: self.resolution,
                values: Vec::new(),
            },
            Some(ix) => {
                // The intersection start lies inside the series by
                // construction; if either lookup ever misses, degrade
                // to an empty slice instead of aborting the process.
                let lo = self.index_of(ix.start()).unwrap_or(self.values.len());
                let n = ix.interval_count(self.resolution);
                let values = self
                    .values
                    .get(lo..(lo + n).min(self.values.len()))
                    .unwrap_or_default()
                    .to_vec();
                TimeSeries {
                    start: ix.start(),
                    resolution: self.resolution,
                    values,
                }
            }
        }
    }

    /// Append `other`, which must share the resolution and start exactly
    /// where this series ends.
    pub fn concat(&mut self, other: &TimeSeries) -> Result<(), SeriesError> {
        if other.resolution != self.resolution {
            return Err(SeriesError::ResolutionMismatch {
                left: self.resolution,
                right: other.resolution,
            });
        }
        if self.is_empty() {
            self.start = other.start;
            self.values.extend_from_slice(&other.values);
            return Ok(());
        }
        if other.start != self.end() {
            return Err(SeriesError::AlignmentMismatch);
        }
        self.values.extend_from_slice(&other.values);
        Ok(())
    }

    /// `true` if `other` shares resolution and exact grid span.
    pub fn same_grid(&self, other: &TimeSeries) -> bool {
        self.resolution == other.resolution
            && self.start == other.start
            && self.values.len() == other.values.len()
    }

    fn check_same_grid(&self, other: &TimeSeries) -> Result<(), SeriesError> {
        if self.resolution != other.resolution {
            return Err(SeriesError::ResolutionMismatch {
                left: self.resolution,
                right: other.resolution,
            });
        }
        if self.start != other.start {
            return Err(SeriesError::AlignmentMismatch);
        }
        if self.values.len() != other.values.len() {
            return Err(SeriesError::LengthMismatch {
                left: self.values.len(),
                right: other.values.len(),
            });
        }
        Ok(())
    }

    /// Pointwise sum with a grid-identical series, in place. Exactly
    /// the float operations of [`TimeSeries::add`] without allocating a
    /// fresh value vector — the accumulation primitive of hot loops.
    pub fn add_assign(&mut self, other: &TimeSeries) -> Result<(), SeriesError> {
        self.check_same_grid(other)?;
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
        Ok(())
    }

    /// Pointwise sum with a grid-identical series.
    pub fn add(&self, other: &TimeSeries) -> Result<TimeSeries, SeriesError> {
        self.check_same_grid(other)?;
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a + b)
            .collect();
        Ok(TimeSeries {
            start: self.start,
            resolution: self.resolution,
            values,
        })
    }

    /// Pointwise difference with a grid-identical series.
    pub fn sub(&self, other: &TimeSeries) -> Result<TimeSeries, SeriesError> {
        self.check_same_grid(other)?;
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a - b)
            .collect();
        Ok(TimeSeries {
            start: self.start,
            resolution: self.resolution,
            values,
        })
    }

    /// Subtract `other` wherever it overlaps this series, in place.
    ///
    /// `other` may cover any sub-span on the same resolution grid; parts
    /// outside this series are ignored. This is the primitive behind
    /// "modified time series where the flexible energy amount is
    /// subtracted" (paper §4).
    pub fn sub_overlapping(&mut self, other: &TimeSeries) -> Result<(), SeriesError> {
        if other.resolution != self.resolution {
            return Err(SeriesError::ResolutionMismatch {
                left: self.resolution,
                right: other.resolution,
            });
        }
        if (other.start - self.start).as_minutes() % self.resolution.minutes() != 0 {
            return Err(SeriesError::AlignmentMismatch);
        }
        for (t, v) in other.iter() {
            if let Some(i) = self.index_of(t) {
                self.values[i] -= v;
            }
        }
        Ok(())
    }

    /// Add `other` wherever it overlaps this series, in place (the
    /// inverse of [`TimeSeries::sub_overlapping`]).
    pub fn add_overlapping(&mut self, other: &TimeSeries) -> Result<(), SeriesError> {
        if other.resolution != self.resolution {
            return Err(SeriesError::ResolutionMismatch {
                left: self.resolution,
                right: other.resolution,
            });
        }
        if (other.start - self.start).as_minutes() % self.resolution.minutes() != 0 {
            return Err(SeriesError::AlignmentMismatch);
        }
        for (t, v) in other.iter() {
            if let Some(i) = self.index_of(t) {
                self.values[i] += v;
            }
        }
        Ok(())
    }

    /// Multiply every value by `factor`, returning a new series.
    pub fn scale(&self, factor: f64) -> TimeSeries {
        TimeSeries {
            start: self.start,
            resolution: self.resolution,
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Apply `f` to every value, returning a new series.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries {
            start: self.start,
            resolution: self.resolution,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Clamp negative values to zero in place, returning how much energy
    /// was clipped (as a non-negative number).
    ///
    /// Extraction subtracts estimated flexible energy from measured
    /// consumption; estimation error can push residuals slightly below
    /// zero, which is physically meaningless for consumption series.
    pub fn clip_negative(&mut self) -> f64 {
        let mut clipped = 0.0;
        for v in &mut self.values {
            if *v < 0.0 {
                clipped -= *v;
                *v = 0.0;
            }
        }
        clipped
    }

    /// The index and value of the maximum interval (ties → first).
    pub fn argmax(&self) -> Option<(usize, f64)> {
        self.values
            .iter()
            .enumerate()
            .fold(None, |best, (i, &v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((i, v)),
            })
    }

    /// Render as `time,value` CSV lines (header included) — handy for
    /// eyeballing experiment output and plotting externally.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.values.len() * 28 + 16);
        out.push_str("interval_start,kwh\n");
        for (t, v) in self.iter() {
            out.push_str(&format!("{t},{v:.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn day_series(vals: Vec<f64>) -> TimeSeries {
        TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vals).unwrap()
    }

    #[test]
    fn construction_checks_alignment() {
        let bad_start = ts("2013-03-18 00:07");
        assert_eq!(
            TimeSeries::new(bad_start, Resolution::MIN_15, vec![1.0]),
            Err(SeriesError::UnalignedStart)
        );
        assert!(TimeSeries::new(ts("2013-03-18 00:15"), Resolution::MIN_15, vec![1.0]).is_ok());
    }

    #[test]
    fn construction_rejects_non_finite_values() {
        // The documented invariant "all values are finite" is enforced,
        // not assumed: NaN/∞ smuggled in by a hostile input surfaces as
        // a typed error naming the offending index.
        for (bad, index) in [
            (vec![1.0, f64::NAN, 2.0], 1),
            (vec![f64::INFINITY], 0),
            (vec![0.0, 1.0, f64::NEG_INFINITY], 2),
        ] {
            assert_eq!(
                TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, bad),
                Err(SeriesError::NonFinite { index })
            );
        }
        // Ordinary finite values (including negatives and zero) pass.
        assert!(
            TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![-1.0, 0.0, 1e300]).is_ok()
        );
    }

    #[test]
    fn zeros_like_copies_the_grid() {
        let s = day_series(vec![0.7; 96]);
        let z = TimeSeries::zeros_like(&s);
        assert!(z.same_grid(&s));
        assert_eq!(z.total_energy(), 0.0);
    }

    #[test]
    fn add_assign_matches_add() {
        let a = day_series((0..96).map(|i| i as f64 * 0.013).collect());
        let b = day_series((0..96).map(|i| (96 - i) as f64 * 0.007).collect());
        let sum = a.add(&b).unwrap();
        let mut acc = a.clone();
        acc.add_assign(&b).unwrap();
        assert_eq!(acc, sum);
        // Same grid checks as `add`.
        let short = day_series(vec![1.0; 95]);
        assert!(matches!(
            acc.add_assign(&short),
            Err(SeriesError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn span_accessors() {
        let s = day_series(vec![0.5; 96]);
        assert_eq!(s.len(), 96);
        assert!(!s.is_empty());
        assert_eq!(s.start(), ts("2013-03-18"));
        assert_eq!(s.end(), ts("2013-03-19"));
        assert_eq!(s.range().duration(), Duration::DAY);
        assert!((s.total_energy() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn indexing_by_time() {
        let s = day_series((0..96).map(|i| i as f64).collect());
        assert_eq!(s.index_of(ts("2013-03-18 00:00")), Some(0));
        assert_eq!(s.index_of(ts("2013-03-18 00:14")), Some(0));
        assert_eq!(s.index_of(ts("2013-03-18 00:15")), Some(1));
        assert_eq!(s.index_of(ts("2013-03-18 23:45")), Some(95));
        assert_eq!(s.index_of(ts("2013-03-19 00:00")), None);
        assert_eq!(s.index_of(ts("2013-03-17 23:59")), None);
        assert_eq!(s.value_at(ts("2013-03-18 12:00")), Some(48.0));
        assert_eq!(s.timestamp_of(48), ts("2013-03-18 12:00"));
    }

    #[test]
    fn power_conversion() {
        let s = day_series(vec![0.5; 96]);
        // 0.5 kWh in 15 min = 2 kW.
        assert!((s.power_kw(0).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.power_kw(96), None);
    }

    #[test]
    fn energy_in_range() {
        let s = day_series(vec![1.0; 96]);
        let morning = TimeRange::new(ts("2013-03-18 06:00"), ts("2013-03-18 09:00")).unwrap();
        assert!((s.energy_in(morning) - 12.0).abs() < 1e-9);
        // Range extending beyond the series only counts covered intervals.
        let over = TimeRange::new(ts("2013-03-18 23:00"), ts("2013-03-19 02:00")).unwrap();
        assert!((s.energy_in(over) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn slice_is_aligned_copy() {
        let s = day_series((0..96).map(|i| i as f64).collect());
        let range = TimeRange::new(ts("2013-03-18 06:07"), ts("2013-03-18 07:08")).unwrap();
        let sub = s.slice(range);
        assert_eq!(sub.start(), ts("2013-03-18 06:00"));
        assert_eq!(sub.len(), 5); // 06:00..07:15
        assert_eq!(sub.values()[0], 24.0);
        // Disjoint slice is empty.
        let gone = s.slice(TimeRange::new(ts("2013-03-20"), ts("2013-03-21")).unwrap());
        assert!(gone.is_empty());
    }

    #[test]
    fn slice_clips_to_series_bounds() {
        let s = day_series(vec![1.0; 96]);
        let wide = TimeRange::new(ts("2013-03-17"), ts("2013-03-20")).unwrap();
        let sub = s.slice(wide);
        assert_eq!(sub.start(), s.start());
        assert_eq!(sub.len(), 96);
    }

    #[test]
    fn concat_requires_contiguity() {
        let mut a = day_series(vec![1.0; 96]);
        let b = TimeSeries::new(ts("2013-03-19"), Resolution::MIN_15, vec![2.0; 96]).unwrap();
        a.concat(&b).unwrap();
        assert_eq!(a.len(), 192);
        assert_eq!(a.end(), ts("2013-03-20"));
        // Gap → error.
        let c = TimeSeries::new(ts("2013-03-21"), Resolution::MIN_15, vec![1.0]).unwrap();
        assert_eq!(a.concat(&c), Err(SeriesError::AlignmentMismatch));
        // Resolution mismatch → error.
        let d = TimeSeries::new(ts("2013-03-20"), Resolution::HOUR_1, vec![1.0]).unwrap();
        assert!(matches!(
            a.concat(&d),
            Err(SeriesError::ResolutionMismatch { .. })
        ));
        // Concat onto empty adopts the other's grid.
        let mut e = TimeSeries::new(ts("2013-01-01"), Resolution::MIN_15, vec![]).unwrap();
        e.concat(&b).unwrap();
        assert_eq!(e.start(), ts("2013-03-19"));
    }

    #[test]
    fn pointwise_algebra() {
        let a = day_series(vec![1.0; 96]);
        let b = day_series(vec![0.25; 96]);
        let sum = a.add(&b).unwrap();
        assert!((sum.total_energy() - 120.0).abs() < 1e-9);
        let diff = a.sub(&b).unwrap();
        assert!((diff.total_energy() - 72.0).abs() < 1e-9);
        let shifted = TimeSeries::new(ts("2013-03-19"), Resolution::MIN_15, vec![1.0; 96]).unwrap();
        assert_eq!(a.add(&shifted), Err(SeriesError::AlignmentMismatch));
        let short = day_series(vec![1.0; 95]);
        assert!(matches!(
            a.add(&short),
            Err(SeriesError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn overlapping_subtraction() {
        let mut base = day_series(vec![1.0; 96]);
        // A 1-hour extraction at 10:00 of 0.4 kWh per interval.
        let flex =
            TimeSeries::new(ts("2013-03-18 10:00"), Resolution::MIN_15, vec![0.4; 4]).unwrap();
        base.sub_overlapping(&flex).unwrap();
        assert!((base.value_at(ts("2013-03-18 10:00")).unwrap() - 0.6).abs() < 1e-9);
        assert!((base.value_at(ts("2013-03-18 09:45")).unwrap() - 1.0).abs() < 1e-9);
        assert!((base.total_energy() - (96.0 - 1.6)).abs() < 1e-9);
        base.add_overlapping(&flex).unwrap();
        assert!((base.total_energy() - 96.0).abs() < 1e-9);
        // Misphased grid → error.
        let misphased =
            TimeSeries::new(ts("2013-03-18 10:05"), Resolution::MIN_5, vec![0.1]).unwrap();
        assert!(base.sub_overlapping(&misphased).is_err());
    }

    #[test]
    fn sub_overlapping_ignores_outside_parts() {
        let mut base = day_series(vec![1.0; 96]);
        let tail = TimeSeries::new(
            ts("2013-03-18 23:30"),
            Resolution::MIN_15,
            vec![0.5; 4], // last two intervals fall on the next day
        )
        .unwrap();
        base.sub_overlapping(&tail).unwrap();
        assert!((base.total_energy() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn scale_map_clip() {
        let s = day_series(vec![2.0; 96]);
        assert!((s.scale(0.05).total_energy() - 9.6).abs() < 1e-9);
        let mapped = s.map(|v| v - 3.0);
        let mut m = mapped.clone();
        let clipped = m.clip_negative();
        assert!((clipped - 96.0).abs() < 1e-9);
        assert!(m.values().iter().all(|&v| v == 0.0));
        assert_eq!(mapped.values()[0], -1.0); // original map untouched
    }

    #[test]
    fn argmax_finds_first_peak() {
        let mut vals = vec![0.1; 96];
        vals[40] = 2.0;
        vals[50] = 2.0;
        let s = day_series(vals);
        assert_eq!(s.argmax(), Some((40, 2.0)));
        let empty = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![]).unwrap();
        assert_eq!(empty.argmax(), None);
    }

    #[test]
    fn csv_rendering() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5, 1.0]).unwrap();
        let csv = s.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "interval_start,kwh");
        assert!(lines[1].starts_with("2013-03-18 00:00,0.5"));
        assert!(lines[2].starts_with("2013-03-18 00:15,1.0"));
    }

    #[test]
    fn serde_round_trip() {
        let s = day_series(vec![0.25; 4]);
        let json = serde_json::to_string(&s).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn zeros_over_covers_range() {
        let range = TimeRange::new(ts("2013-03-18 10:07"), ts("2013-03-18 11:52")).unwrap();
        let z = TimeSeries::zeros_over(range, Resolution::MIN_15).unwrap();
        assert_eq!(z.start(), ts("2013-03-18 10:00"));
        assert_eq!(z.len(), 8);
        assert_eq!(z.total_energy(), 0.0);
    }
}
