//! Classical additive time-series decomposition.
//!
//! "Usually, the time series is composed of the trend, seasonal, and
//! error components" (paper §5, ref \[12\] — the TimeTravel model-based
//! view). This module implements the textbook additive decomposition:
//!
//! * **trend** — centred moving average of one season length;
//! * **seasonal** — per-phase means of the detrended series, centred to
//!   sum to zero over one period;
//! * **remainder** — what is left.
//!
//! The multi-tariff extractor uses the seasonal component (period = one
//! day) as an alternative baseline estimate, and the evaluation suite
//! uses the remainder variance as a realism statistic.

use crate::{stats, SeriesError, TimeSeries};
use serde::{Deserialize, Serialize};

/// The three additive components of a decomposed series, index-aligned
/// with the input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Season length in intervals used for the decomposition.
    pub period: usize,
    /// Centred moving-average trend. The first and last `period/2`
    /// entries cannot be estimated and hold the nearest estimate
    /// (edge-extended) so the component is total-length.
    pub trend: Vec<f64>,
    /// Periodic component, one value per input interval (repeats every
    /// `period`), centred to zero mean over a period.
    pub seasonal: Vec<f64>,
    /// Remainder: `input - trend - seasonal`.
    pub remainder: Vec<f64>,
}

impl Decomposition {
    /// The seasonal profile for a single period (length `period`).
    pub fn seasonal_profile(&self) -> &[f64] {
        &self.seasonal[..self.period.min(self.seasonal.len())]
    }

    /// Reconstruct the original values (`trend + seasonal + remainder`).
    pub fn reconstruct(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(&self.seasonal)
            .zip(&self.remainder)
            .map(|((t, s), r)| t + s + r)
            .collect()
    }

    /// Fraction of total variance captured by trend + seasonal
    /// (1 − var(remainder)/var(input)); `None` for degenerate inputs.
    pub fn explained_variance(&self) -> Option<f64> {
        let input = self.reconstruct();
        let vi = stats::variance(&input)?;
        if vi == 0.0 {
            return None;
        }
        let vr = stats::variance(&self.remainder)?;
        Some(1.0 - vr / vi)
    }
}

/// Decompose `series` with the given season length in intervals.
///
/// Requires at least two full periods of data, and `period >= 2`.
pub fn decompose(series: &TimeSeries, period: usize) -> Result<Decomposition, SeriesError> {
    let xs = series.values();
    decompose_values(xs, period)
}

/// [`decompose`] on raw values, for callers that already hold a window.
pub fn decompose_values(xs: &[f64], period: usize) -> Result<Decomposition, SeriesError> {
    if period < 2 {
        return Err(SeriesError::IncompatibleResolution);
    }
    if xs.len() < 2 * period {
        return Err(SeriesError::TooShort {
            len: xs.len(),
            required: 2 * period,
        });
    }
    let n = xs.len();

    // 1. Centred moving average of window `period` (with the standard
    //    half-weight endpoints when the period is even).
    let half = period / 2;
    let mut trend = vec![f64::NAN; n];
    if period % 2 == 1 {
        for i in half..n - half {
            let window = &xs[i - half..=i + half];
            trend[i] = window.iter().sum::<f64>() / period as f64;
        }
    } else {
        // 2×(period)-MA: half weights on the two extreme points.
        for i in half..n - half {
            let mut acc = 0.5 * xs[i - half] + 0.5 * xs[i + half];
            for x in &xs[i - half + 1..i + half] {
                acc += x;
            }
            trend[i] = acc / period as f64;
        }
    }
    // Edge-extend so the component covers the full series.
    let first = trend[half];
    let last = trend[n - half - 1];
    for v in trend.iter_mut().take(half) {
        *v = first;
    }
    for v in trend.iter_mut().skip(n - half) {
        *v = last;
    }

    // 2. Per-phase means of the detrended interior (where the MA is
    //    genuine, not edge-extended).
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for i in half..n - half {
        let phase = i % period;
        phase_sum[phase] += xs[i] - trend[i];
        phase_count[phase] += 1;
    }
    let mut seasonal_one: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Centre: seasonal sums to zero over one period.
    let season_mean = seasonal_one.iter().sum::<f64>() / period as f64;
    for v in &mut seasonal_one {
        *v -= season_mean;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| seasonal_one[i % period]).collect();
    let remainder: Vec<f64> = (0..n).map(|i| xs[i] - trend[i] - seasonal[i]).collect();

    Ok(Decomposition {
        period,
        trend,
        seasonal,
        remainder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::{Resolution, Timestamp};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// Synthetic signal: linear trend + period-24 sinusoid.
    fn synthetic(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                10.0 + 0.01 * t + 2.0 * (t * std::f64::consts::TAU / 24.0).sin()
            })
            .collect()
    }

    #[test]
    fn reconstruction_is_exact() {
        let xs = synthetic(240);
        let d = decompose_values(&xs, 24).unwrap();
        let back = d.reconstruct();
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_sums_to_zero_and_repeats() {
        let xs = synthetic(240);
        let d = decompose_values(&xs, 24).unwrap();
        let sum: f64 = d.seasonal_profile().iter().sum();
        assert!(sum.abs() < 1e-9);
        for i in 0..(240 - 24) {
            assert!((d.seasonal[i] - d.seasonal[i + 24]).abs() < 1e-12);
        }
    }

    #[test]
    fn recovers_sinusoidal_season() {
        let xs = synthetic(480);
        let d = decompose_values(&xs, 24).unwrap();
        // The seasonal estimate at each phase should be close to the
        // sinusoid (trend is linear so the MA tracks it exactly).
        for (i, &s) in d.seasonal_profile().iter().enumerate() {
            let truth = 2.0 * (i as f64 * std::f64::consts::TAU / 24.0).sin();
            assert!((s - truth).abs() < 0.05, "phase {i}: {s} vs {truth}");
        }
        // And the interior remainder is tiny (the first/last period/2
        // entries are edge-extended trend, so they are excluded).
        let interior = &d.remainder[12..480 - 12];
        let max_r = interior.iter().fold(0.0_f64, |m, &r| m.max(r.abs()));
        assert!(max_r < 1e-9, "max interior remainder {max_r}");
        // The edge remainder is bounded by the trend slope over half a
        // period: 0.01 kWh/interval × 12 intervals.
        let max_edge = d.remainder.iter().fold(0.0_f64, |m, &r| m.max(r.abs()));
        assert!(max_edge <= 0.12 + 1e-9, "max edge remainder {max_edge}");
    }

    #[test]
    fn explained_variance_near_one_for_clean_signal() {
        let xs = synthetic(480);
        let d = decompose_values(&xs, 24).unwrap();
        assert!(d.explained_variance().unwrap() > 0.999);
    }

    #[test]
    fn odd_period_works() {
        let xs: Vec<f64> = (0..105).map(|i| (i % 7) as f64 + 0.1 * i as f64).collect();
        let d = decompose_values(&xs, 7).unwrap();
        let back = d.reconstruct();
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
        // Seasonal should recover the sawtooth shape (up to centring).
        let prof = d.seasonal_profile();
        let spread = stats::max(prof).unwrap() - stats::min(prof).unwrap();
        assert!((spread - 6.0).abs() < 0.1, "spread {spread}");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let xs = vec![1.0; 30];
        assert!(matches!(
            decompose_values(&xs, 1),
            Err(SeriesError::IncompatibleResolution)
        ));
        assert_eq!(
            decompose_values(&xs, 24),
            Err(SeriesError::TooShort {
                len: 30,
                required: 48
            })
        );
    }

    #[test]
    fn series_wrapper_matches_values_path() {
        let xs = synthetic(192);
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::HOUR_1, xs.clone()).unwrap();
        let d1 = decompose(&s, 24).unwrap();
        let d2 = decompose_values(&xs, 24).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn flat_series_decomposes_to_flat_trend() {
        let xs = vec![5.0; 96];
        let d = decompose_values(&xs, 24).unwrap();
        assert!(d.trend.iter().all(|&t| (t - 5.0).abs() < 1e-12));
        assert!(d.seasonal.iter().all(|&s| s.abs() < 1e-12));
        assert!(d.remainder.iter().all(|&r| r.abs() < 1e-12));
        assert_eq!(d.explained_variance(), None); // zero input variance
    }
}
