//! Compact binary interchange format for time series.
//!
//! MIRABEL's data-management layer streams consumption series between
//! collection nodes and the warehouse (paper refs \[3\]\[6\]); this module
//! provides the wire format: a fixed little-endian layout built on
//! [`bytes`] so encoded series can be shipped or memory-mapped without
//! a parsing step.
//!
//! Layout (all little-endian):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"FXT1"` |
//! | 4      | 8    | start (i64 minutes since flextract epoch) |
//! | 12     | 4    | resolution (u32 minutes) |
//! | 16     | 8    | length (u64 interval count) |
//! | 24     | 8·n  | values (f64) |

use crate::{SeriesError, TimeSeries};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use flextract_time::{Resolution, Timestamp};

/// Format magic: "FXT" + version 1.
pub const MAGIC: [u8; 4] = *b"FXT1";

/// Size in bytes of the fixed header.
pub const HEADER_LEN: usize = 24;

/// Encode a series into a freshly allocated buffer.
pub fn encode(series: &TimeSeries) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 8 * series.len());
    buf.put_slice(&MAGIC);
    buf.put_i64_le(series.start().as_minutes());
    buf.put_u32_le(series.resolution().minutes() as u32);
    buf.put_u64_le(series.len() as u64);
    for &v in series.values() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Decode a series from a buffer produced by [`encode`].
pub fn decode(mut buf: impl Buf) -> Result<TimeSeries, SeriesError> {
    if buf.remaining() < HEADER_LEN {
        return Err(SeriesError::Codec {
            what: "buffer shorter than header",
        });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(SeriesError::Codec { what: "bad magic" });
    }
    let start = Timestamp::from_minutes(buf.get_i64_le());
    let res_minutes = buf.get_u32_le();
    let resolution =
        Resolution::from_minutes(res_minutes as i64).map_err(|_| SeriesError::Codec {
            what: "invalid resolution",
        })?;
    let len = buf.get_u64_le();
    if len > (usize::MAX / 8) as u64 || buf.remaining() < (len as usize) * 8 {
        return Err(SeriesError::Codec {
            what: "truncated value block",
        });
    }
    let mut values = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let v = buf.get_f64_le();
        if !v.is_finite() {
            return Err(SeriesError::Codec {
                what: "non-finite value in encoded series",
            });
        }
        values.push(v);
    }
    // Values are pre-checked finite above, so the only constructor
    // failure left is grid misalignment.
    TimeSeries::new(start, resolution, values).map_err(|_| SeriesError::Codec {
        what: "unaligned start in encoded series",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        TimeSeries::new(
            "2013-03-18".parse().unwrap(),
            Resolution::MIN_15,
            vec![0.25, 0.5, 0.75, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let bytes = encode(&s);
        assert_eq!(bytes.len(), HEADER_LEN + 4 * 8);
        let back = decode(bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_series_round_trip() {
        let s = TimeSeries::new("2013-03-18".parse().unwrap(), Resolution::MIN_1, vec![]).unwrap();
        let back = decode(encode(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&sample()).to_vec();
        raw[0] = b'X';
        assert_eq!(
            decode(Bytes::from(raw)),
            Err(SeriesError::Codec { what: "bad magic" })
        );
    }

    #[test]
    fn rejects_truncation() {
        let raw = encode(&sample());
        // Header cut short.
        assert!(matches!(
            decode(raw.slice(..10)),
            Err(SeriesError::Codec {
                what: "buffer shorter than header"
            })
        ));
        // Values cut short.
        assert!(matches!(
            decode(raw.slice(..HEADER_LEN + 8)),
            Err(SeriesError::Codec {
                what: "truncated value block"
            })
        ));
    }

    #[test]
    fn rejects_invalid_resolution() {
        let mut raw = encode(&sample()).to_vec();
        raw[12..16].copy_from_slice(&7u32.to_le_bytes()); // 7 min ∤ 1440
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(SeriesError::Codec {
                what: "invalid resolution"
            })
        ));
    }

    #[test]
    fn rejects_non_finite_payload() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut raw = encode(&sample()).to_vec();
            raw[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&bad.to_le_bytes());
            assert!(matches!(
                decode(Bytes::from(raw)),
                Err(SeriesError::Codec {
                    what: "non-finite value in encoded series"
                })
            ));
        }
    }

    #[test]
    fn rejects_unaligned_start() {
        let mut raw = encode(&sample()).to_vec();
        raw[4..12].copy_from_slice(&7i64.to_le_bytes()); // 00:07 not on 15-min grid
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(SeriesError::Codec {
                what: "unaligned start in encoded series"
            })
        ));
    }

    #[test]
    fn length_overflow_is_rejected() {
        let mut raw = encode(&sample()).to_vec();
        raw[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(SeriesError::Codec { .. })
        ));
    }
}
