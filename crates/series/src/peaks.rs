//! Consumption-peak detection — the engine of the paper's peak-based
//! extraction approach (§3.2, Figure 5).
//!
//! A *peak* is a maximal contiguous run of intervals whose energy is
//! strictly above a threshold. The paper draws the threshold as "the
//! average daily consumption … shown as a thick horizontal line"; the
//! [`PeakThreshold`] enum generalises this for the ablation study
//! (mean / median / quantile / absolute), defaulting to the paper's
//! choice.

use crate::{stats, SeriesError, TimeSeries};
use flextract_time::TimeRange;
use serde::{Deserialize, Serialize};

/// How the peak-detection threshold is derived from the analysed window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PeakThreshold {
    /// The mean interval energy of the window — the paper's definition
    /// ("calculates the average daily consumption and considers only
    /// those peaks which have energy amount greater than average").
    #[default]
    Mean,
    /// The median interval energy; more robust to a single huge spike.
    Median,
    /// An arbitrary quantile of the interval energies (0 < q < 1).
    Quantile(f64),
    /// A fixed threshold in kWh per interval.
    Absolute(f64),
}

impl PeakThreshold {
    /// Resolve the threshold value for a window of interval energies.
    pub fn resolve(self, values: &[f64]) -> Result<f64, SeriesError> {
        match self {
            PeakThreshold::Mean => stats::mean(values).ok_or(SeriesError::Empty),
            PeakThreshold::Median => stats::median(values).ok_or(SeriesError::Empty),
            PeakThreshold::Quantile(q) => stats::quantile(values, q).ok_or(SeriesError::Empty),
            PeakThreshold::Absolute(v) => Ok(v),
        }
    }
}

/// A maximal run of intervals strictly above the detection threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Index of the first interval of the run (into the analysed window).
    pub start_index: usize,
    /// Number of intervals in the run.
    pub len: usize,
    /// Total energy of the run in kWh — the paper's "peak size".
    ///
    /// This is the sum of the full interval energies inside the run
    /// (matching Figure 5, where e.g. a single 0.47 kWh interval above
    /// the ~0.41 kWh average line is reported as "size = 0.47").
    pub energy_kwh: f64,
    /// The largest single interval energy inside the run.
    pub max_interval_kwh: f64,
    /// Time span of the run.
    pub range: TimeRange,
}

impl Peak {
    /// Index one past the last interval of the run.
    pub fn end_index(&self) -> usize {
        self.start_index + self.len
    }
}

/// Detect all peaks of `series` above `threshold`.
///
/// Returns the resolved threshold value alongside the peaks so callers
/// can report it (Figure 5 prints the average line).
pub fn detect_peaks(
    series: &TimeSeries,
    threshold: PeakThreshold,
) -> Result<(f64, Vec<Peak>), SeriesError> {
    if series.is_empty() {
        return Err(SeriesError::Empty);
    }
    let thr = threshold.resolve(series.values())?;
    let mut peaks = Vec::new();
    let mut run_start: Option<usize> = None;
    let values = series.values();
    for i in 0..=values.len() {
        let above = i < values.len() && values[i] > thr;
        match (run_start, above) {
            (None, true) => run_start = Some(i),
            (Some(s), false) => {
                let window = &values[s..i];
                peaks.push(Peak {
                    start_index: s,
                    len: i - s,
                    energy_kwh: window.iter().sum(),
                    max_interval_kwh: stats::max(window).expect("run is non-empty"),
                    range: TimeRange::new(series.timestamp_of(s), series.timestamp_of(i))
                        .expect("indices are ordered"),
                });
                run_start = None;
            }
            _ => {}
        }
    }
    Ok((thr, peaks))
}

/// Retain only peaks with `energy_kwh >= min_energy` — the paper's
/// *peak filtering* phase ("discards some peaks, which have the total
/// energy amount smaller than the flexible part of the day").
pub fn filter_peaks(peaks: Vec<Peak>, min_energy: f64) -> Vec<Peak> {
    peaks
        .into_iter()
        .filter(|p| p.energy_kwh >= min_energy)
        .collect()
}

/// Selection probabilities proportional to peak size — the paper's
/// final phase ("remaining candidate peaks … are given probabilities of
/// being selected depending on their size").
///
/// Returns an empty vector when `peaks` is empty or total energy is not
/// positive.
pub fn selection_probabilities(peaks: &[Peak]) -> Vec<f64> {
    let total: f64 = peaks.iter().map(|p| p.energy_kwh).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    peaks.iter().map(|p| p.energy_kwh / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::{Resolution, Timestamp};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn series(vals: Vec<f64>) -> TimeSeries {
        TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vals).unwrap()
    }

    #[test]
    fn detects_runs_above_mean() {
        // Mean is 1.0; two runs above: [2.0] and [1.5, 3.0].
        let s = series(vec![0.0, 2.0, 0.0, 1.5, 3.0, 0.0, 0.5, 1.0]);
        let (thr, peaks) = detect_peaks(&s, PeakThreshold::Mean).unwrap();
        assert!((thr - 1.0).abs() < 1e-9);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].start_index, 1);
        assert_eq!(peaks[0].len, 1);
        assert!((peaks[0].energy_kwh - 2.0).abs() < 1e-9);
        assert_eq!(peaks[1].start_index, 3);
        assert_eq!(peaks[1].len, 2);
        assert!((peaks[1].energy_kwh - 4.5).abs() < 1e-9);
        assert!((peaks[1].max_interval_kwh - 3.0).abs() < 1e-9);
        assert_eq!(peaks[1].end_index(), 5);
    }

    #[test]
    fn threshold_is_strict() {
        // Values exactly at the threshold are NOT peaks.
        let s = series(vec![1.0, 1.0, 1.0, 1.0]);
        let (_, peaks) = detect_peaks(&s, PeakThreshold::Mean).unwrap();
        assert!(peaks.is_empty());
    }

    #[test]
    fn trailing_run_is_closed() {
        let s = series(vec![0.0, 0.0, 5.0, 6.0]);
        let (_, peaks) = detect_peaks(&s, PeakThreshold::Mean).unwrap();
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].start_index, 2);
        assert_eq!(peaks[0].len, 2);
    }

    #[test]
    fn peak_ranges_are_in_time() {
        let s = series(vec![0.0, 0.0, 0.0, 0.0, 9.0, 9.0, 0.0, 0.0]);
        let (_, peaks) = detect_peaks(&s, PeakThreshold::Mean).unwrap();
        assert_eq!(peaks[0].range.start(), ts("2013-03-18 01:00"));
        assert_eq!(peaks[0].range.end(), ts("2013-03-18 01:30"));
    }

    #[test]
    fn threshold_variants() {
        let vals = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 100.0];
        let s = series(vals.clone());
        // Mean is dragged to 12.5 by the outlier; median stays 0.
        let (thr_mean, _) = detect_peaks(&s, PeakThreshold::Mean).unwrap();
        assert!((thr_mean - 12.5).abs() < 1e-9);
        let (thr_med, peaks_med) = detect_peaks(&s, PeakThreshold::Median).unwrap();
        assert_eq!(thr_med, 0.0);
        assert_eq!(peaks_med.len(), 1); // only the outlier is above 0
        let (thr_q, _) = detect_peaks(&s, PeakThreshold::Quantile(1.0)).unwrap();
        assert!((thr_q - 100.0).abs() < 1e-9);
        let (thr_abs, peaks_abs) = detect_peaks(&s, PeakThreshold::Absolute(50.0)).unwrap();
        assert_eq!(thr_abs, 50.0);
        assert_eq!(peaks_abs.len(), 1);
        assert!(detect_peaks(&s, PeakThreshold::Quantile(2.0)).is_err());
    }

    #[test]
    fn empty_series_is_an_error() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![]).unwrap();
        assert_eq!(
            detect_peaks(&s, PeakThreshold::Mean),
            Err(SeriesError::Empty)
        );
    }

    #[test]
    fn filtering_drops_small_peaks() {
        let s = series(vec![0.0, 2.0, 0.0, 1.5, 3.0, 0.0, 0.0, 0.0]);
        let (_, peaks) = detect_peaks(&s, PeakThreshold::Mean).unwrap();
        let kept = filter_peaks(peaks, 3.0);
        assert_eq!(kept.len(), 1);
        assert!((kept[0].energy_kwh - 4.5).abs() < 1e-9);
        // Threshold equal to size keeps the peak (>=).
        let s2 = series(vec![0.0, 2.0, 0.0, 0.0]);
        let (_, p2) = detect_peaks(&s2, PeakThreshold::Mean).unwrap();
        assert_eq!(filter_peaks(p2, 2.0).len(), 1);
    }

    #[test]
    fn probabilities_are_proportional() {
        let s = series(vec![0.0, 2.22, 0.0, 0.0, 5.47, 0.0, 0.0, 0.0]);
        let (_, peaks) = detect_peaks(&s, PeakThreshold::Mean).unwrap();
        let probs = selection_probabilities(&peaks);
        assert_eq!(probs.len(), 2);
        // The Figure-5 numbers: 29 % and 71 % after rounding.
        assert_eq!((probs[0] * 100.0).round() as i32, 29);
        assert_eq!((probs[1] * 100.0).round() as i32, 71);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(selection_probabilities(&[]).is_empty());
    }
}
