//! Gap handling for measured series.
//!
//! Real metering data has holes (meter outages, transmission loss).
//! Gaps are represented as `NaN` inside a raw value vector and must be
//! filled before the vector becomes a [`TimeSeries`], whose invariant is
//! all-finite values. The fill strategies mirror the disaggregation
//! literature the paper cites for "filling the missing values"
//! (§5 ref \[14\]).

use crate::{SeriesError, TimeSeries};
use flextract_time::{Resolution, Timestamp};
use serde::{Deserialize, Serialize};

/// Strategy for replacing `NaN` gaps in a raw value vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FillStrategy {
    /// Linear interpolation between the nearest finite neighbours;
    /// leading/trailing gaps take the nearest finite value.
    Linear,
    /// Repeat the previous finite value; a leading gap takes the first
    /// finite value.
    Previous,
    /// Replace each gap with the mean of the same interval-of-period
    /// across all days (periodic seasonal fill). Falls back to
    /// [`FillStrategy::Linear`] for phases that are missing everywhere.
    SeasonalDaily,
    /// Replace gaps with zero (appropriate for *extracted-flexibility*
    /// series where absence means "no flexible energy").
    Zero,
}

/// Number of `NaN` gaps in the vector.
pub fn gap_count(values: &[f64]) -> usize {
    values.iter().filter(|v| v.is_nan()).count()
}

/// `true` if the vector contains at least one gap.
pub fn has_gaps(values: &[f64]) -> bool {
    values.iter().any(|v| v.is_nan())
}

/// Fill gaps in `values` according to `strategy`.
///
/// `intervals_per_day` is only used by [`FillStrategy::SeasonalDaily`].
/// Returns the number of gaps filled. Errors with
/// [`SeriesError::Empty`] when *all* values are gaps (nothing to anchor
/// any strategy except [`FillStrategy::Zero`], which always succeeds).
///
/// # Edge (leading/trailing) gap behavior, per strategy
///
/// A gap run touching the start or end of the vector has only one
/// finite neighbour, so every strategy defines its edge behavior
/// explicitly:
///
/// * [`FillStrategy::Linear`] — an interior run interpolates between
///   its two finite neighbours; a **leading** run takes the first
///   finite value and a **trailing** run takes the last finite value
///   (nearest-neighbour extension, no extrapolated slope).
/// * [`FillStrategy::Previous`] — every gap repeats the previous
///   finite value; a **leading** run, which has no previous value,
///   takes the *first finite* value (backward fill at the edge only).
///   Trailing runs are ordinary carry-forward.
/// * [`FillStrategy::SeasonalDaily`] — edges behave like interior
///   gaps (the phase mean does not care about position); only a phase
///   missing on *every* day falls back to [`FillStrategy::Linear`],
///   inheriting its edge rules.
/// * [`FillStrategy::Zero`] — position never matters; every gap
///   becomes `0.0`.
///
/// # Energy bound
///
/// For every strategy except [`FillStrategy::Zero`], each filled value
/// is a convex combination of finite values already present in the
/// vector, so it lies within `[min, max]` of the finite values. The
/// total energy after filling is therefore bounded by
/// `observed + gaps·min ≤ total ≤ observed + gaps·max`, where
/// `observed` is the sum of the finite values. [`FillStrategy::Zero`]
/// adds exactly zero energy: `total == observed`. The dataset-layer
/// property tests pin this bound.
pub fn fill_gaps(
    values: &mut [f64],
    strategy: FillStrategy,
    intervals_per_day: usize,
) -> Result<usize, SeriesError> {
    let gaps = gap_count(values);
    if gaps == 0 {
        return Ok(0);
    }
    if gaps == values.len() && strategy != FillStrategy::Zero {
        return Err(SeriesError::Empty);
    }
    match strategy {
        FillStrategy::Zero => {
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = 0.0;
                }
            }
        }
        FillStrategy::Previous => {
            let Some(first_finite) = values.iter().copied().find(|v| !v.is_nan()) else {
                return Err(SeriesError::Empty);
            };
            let mut prev = first_finite;
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = prev;
                } else {
                    prev = *v;
                }
            }
        }
        FillStrategy::Linear => fill_linear(values)?,
        FillStrategy::SeasonalDaily => {
            let period = intervals_per_day.max(1);
            // Per-phase means over finite values.
            let mut sums = vec![0.0; period];
            let mut counts = vec![0usize; period];
            for (i, v) in values.iter().enumerate() {
                if !v.is_nan() {
                    sums[i % period] += v;
                    counts[i % period] += 1;
                }
            }
            for (i, v) in values.iter_mut().enumerate() {
                if v.is_nan() && counts[i % period] > 0 {
                    *v = sums[i % period] / counts[i % period] as f64;
                }
            }
            // Phases missing everywhere: fall back to linear.
            if has_gaps(values) {
                fill_linear(values)?;
            }
        }
    }
    Ok(gaps)
}

/// Errors with [`SeriesError::Empty`] when the slice holds no finite
/// value at all (nothing to interpolate from).
fn fill_linear(values: &mut [f64]) -> Result<(), SeriesError> {
    let n = values.len();
    let mut i = 0;
    while i < n {
        if !values[i].is_nan() {
            i += 1;
            continue;
        }
        // Find the gap run [i, j).
        let mut j = i;
        while j < n && values[j].is_nan() {
            j += 1;
        }
        let left = if i > 0 { Some(values[i - 1]) } else { None };
        let right = if j < n { Some(values[j]) } else { None };
        match (left, right) {
            (Some(l), Some(r)) => {
                let run = (j - i) as f64 + 1.0;
                for (k, idx) in (i..j).enumerate() {
                    let frac = (k + 1) as f64 / run;
                    values[idx] = l + (r - l) * frac;
                }
            }
            (Some(l), None) => values[i..j].iter_mut().for_each(|v| *v = l),
            (None, Some(r)) => values[i..j].iter_mut().for_each(|v| *v = r),
            (None, None) => return Err(SeriesError::Empty),
        }
        i = j;
    }
    Ok(())
}

/// Build a gap-free [`TimeSeries`] from raw metered values, filling with
/// `strategy`. Convenience wrapper combining [`fill_gaps`] and
/// [`TimeSeries::new`].
pub fn series_from_metered(
    start: Timestamp,
    resolution: Resolution,
    mut values: Vec<f64>,
    strategy: FillStrategy,
) -> Result<(TimeSeries, usize), SeriesError> {
    let filled = fill_gaps(&mut values, strategy, resolution.intervals_per_day())?;
    Ok((TimeSeries::new(start, resolution, values)?, filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAN: f64 = f64::NAN;

    #[test]
    fn gap_detection() {
        assert_eq!(gap_count(&[1.0, NAN, 2.0, NAN]), 2);
        assert!(has_gaps(&[1.0, NAN]));
        assert!(!has_gaps(&[1.0, 2.0]));
    }

    #[test]
    fn linear_interpolates_interior_runs() {
        let mut v = vec![1.0, NAN, NAN, 4.0];
        assert_eq!(fill_gaps(&mut v, FillStrategy::Linear, 96).unwrap(), 2);
        assert!((v[1] - 2.0).abs() < 1e-12);
        assert!((v[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_extends_edges() {
        let mut v = vec![NAN, NAN, 3.0, NAN];
        fill_gaps(&mut v, FillStrategy::Linear, 96).unwrap();
        assert_eq!(v, vec![3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn previous_carries_forward() {
        let mut v = vec![NAN, 2.0, NAN, NAN, 5.0, NAN];
        fill_gaps(&mut v, FillStrategy::Previous, 96).unwrap();
        assert_eq!(v, vec![2.0, 2.0, 2.0, 2.0, 5.0, 5.0]);
    }

    #[test]
    fn zero_fill_always_succeeds() {
        let mut v = vec![NAN, NAN];
        assert_eq!(fill_gaps(&mut v, FillStrategy::Zero, 96).unwrap(), 2);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn all_nan_errors_for_anchored_strategies() {
        for s in [
            FillStrategy::Linear,
            FillStrategy::Previous,
            FillStrategy::SeasonalDaily,
        ] {
            let mut v = vec![NAN, NAN, NAN];
            assert_eq!(fill_gaps(&mut v, s, 96), Err(SeriesError::Empty));
        }
    }

    #[test]
    fn no_gaps_is_a_noop() {
        let mut v = vec![1.0, 2.0];
        assert_eq!(fill_gaps(&mut v, FillStrategy::Linear, 96).unwrap(), 0);
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn seasonal_fill_uses_same_phase_mean() {
        // Two "days" of period 4; phase 1 of day 2 is missing and should
        // take the phase-1 value from day 1 (the only finite sample).
        let mut v = vec![1.0, 10.0, 1.0, 1.0, 1.0, NAN, 1.0, 1.0];
        fill_gaps(&mut v, FillStrategy::SeasonalDaily, 4).unwrap();
        assert!((v[5] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn seasonal_fill_averages_multiple_days() {
        // Phase 0 samples: 2.0 and 4.0 → gap takes 3.0.
        let mut v = vec![2.0, 1.0, 4.0, 1.0, NAN, 1.0];
        fill_gaps(&mut v, FillStrategy::SeasonalDaily, 2).unwrap();
        assert!((v[4] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn seasonal_fill_falls_back_to_linear() {
        // Phase 1 is missing in every period → linear fallback kicks in.
        let mut v = vec![1.0, NAN, 3.0, NAN];
        fill_gaps(&mut v, FillStrategy::SeasonalDaily, 2).unwrap();
        assert!((v[1] - 2.0).abs() < 1e-12);
        assert!((v[3] - 3.0).abs() < 1e-12); // trailing edge-extend
    }

    #[test]
    fn previous_edge_behavior_is_backward_fill_at_the_leading_edge_only() {
        // Leading run: no previous value exists, so the *first finite*
        // value is used (documented backward fill at the edge).
        let mut v = vec![NAN, NAN, 7.0, 1.0];
        fill_gaps(&mut v, FillStrategy::Previous, 96).unwrap();
        assert_eq!(v, vec![7.0, 7.0, 7.0, 1.0]);
        // Trailing run: ordinary carry-forward of the last finite value.
        let mut v = vec![3.0, 9.0, NAN, NAN];
        fill_gaps(&mut v, FillStrategy::Previous, 96).unwrap();
        assert_eq!(v, vec![3.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn linear_edge_behavior_is_nearest_finite_no_extrapolation() {
        // Leading run extends the first finite value backwards (no
        // slope extrapolation from the 4.0→8.0 ramp).
        let mut v = vec![NAN, NAN, 4.0, 8.0];
        fill_gaps(&mut v, FillStrategy::Linear, 96).unwrap();
        assert_eq!(v, vec![4.0, 4.0, 4.0, 8.0]);
        // Trailing run extends the last finite value forwards.
        let mut v = vec![4.0, 8.0, NAN, NAN];
        fill_gaps(&mut v, FillStrategy::Linear, 96).unwrap();
        assert_eq!(v, vec![4.0, 8.0, 8.0, 8.0]);
    }

    #[test]
    fn seasonal_edge_gaps_use_the_phase_mean_like_interior_ones() {
        // Phase 0 of the first period is missing, but phase 0 has a
        // finite sample in the second period — the edge gap takes the
        // phase mean, not a linear extension.
        let mut v = vec![NAN, 1.0, 6.0, 1.0];
        fill_gaps(&mut v, FillStrategy::SeasonalDaily, 2).unwrap();
        assert_eq!(v, vec![6.0, 1.0, 6.0, 1.0]);
    }

    #[test]
    fn fill_stays_within_the_documented_energy_bound() {
        for strategy in [
            FillStrategy::Linear,
            FillStrategy::Previous,
            FillStrategy::SeasonalDaily,
        ] {
            let mut v = vec![NAN, 2.0, NAN, NAN, 8.0, NAN, 5.0, NAN];
            let finite: Vec<f64> = v.iter().copied().filter(|x| !x.is_nan()).collect();
            let observed: f64 = finite.iter().sum();
            let (lo, hi) = (2.0, 8.0);
            let gaps = fill_gaps(&mut v, strategy, 4).unwrap();
            assert_eq!(gaps, 5);
            let total: f64 = v.iter().sum();
            assert!(
                total >= observed + gaps as f64 * lo - 1e-9
                    && total <= observed + gaps as f64 * hi + 1e-9,
                "{strategy:?}: total {total} outside bound"
            );
            // And every filled value individually sits in [min, max].
            assert!(
                v.iter().all(|&x| (lo..=hi).contains(&x)),
                "{strategy:?}: {v:?}"
            );
        }
        // Zero adds exactly nothing.
        let mut v = vec![NAN, 2.0, NAN, 8.0];
        fill_gaps(&mut v, FillStrategy::Zero, 4).unwrap();
        assert_eq!(v.iter().sum::<f64>(), 10.0);
    }

    #[test]
    fn metered_constructor_round_trip() {
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let (s, filled) = series_from_metered(
            start,
            Resolution::MIN_15,
            vec![1.0, NAN, 3.0, 4.0],
            FillStrategy::Linear,
        )
        .unwrap();
        assert_eq!(filled, 1);
        assert!((s.values()[1] - 2.0).abs() < 1e-12);
        assert_eq!(s.len(), 4);
    }
}
