//! Resolution conversion for energy series.
//!
//! Energy is additive, so *down-sampling* (finer → coarser) sums the
//! constituent intervals exactly, and *up-sampling* (coarser → finer)
//! distributes each interval's energy uniformly across its children —
//! the standard disaggregation baseline discussed in the paper's related
//! work ("time series disaggregation algorithms are applied for
//! reasoning about the finer granularity", §5 ref \[14\]).

use crate::{SeriesError, TimeSeries};
use flextract_time::Resolution;

/// Sum fine intervals into a coarser resolution. Energy is conserved
/// exactly.
///
/// The series start must be aligned to the coarse grid, the coarse
/// resolution must be an integer multiple of the fine one, and the
/// length must be a whole number of coarse intervals.
pub fn downsample(series: &TimeSeries, coarse: Resolution) -> Result<TimeSeries, SeriesError> {
    let fine = series.resolution();
    let k = coarse
        .ratio_to(fine)
        .ok_or(SeriesError::IncompatibleResolution)?;
    if k == 1 {
        return Ok(series.clone());
    }
    if !series.start().is_aligned(coarse) {
        return Err(SeriesError::UnalignedStart);
    }
    if !series.len().is_multiple_of(k) {
        return Err(SeriesError::RaggedLength {
            len: series.len(),
            chunk: k,
        });
    }
    let values: Vec<f64> = series
        .values()
        .chunks_exact(k)
        .map(|chunk| chunk.iter().sum())
        .collect();
    TimeSeries::new(series.start(), coarse, values)
}

/// Split coarse intervals uniformly into a finer resolution. Energy is
/// conserved exactly (up to float rounding).
pub fn upsample(series: &TimeSeries, fine: Resolution) -> Result<TimeSeries, SeriesError> {
    let coarse = series.resolution();
    let k = coarse
        .ratio_to(fine)
        .ok_or(SeriesError::IncompatibleResolution)?;
    if k == 1 {
        return Ok(series.clone());
    }
    let mut values = Vec::with_capacity(series.len() * k);
    for &v in series.values() {
        let share = v / k as f64;
        values.extend(std::iter::repeat_n(share, k));
    }
    TimeSeries::new(series.start(), fine, values)
}

/// Convert to an arbitrary resolution on the same grid family, down- or
/// up-sampling as needed. Identity when resolutions match.
pub fn to_resolution(series: &TimeSeries, target: Resolution) -> Result<TimeSeries, SeriesError> {
    use std::cmp::Ordering;
    match target.minutes().cmp(&series.resolution().minutes()) {
        Ordering::Equal => Ok(series.clone()),
        Ordering::Greater => downsample(series, target),
        Ordering::Less => upsample(series, target),
    }
}

/// [`to_resolution`] taking the series by value: when the target equals
/// the source resolution the series is returned as-is, so the identity
/// path costs nothing instead of cloning the whole value vector (the
/// dominant per-consumer allocation of 1-minute-resolution scenarios).
pub fn to_resolution_owned(
    series: TimeSeries,
    target: Resolution,
) -> Result<TimeSeries, SeriesError> {
    if target == series.resolution() {
        return Ok(series);
    }
    to_resolution(&series, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Timestamp;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn downsample_sums_energy() {
        let fine = TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.1, 0.2, 0.3, 0.4, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let hourly = downsample(&fine, Resolution::HOUR_1).unwrap();
        assert_eq!(hourly.len(), 2);
        assert!((hourly.values()[0] - 1.0).abs() < 1e-12);
        assert!((hourly.values()[1] - 4.0).abs() < 1e-12);
        assert!((hourly.total_energy() - fine.total_energy()).abs() < 1e-12);
    }

    #[test]
    fn upsample_distributes_uniformly() {
        let hourly = TimeSeries::new(ts("2013-03-18"), Resolution::HOUR_1, vec![4.0, 2.0]).unwrap();
        let fine = upsample(&hourly, Resolution::MIN_15).unwrap();
        assert_eq!(fine.len(), 8);
        assert!((fine.values()[0] - 1.0).abs() < 1e-12);
        assert!((fine.values()[4] - 0.5).abs() < 1e-12);
        assert!((fine.total_energy() - hourly.total_energy()).abs() < 1e-12);
    }

    #[test]
    fn round_trip_down_then_up_preserves_total() {
        let fine = TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_1,
            (0..120).map(|i| (i % 7) as f64 * 0.01).collect(),
        )
        .unwrap();
        let coarse = downsample(&fine, Resolution::MIN_15).unwrap();
        let back = upsample(&coarse, Resolution::MIN_1).unwrap();
        assert_eq!(back.len(), fine.len());
        assert!((back.total_energy() - fine.total_energy()).abs() < 1e-9);
    }

    #[test]
    fn incompatible_resolutions_are_rejected() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0; 4]).unwrap();
        assert_eq!(
            downsample(&s, Resolution::MIN_5),
            Err(SeriesError::IncompatibleResolution)
        );
        // 30 min is not a multiple of... wait, it is. Use a truly odd pair:
        let odd = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_30, vec![1.0; 4]).unwrap();
        assert_eq!(upsample(&odd, Resolution::MIN_15).unwrap().len(), 8);
    }

    #[test]
    fn downsample_requires_whole_chunks_and_alignment() {
        // 5 intervals of 15 min do not fill 2 hours; the error names the
        // fine length and the required multiple rather than posing as a
        // two-series length comparison.
        let ragged = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0; 5]).unwrap();
        assert_eq!(
            downsample(&ragged, Resolution::HOUR_1),
            Err(SeriesError::RaggedLength { len: 5, chunk: 4 })
        );
        // Start at 00:15 is not on the hourly grid.
        let offset =
            TimeSeries::new(ts("2013-03-18 00:15"), Resolution::MIN_15, vec![1.0; 8]).unwrap();
        assert_eq!(
            downsample(&offset, Resolution::HOUR_1),
            Err(SeriesError::UnalignedStart)
        );
    }

    #[test]
    fn to_resolution_dispatches() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0; 8]).unwrap();
        assert_eq!(to_resolution(&s, Resolution::MIN_15).unwrap(), s);
        assert_eq!(to_resolution(&s, Resolution::HOUR_1).unwrap().len(), 2);
        assert_eq!(to_resolution(&s, Resolution::MIN_5).unwrap().len(), 24);
    }

    #[test]
    fn identity_ratio_is_clone() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.5; 4]).unwrap();
        assert_eq!(downsample(&s, Resolution::MIN_15).unwrap(), s);
        assert_eq!(upsample(&s, Resolution::MIN_15).unwrap(), s);
    }

    #[test]
    fn owned_conversion_matches_borrowed() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0; 8]).unwrap();
        // Identity is a move, and must equal the original.
        assert_eq!(
            to_resolution_owned(s.clone(), Resolution::MIN_15).unwrap(),
            s
        );
        // Non-identity delegates to the borrowed conversion.
        assert_eq!(
            to_resolution_owned(s.clone(), Resolution::HOUR_1).unwrap(),
            to_resolution(&s, Resolution::HOUR_1).unwrap()
        );
        assert_eq!(
            to_resolution_owned(s.clone(), Resolution::MIN_5).unwrap(),
            to_resolution(&s, Resolution::MIN_5).unwrap()
        );
    }
}
