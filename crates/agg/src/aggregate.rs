//! Flex-offer aggregation and disaggregation (paper ref \[4\]).
//!
//! Offers are grouped on a similarity grid over (earliest start,
//! profile duration, time flexibility) and each group is summed into a
//! macro offer with the **start-alignment** rule:
//!
//! * the aggregate's earliest start is the group's earliest member
//!   start; each member profile is placed at its own fixed offset from
//!   it;
//! * the aggregate's time flexibility is the *minimum* member
//!   flexibility — shifting the aggregate by δ shifts every member by
//!   δ, which stays inside every member's window. The rule loses some
//!   flexibility (the price of aggregation the SSDBM paper studies)
//!   but is always sound.
//!
//! Disaggregation maps a scheduled aggregate back to per-member
//! schedules exactly: each member starts at `aggregate start + its
//! offset`, and each aggregate slice's energy is split by the members'
//! per-slice `[min, max]` bands at a common interpolation parameter, so
//! member bounds hold and the slice sum is exact.

use crate::AggError;
use flextract_flexoffer::{EnergyRange, FlexOffer, FlexOfferId, ScheduledFlexOffer};
use flextract_time::Duration;
#[cfg(test)]
use flextract_time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bucket widths of the similarity grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationConfig {
    /// Earliest-start bucket width.
    pub est_bucket: Duration,
    /// Time-flexibility bucket width.
    pub flexibility_bucket: Duration,
    /// Profile-duration bucket width.
    pub duration_bucket: Duration,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig {
            est_bucket: Duration::hours(2),
            flexibility_bucket: Duration::hours(2),
            duration_bucket: Duration::hours(1),
        }
    }
}

/// A macro flex-offer with the bookkeeping to disaggregate it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatedFlexOffer {
    /// The aggregate itself (a perfectly ordinary flex-offer, which is
    /// the point: the market layer treats micro and macro offers
    /// uniformly).
    pub offer: FlexOffer,
    /// The aggregated members: `(member, offset of its profile from
    /// the aggregate's earliest start)`.
    pub members: Vec<(FlexOffer, Duration)>,
}

impl AggregatedFlexOffer {
    /// Number of aggregated members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Time flexibility lost by aggregation, summed over members
    /// (each member gave up `member_flex − aggregate_flex`).
    pub fn flexibility_loss(&self) -> Duration {
        let agg_flex = self.offer.time_flexibility();
        self.members
            .iter()
            .map(|(m, _)| m.time_flexibility() - agg_flex)
            .sum()
    }

    /// Split a schedule of the aggregate into exact member schedules.
    pub fn disaggregate(
        &self,
        scheduled: &ScheduledFlexOffer,
    ) -> Result<Vec<ScheduledFlexOffer>, AggError> {
        let agg_start = scheduled.start();
        let res_minutes = self.offer.profile().resolution().minutes();
        let mut out = Vec::with_capacity(self.members.len());
        for (member, offset) in &self.members {
            let m_start = agg_start + *offset;
            let m_len = member.profile().len();
            let base_slice = (offset.as_minutes() / res_minutes) as usize;
            let mut energies = Vec::with_capacity(m_len);
            for k in 0..m_len {
                let agg_slice = base_slice + k;
                let agg_energy = scheduled.energies()[agg_slice];
                let agg_range = self.offer.profile().slices()[agg_slice];
                // Common interpolation parameter of this slice.
                let width = agg_range.max - agg_range.min;
                let lambda = if width > 1e-12 {
                    ((agg_energy - agg_range.min) / width).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let m_range = member.profile().slices()[k];
                energies.push(m_range.min + lambda * (m_range.max - m_range.min));
            }
            out.push(ScheduledFlexOffer::new(member.clone(), m_start, energies)?);
        }
        Ok(out)
    }
}

/// Group and sum `offers` on the similarity grid.
///
/// Offers in a group must share the slice resolution (callers in this
/// workspace always use the 15-min market resolution); offers whose
/// resolution differs from the first offer's are passed through as
/// singleton aggregates.
pub fn aggregate_offers(
    offers: &[FlexOffer],
    config: &AggregationConfig,
) -> Result<Vec<AggregatedFlexOffer>, AggError> {
    if offers.is_empty() {
        return Err(AggError::NoOffers);
    }
    let resolution = offers[0].profile().resolution();
    let mut groups: BTreeMap<(i64, i64, i64), Vec<&FlexOffer>> = BTreeMap::new();
    let mut singletons: Vec<&FlexOffer> = Vec::new();
    for offer in offers {
        if offer.profile().resolution() != resolution {
            singletons.push(offer);
            continue;
        }
        let key = (
            offer.earliest_start().as_minutes() / config.est_bucket.as_minutes().max(1),
            offer.time_flexibility().as_minutes() / config.flexibility_bucket.as_minutes().max(1),
            offer.profile().duration().as_minutes() / config.duration_bucket.as_minutes().max(1),
        );
        groups.entry(key).or_default().push(offer);
    }

    let mut aggregates = Vec::with_capacity(groups.len() + singletons.len());
    let mut next_id = 1u64;
    for (_, group) in groups {
        aggregates.push(aggregate_group(&group, resolution, FlexOfferId(next_id))?);
        next_id += 1;
    }
    for offer in singletons {
        aggregates.push(aggregate_group(
            &[offer],
            offer.profile().resolution(),
            FlexOfferId(next_id),
        )?);
        next_id += 1;
    }
    Ok(aggregates)
}

fn aggregate_group(
    group: &[&FlexOffer],
    resolution: flextract_time::Resolution,
    id: FlexOfferId,
) -> Result<AggregatedFlexOffer, AggError> {
    debug_assert!(!group.is_empty());
    let agg_est = group
        .iter()
        .map(|o| o.earliest_start())
        .min()
        .expect("group is non-empty");
    let res_minutes = resolution.minutes();
    // Aggregate profile length covers every member's span.
    let total_slices = group
        .iter()
        .map(|o| {
            let offset = (o.earliest_start() - agg_est).as_minutes() / res_minutes;
            offset as usize + o.profile().len()
        })
        .max()
        .expect("group is non-empty");
    let mut slices = vec![EnergyRange::new(0.0, 0.0).expect("zero range is valid"); total_slices];
    let mut members = Vec::with_capacity(group.len());
    for o in group {
        let offset = o.earliest_start() - agg_est;
        let base = (offset.as_minutes() / res_minutes) as usize;
        for (k, s) in o.profile().slices().iter().enumerate() {
            slices[base + k] = slices[base + k].sum(s);
        }
        members.push(((*o).clone(), offset));
    }
    // Minimum member flexibility, floored to the slice grid.
    let agg_flex = group
        .iter()
        .map(|o| o.time_flexibility())
        .min()
        .expect("group is non-empty");
    let agg_flex = Duration::minutes((agg_flex.as_minutes() / res_minutes) * res_minutes);
    // Lifecycle: conservative intersection of member deadlines.
    let creation = group
        .iter()
        .map(|o| o.creation_time())
        .min()
        .expect("group is non-empty");
    let acceptance = group
        .iter()
        .map(|o| o.acceptance_deadline())
        .min()
        .expect("group is non-empty")
        .max(creation);
    let assignment = group
        .iter()
        .map(|o| o.assignment_deadline())
        .min()
        .expect("group is non-empty")
        .max(acceptance)
        .min(agg_est);
    let offer = FlexOffer::builder(id.0)
        .start_window(agg_est, agg_est + agg_flex)
        .slices(resolution, slices)
        .created_at(creation)
        .acceptance_by(acceptance)
        .assignment_by(assignment)
        .build()?;
    Ok(AggregatedFlexOffer { offer, members })
}

/// Baseline-schedule every aggregate and return the total scheduled
/// energy series — a convenience for before/after comparisons.
pub fn baseline_total(
    aggregates: &[AggregatedFlexOffer],
) -> Result<Vec<ScheduledFlexOffer>, AggError> {
    Ok(aggregates
        .iter()
        .map(|a| ScheduledFlexOffer::baseline(a.offer.clone()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Resolution;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn offer(id: u64, est: &str, flex_h: i64, slices: usize, e: f64) -> FlexOffer {
        FlexOffer::builder(id)
            .start_window(ts(est), ts(est) + Duration::hours(flex_h))
            .slices(
                Resolution::MIN_15,
                vec![EnergyRange::new(e * 0.8, e * 1.2).unwrap(); slices],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn similar_offers_aggregate_into_one() {
        let offers = vec![
            offer(1, "2013-03-18 18:00", 4, 4, 0.5),
            offer(2, "2013-03-18 18:15", 4, 4, 0.3),
            offer(3, "2013-03-18 18:30", 4, 4, 0.4),
        ];
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        assert_eq!(aggs.len(), 1);
        let agg = &aggs[0];
        assert_eq!(agg.member_count(), 3);
        assert_eq!(agg.offer.earliest_start(), ts("2013-03-18 18:00"));
        // Profile spans 18:00 .. 19:30 (offset 2 slices + 4 slices).
        assert_eq!(agg.offer.profile().len(), 6);
        // Slice sums: energy conservation at the total level.
        let agg_total = agg.offer.total_energy();
        let member_total_min: f64 = offers.iter().map(|o| o.total_energy().min).sum();
        let member_total_max: f64 = offers.iter().map(|o| o.total_energy().max).sum();
        assert!((agg_total.min - member_total_min).abs() < 1e-9);
        assert!((agg_total.max - member_total_max).abs() < 1e-9);
    }

    #[test]
    fn aggregate_flexibility_is_the_minimum() {
        let offers = vec![
            offer(1, "2013-03-18 18:00", 6, 4, 0.5),
            offer(2, "2013-03-18 18:00", 7, 4, 0.5),
        ];
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        // 6 and 7 h land in the same 2-h flexibility bucket (both / 2h = 3).
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].offer.time_flexibility(), Duration::hours(6));
        assert_eq!(aggs[0].flexibility_loss(), Duration::hours(1));
    }

    #[test]
    fn dissimilar_offers_stay_apart() {
        let offers = vec![
            offer(1, "2013-03-18 06:00", 4, 4, 0.5),
            offer(2, "2013-03-18 20:00", 4, 4, 0.5), // far-away EST
            offer(3, "2013-03-18 06:00", 4, 40, 0.5), // much longer profile
        ];
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        assert_eq!(aggs.len(), 3);
        assert!(aggs.iter().all(|a| a.member_count() == 1));
    }

    #[test]
    fn disaggregation_is_exact_and_feasible() {
        let offers = vec![
            offer(1, "2013-03-18 18:00", 4, 4, 0.5),
            offer(2, "2013-03-18 18:30", 4, 4, 0.3),
        ];
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        let agg = &aggs[0];
        // Schedule the aggregate 1 h into its window at mid energies.
        let start = agg.offer.earliest_start() + Duration::hours(1);
        let energies: Vec<f64> = agg
            .offer
            .profile()
            .slices()
            .iter()
            .map(|s| s.midpoint())
            .collect();
        let scheduled = ScheduledFlexOffer::new(agg.offer.clone(), start, energies).unwrap();
        let members = agg.disaggregate(&scheduled).unwrap();
        assert_eq!(members.len(), 2);
        // Offsets preserved.
        assert_eq!(members[0].start(), ts("2013-03-18 19:00"));
        assert_eq!(members[1].start(), ts("2013-03-18 19:30"));
        // Slice-level conservation: member energies sum to the
        // aggregate's where members overlap; total equals total.
        let member_sum: f64 = members.iter().map(|m| m.total_energy()).sum();
        assert!((member_sum - scheduled.total_energy()).abs() < 1e-9);
    }

    #[test]
    fn disaggregation_respects_member_windows() {
        let offers = vec![
            offer(1, "2013-03-18 18:00", 4, 4, 0.5),
            offer(2, "2013-03-18 18:15", 4, 4, 0.5),
        ];
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        let agg = &aggs[0];
        // Any admissible aggregate start must disaggregate cleanly.
        for s in agg.offer.candidate_starts() {
            let energies: Vec<f64> = agg.offer.profile().slices().iter().map(|x| x.min).collect();
            let scheduled = ScheduledFlexOffer::new(agg.offer.clone(), s, energies).unwrap();
            let members = agg.disaggregate(&scheduled).unwrap();
            for m in members {
                assert!(m.start() >= m.offer().earliest_start());
                assert!(m.start() <= m.offer().latest_start());
            }
        }
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(
            aggregate_offers(&[], &AggregationConfig::default()),
            Err(AggError::NoOffers)
        );
    }

    #[test]
    fn mixed_resolutions_become_singletons() {
        let quarter = offer(1, "2013-03-18 18:00", 4, 4, 0.5);
        let hourly = FlexOffer::builder(2)
            .start_window(ts("2013-03-18 18:00"), ts("2013-03-18 22:00"))
            .slices(
                Resolution::HOUR_1,
                vec![EnergyRange::new(0.4, 0.6).unwrap(); 2],
            )
            .build()
            .unwrap();
        let aggs = aggregate_offers(&[quarter, hourly], &AggregationConfig::default()).unwrap();
        assert_eq!(aggs.len(), 2);
    }

    #[test]
    fn baseline_total_is_min_energy() {
        let offers = vec![offer(1, "2013-03-18 18:00", 4, 4, 0.5)];
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        let scheds = baseline_total(&aggs).unwrap();
        assert_eq!(scheds.len(), 1);
        assert!((scheds[0].total_energy() - 4.0 * 0.4).abs() < 1e-9);
    }

    #[test]
    fn bucket_width_sweep_changes_group_count() {
        // 8 offers spread over 8 hours of ESTs.
        let offers: Vec<FlexOffer> = (0..8)
            .map(|i| {
                let est = ts("2013-03-18 12:00") + Duration::hours(i);
                FlexOffer::builder(i as u64 + 1)
                    .start_window(est, est + Duration::hours(4))
                    .slices(
                        Resolution::MIN_15,
                        vec![EnergyRange::new(0.4, 0.6).unwrap(); 4],
                    )
                    .build()
                    .unwrap()
            })
            .collect();
        let narrow = AggregationConfig {
            est_bucket: Duration::hours(1),
            ..AggregationConfig::default()
        };
        let wide = AggregationConfig {
            est_bucket: Duration::hours(8),
            ..AggregationConfig::default()
        };
        let n_narrow = aggregate_offers(&offers, &narrow).unwrap().len();
        let n_wide = aggregate_offers(&offers, &wide).unwrap().len();
        assert!(n_wide < n_narrow, "{n_wide} vs {n_narrow}");
    }
}
