//! # flextract-agg
//!
//! The MIRABEL downstream pipeline the paper's extraction feeds:
//! "individual flex-offers have to be aggregated from thousands
//! consumers before the actual scheduling (and matching with the
//! surplus RES production)" (§6, refs \[4\]\[5\]).
//!
//! * [`aggregate`] — similarity-grid aggregation: offers with similar
//!   earliest starts, durations and time flexibilities are grouped and
//!   summed into *macro* flex-offers, using the sound start-alignment
//!   rule (aggregate flexibility = minimum member flexibility), plus
//!   exact [`AggregatedFlexOffer::disaggregate`] back to member
//!   schedules.
//! * [`schedule`] — RES-matching scheduling: a greedy placement pass
//!   followed by stochastic hill-climbing moves start times inside each
//!   offer's window to soak up wind surplus, measured by the
//!   squared-imbalance objective of [`BalanceReport`].
//!
//! Together they make the paper's §6 evaluation claim testable: even
//! though the *peak-based* extraction yields coarse per-household
//! offers, the aggregated and scheduled result behaves realistically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod schedule;

pub use aggregate::{aggregate_offers, AggregatedFlexOffer, AggregationConfig};
pub use schedule::{schedule_offers, BalanceReport, ScheduleConfig, ScheduleResult};

/// Errors surfaced by aggregation and scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum AggError {
    /// No offers were provided.
    NoOffers,
    /// The production series does not overlap the offers' windows.
    DisjointProduction,
    /// An internal flex-offer construction failed (indicates a bug;
    /// surfaced instead of panicking).
    FlexOffer(flextract_flexoffer::FlexOfferError),
    /// A series operation failed.
    Series(flextract_series::SeriesError),
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::NoOffers => write!(f, "no flex-offers to process"),
            AggError::DisjointProduction => {
                write!(
                    f,
                    "production series does not overlap the scheduling horizon"
                )
            }
            AggError::FlexOffer(e) => write!(f, "flex-offer error: {e}"),
            AggError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for AggError {}

impl From<flextract_flexoffer::FlexOfferError> for AggError {
    fn from(e: flextract_flexoffer::FlexOfferError) -> Self {
        AggError::FlexOffer(e)
    }
}

impl From<flextract_series::SeriesError> for AggError {
    fn from(e: flextract_series::SeriesError) -> Self {
        AggError::Series(e)
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(AggError::NoOffers.to_string().contains("no flex-offers"));
        assert!(AggError::DisjointProduction.to_string().contains("overlap"));
        let e: AggError = flextract_flexoffer::FlexOfferError::EmptyProfile.into();
        assert!(e.to_string().contains("flex-offer"));
        let e: AggError = flextract_series::SeriesError::Empty.into();
        assert!(e.to_string().contains("series"));
    }
}
