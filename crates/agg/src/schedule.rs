//! RES-matching flex-offer scheduling (paper refs \[2\]\[5\]).
//!
//! Given flex-offers (micro or macro), the inflexible base demand, and
//! a renewable production series, the scheduler chooses each offer's
//! start time and slice energies so flexible demand lands where surplus
//! production is:
//!
//! 1. **Greedy construction** — offers in descending energy order; for
//!    each, every candidate start is evaluated against the current net
//!    load and the best (lowest squared imbalance) wins; slice energies
//!    are water-filled toward the local surplus within their bounds.
//! 2. **Stochastic hill climbing** — random (offer, new start) moves,
//!    keeping improvements, for a configured number of iterations.
//!
//! The squared-imbalance objective is the standard balance-cost proxy:
//! `Σ_t (demand_t + flex_t − production_t)²`.

use crate::AggError;
use flextract_flexoffer::{FlexOffer, ScheduledFlexOffer};
use flextract_series::TimeSeries;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Scheduler tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Hill-climbing iterations after the greedy pass.
    pub iterations: usize,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig { iterations: 500 }
    }
}

/// Balance quality of a (partial) schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BalanceReport {
    /// `Σ (net_t)²` over the horizon (lower is better).
    pub squared_imbalance: f64,
    /// Total production consumed by demand (kWh).
    pub absorbed_production_kwh: f64,
    /// Fraction of production absorbed by demand.
    pub res_utilisation: f64,
    /// Largest net-demand interval (kWh) — the "peak" the grid must
    /// cover from conventional sources.
    pub peak_net_demand_kwh: f64,
}

/// The scheduler's output.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Every offer with its chosen start and energies.
    pub scheduled: Vec<ScheduledFlexOffer>,
    /// Balance before any flexibility was scheduled (baseline starts).
    pub before: BalanceReport,
    /// Balance after scheduling.
    pub after: BalanceReport,
}

impl ScheduleResult {
    /// Relative improvement of the squared-imbalance objective.
    pub fn improvement(&self) -> f64 {
        if self.before.squared_imbalance <= 0.0 {
            0.0
        } else {
            1.0 - self.after.squared_imbalance / self.before.squared_imbalance
        }
    }
}

/// Measure the balance of `net = demand − production + flex`.
fn balance_report(net: &TimeSeries, production: &TimeSeries) -> BalanceReport {
    let mut sq = 0.0;
    let mut peak: f64 = 0.0;
    let mut absorbed = 0.0;
    for (t, n) in net.iter() {
        sq += n * n;
        peak = peak.max(n);
        if let Some(p) = production.value_at(t) {
            // Production used = production − spilled (net < 0 means spill).
            absorbed += p - (-n).max(0.0).min(p);
        }
    }
    let total_prod = production.total_energy();
    BalanceReport {
        squared_imbalance: sq,
        absorbed_production_kwh: absorbed,
        res_utilisation: if total_prod > 0.0 {
            absorbed / total_prod
        } else {
            0.0
        },
        peak_net_demand_kwh: peak,
    }
}

/// Add a schedule's energy into `net`.
fn apply(net: &mut TimeSeries, sched: &ScheduledFlexOffer, sign: f64) {
    let series = sched.to_series().scale(sign);
    net.add_overlapping(&series)
        .expect("schedules share the market resolution grid");
}

/// Pick slice energies that chase the local deficit (−net): each slice
/// takes its maximum when production exceeds demand there, its minimum
/// otherwise, linearly in between.
fn waterfill_energies(
    offer: &FlexOffer,
    start: flextract_time::Timestamp,
    net: &TimeSeries,
) -> Vec<f64> {
    let res = offer.profile().resolution();
    offer
        .profile()
        .slices()
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let t = start + res.interval() * k as i64;
            match net.value_at(t) {
                Some(n) if n < 0.0 => {
                    // Surplus available: absorb as much as fits.
                    s.clamp(-n)
                }
                _ => s.min,
            }
        })
        .collect()
}

/// Squared-imbalance delta of placing `sched` into the current net.
fn placement_cost(net: &TimeSeries, sched: &ScheduledFlexOffer) -> f64 {
    let series = sched.to_series();
    let mut delta = 0.0;
    for (t, e) in series.iter() {
        if let Some(n) = net.value_at(t) {
            delta += (n + e) * (n + e) - n * n;
        } else {
            // Outside the horizon: count the energy as pure imbalance
            // so the scheduler prefers in-horizon placements.
            delta += e * e;
        }
    }
    delta
}

/// Schedule `offers` against `production`, with `base_demand` as the
/// inflexible background load (the extraction's *modified* series).
pub fn schedule_offers(
    offers: &[FlexOffer],
    base_demand: &TimeSeries,
    production: &TimeSeries,
    config: &ScheduleConfig,
    rng: &mut StdRng,
) -> Result<ScheduleResult, AggError> {
    if offers.is_empty() {
        return Err(AggError::NoOffers);
    }
    if production.range().intersect(base_demand.range()).is_none() {
        return Err(AggError::DisjointProduction);
    }

    // net = demand − production, extended over the full horizon.
    let mut net = base_demand.clone();
    net.sub_overlapping(production)?;

    // Baseline: every offer at its earliest start with minimum energy.
    let mut baseline_net = net.clone();
    for offer in offers {
        apply(
            &mut baseline_net,
            &ScheduledFlexOffer::baseline(offer.clone()),
            1.0,
        );
    }
    let before = balance_report(&baseline_net, production);

    // Greedy pass, big offers first.
    let mut order: Vec<usize> = (0..offers.len()).collect();
    order.sort_by(|&a, &b| {
        let ea = offers[a].total_energy().max;
        let eb = offers[b].total_energy().max;
        eb.partial_cmp(&ea).expect("energies are finite")
    });
    let mut scheduled: Vec<Option<ScheduledFlexOffer>> = vec![None; offers.len()];
    for &i in &order {
        let offer = &offers[i];
        let mut best: Option<(f64, ScheduledFlexOffer)> = None;
        for start in offer.candidate_starts() {
            let energies = waterfill_energies(offer, start, &net);
            let cand = ScheduledFlexOffer::new(offer.clone(), start, energies)?;
            let cost = placement_cost(&net, &cand);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, cand));
            }
        }
        let (_, chosen) = best.expect("candidate_starts is never empty");
        apply(&mut net, &chosen, 1.0);
        scheduled[i] = Some(chosen);
    }
    let mut scheduled: Vec<ScheduledFlexOffer> = scheduled
        .into_iter()
        .map(|s| s.expect("all offers scheduled"))
        .collect();

    // Hill climbing: move one offer to a random admissible start.
    for _ in 0..config.iterations {
        let i = rng.gen_range(0..scheduled.len());
        let starts = scheduled[i].offer().candidate_starts();
        if starts.len() <= 1 {
            continue;
        }
        let new_start = starts[rng.gen_range(0..starts.len())];
        if new_start == scheduled[i].start() {
            continue;
        }
        // Remove, re-waterfill at the new start, compare.
        apply(&mut net, &scheduled[i], -1.0);
        let old = scheduled[i].clone();
        let old_cost = placement_cost(&net, &old);
        let energies = waterfill_energies(scheduled[i].offer(), new_start, &net);
        let cand = ScheduledFlexOffer::new(scheduled[i].offer().clone(), new_start, energies)?;
        let new_cost = placement_cost(&net, &cand);
        let keep = if new_cost < old_cost { cand } else { old };
        apply(&mut net, &keep, 1.0);
        scheduled[i] = keep;
    }

    let after = balance_report(&net, production);
    Ok(ScheduleResult {
        scheduled,
        before,
        after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_flexoffer::EnergyRange;
    use flextract_time::{Resolution, Timestamp};
    use rand::SeedableRng;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// A day horizon with flat demand and a production hump 12:00-18:00.
    fn world() -> (TimeSeries, TimeSeries) {
        let demand = TimeSeries::constant(ts("2013-03-18"), Resolution::MIN_15, 0.5, 96);
        let mut prod = vec![0.0; 96];
        for v in prod.iter_mut().skip(48).take(24) {
            *v = 2.0;
        }
        let production = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, prod).unwrap();
        (demand, production)
    }

    fn movable_offer(id: u64) -> FlexOffer {
        // 1-hour offer startable anywhere 00:00-22:00.
        FlexOffer::builder(id)
            .start_window(ts("2013-03-18 00:00"), ts("2013-03-18 22:00"))
            .slices(
                Resolution::MIN_15,
                vec![EnergyRange::new(0.5, 1.5).unwrap(); 4],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn scheduler_moves_offers_into_the_surplus() {
        let (demand, production) = world();
        let offers: Vec<FlexOffer> = (1..=5).map(movable_offer).collect();
        let result = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        // Imbalance improves versus the baseline.
        assert!(
            result.after.squared_imbalance < result.before.squared_imbalance,
            "after {} vs before {}",
            result.after.squared_imbalance,
            result.before.squared_imbalance
        );
        assert!(result.improvement() > 0.2, "{}", result.improvement());
        // Every scheduled start is inside the production hump's reach.
        for s in &result.scheduled {
            let h = s.start().time().hour;
            assert!((11..=18).contains(&h), "offer parked at {h}h");
        }
        // RES utilisation went up.
        assert!(result.after.res_utilisation >= result.before.res_utilisation);
    }

    #[test]
    fn energies_waterfill_toward_surplus() {
        let (demand, production) = world();
        let offers = vec![movable_offer(1)];
        let result = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig { iterations: 0 },
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        // Inside the hump the surplus is 1.5 kWh/interval; the slice max
        // (1.5) absorbs as much as fits.
        let s = &result.scheduled[0];
        assert!(s.energies().iter().all(|&e| e > 0.5), "{:?}", s.energies());
    }

    #[test]
    fn schedules_respect_offer_validation() {
        let (demand, production) = world();
        let offers: Vec<FlexOffer> = (1..=3).map(movable_offer).collect();
        let result = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        for s in &result.scheduled {
            assert!(s.start() >= s.offer().earliest_start());
            assert!(s.start() <= s.offer().latest_start());
            for (e, b) in s.energies().iter().zip(s.offer().profile().slices()) {
                assert!(b.contains(*e));
            }
        }
    }

    #[test]
    fn hill_climbing_never_worsens() {
        let (demand, production) = world();
        let offers: Vec<FlexOffer> = (1..=4).map(movable_offer).collect();
        let greedy_only = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig { iterations: 0 },
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        let with_climb = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig { iterations: 2000 },
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        assert!(with_climb.after.squared_imbalance <= greedy_only.after.squared_imbalance + 1e-9);
    }

    #[test]
    fn empty_offers_error() {
        let (demand, production) = world();
        assert_eq!(
            schedule_offers(
                &[],
                &demand,
                &production,
                &ScheduleConfig::default(),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(AggError::NoOffers)
        );
    }

    #[test]
    fn disjoint_production_errors() {
        let (demand, _) = world();
        let far_production = TimeSeries::constant(ts("2014-01-01"), Resolution::MIN_15, 1.0, 96);
        assert_eq!(
            schedule_offers(
                &[movable_offer(1)],
                &demand,
                &far_production,
                &ScheduleConfig::default(),
                &mut StdRng::seed_from_u64(1)
            ),
            Err(AggError::DisjointProduction)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (demand, production) = world();
        let offers: Vec<FlexOffer> = (1..=3).map(movable_offer).collect();
        let a = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let b = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(a.scheduled, b.scheduled);
    }

    #[test]
    fn fixed_offers_cannot_move_but_still_schedule() {
        let (demand, production) = world();
        let fixed = FlexOffer::builder(1)
            .start_window(ts("2013-03-18 03:00"), ts("2013-03-18 03:00"))
            .slices(
                Resolution::MIN_15,
                vec![EnergyRange::new(0.5, 0.6).unwrap(); 4],
            )
            .build()
            .unwrap();
        let result = schedule_offers(
            &[fixed],
            &demand,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(8),
        )
        .unwrap();
        assert_eq!(result.scheduled[0].start(), ts("2013-03-18 03:00"));
    }
}
