//! Property tests for aggregation soundness and scheduling feasibility.

use flextract_agg::{aggregate_offers, schedule_offers, AggregationConfig, ScheduleConfig};
use flextract_flexoffer::{EnergyRange, FlexOffer, ScheduledFlexOffer};
use flextract_series::TimeSeries;
use flextract_time::{Duration, Resolution, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_offers() -> impl Strategy<Value = Vec<FlexOffer>> {
    prop::collection::vec(
        (
            0_i64..(2 * 96), // EST in 15-min steps over 2 days
            0_i64..32,       // flexibility in 15-min steps
            1_usize..8,      // slices
            0.05_f64..1.0,   // base energy
            0.0_f64..0.5,    // band width
        ),
        1..25,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (est_steps, flex_steps, slices, e, w))| {
                let est = Timestamp::from_minutes(est_steps * 15);
                FlexOffer::builder(i as u64 + 1)
                    .start_window(est, est + Duration::minutes(flex_steps * 15))
                    .slices(
                        Resolution::MIN_15,
                        vec![EnergyRange::new(e, e + w).unwrap(); slices],
                    )
                    .build()
                    .expect("generated offers are valid")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregation_conserves_membership_and_energy(offers in arb_offers()) {
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        // Every input offer lands in exactly one aggregate.
        let members: usize = aggs.iter().map(|a| a.member_count()).sum();
        prop_assert_eq!(members, offers.len());
        // Total [min, max] energy is conserved.
        let in_min: f64 = offers.iter().map(|o| o.total_energy().min).sum();
        let in_max: f64 = offers.iter().map(|o| o.total_energy().max).sum();
        let out_min: f64 = aggs.iter().map(|a| a.offer.total_energy().min).sum();
        let out_max: f64 = aggs.iter().map(|a| a.offer.total_energy().max).sum();
        prop_assert!((in_min - out_min).abs() < 1e-6);
        prop_assert!((in_max - out_max).abs() < 1e-6);
        // Aggregate flexibility never exceeds any member's.
        for a in &aggs {
            for (m, _) in &a.members {
                prop_assert!(a.offer.time_flexibility() <= m.time_flexibility());
            }
            prop_assert!(a.offer.validate().is_ok());
        }
    }

    #[test]
    fn disaggregation_is_always_feasible_and_exact(offers in arb_offers()) {
        let aggs = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        for a in &aggs {
            for start in a.offer.candidate_starts() {
                let energies: Vec<f64> = a
                    .offer
                    .profile()
                    .slices()
                    .iter()
                    .map(|s| s.midpoint())
                    .collect();
                let sched =
                    ScheduledFlexOffer::new(a.offer.clone(), start, energies).unwrap();
                let members = a.disaggregate(&sched).unwrap();
                prop_assert_eq!(members.len(), a.member_count());
                let member_sum: f64 = members.iter().map(|m| m.total_energy()).sum();
                prop_assert!(
                    (member_sum - sched.total_energy()).abs() < 1e-6,
                    "energy drift {member_sum} vs {}",
                    sched.total_energy()
                );
                for m in &members {
                    prop_assert!(m.start() >= m.offer().earliest_start());
                    prop_assert!(m.start() <= m.offer().latest_start());
                }
            }
        }
    }

    #[test]
    fn scheduling_is_feasible_and_never_worse_than_baseline(
        offers in arb_offers(),
        seed in 0_u64..100,
    ) {
        let demand = TimeSeries::constant(
            Timestamp::EPOCH,
            Resolution::MIN_15,
            2.0,
            3 * 96,
        );
        let mut prod = vec![0.0; 3 * 96];
        for (i, v) in prod.iter_mut().enumerate() {
            if i % 96 >= 40 && i % 96 < 70 {
                *v = 4.0;
            }
        }
        let production = TimeSeries::new(Timestamp::EPOCH, Resolution::MIN_15, prod).unwrap();
        let result = schedule_offers(
            &offers,
            &demand,
            &production,
            &ScheduleConfig { iterations: 50 },
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        prop_assert_eq!(result.scheduled.len(), offers.len());
        for s in &result.scheduled {
            prop_assert!(s.start() >= s.offer().earliest_start());
            prop_assert!(s.start() <= s.offer().latest_start());
            for (e, b) in s.energies().iter().zip(s.offer().profile().slices()) {
                prop_assert!(b.contains(*e), "energy {e} outside {b:?}");
            }
        }
        prop_assert!(
            result.after.squared_imbalance <= result.before.squared_imbalance + 1e-6
        );
        prop_assert!((0.0..=1.0 + 1e-9).contains(&result.after.res_utilisation));
    }
}
