//! Property tests for the chunk-stat frame engine.
//!
//! 1. **Stats fidelity** — for random series and random chunk lengths,
//!    the per-chunk statistics stored in an FXM2 buffer exactly match
//!    statistics recomputed from a full decode (bit-for-bit f64s).
//! 2. **Scan equivalence** — a `Scan` with any time slice and
//!    predicate produces exactly the brute-force filter over the
//!    materialized series, on the stat-carrying paths (FXM2 and
//!    compressed FXM3) and the degraded full-decode (FXM1) path —
//!    pushdown may only skip work, never change an answer.
//! 3. **Aggregate path equality** — the statistics-only aggregate
//!    answer is bit-identical to the full-decode answer (the chunk-
//!    ordered sum fold is shared by both paths).
//! 4. **Codec equivalence** — the FXM3 decode is bit-exact to the FXM2
//!    decode of the same series, over adversarial values (±0,
//!    subnormals, NaN-gap patterns, long constant runs).

use flextract_frame::fxm::{encode_chunked, encode_chunked_v1, encode_chunked_v3, Frame};
use flextract_frame::{ChunkStats, MeasuredSeries, Predicate, Scan};
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use proptest::prelude::*;

fn start() -> Timestamp {
    "2013-03-18".parse().unwrap()
}

/// A raw metered vector: finite non-negative values with gaps mixed
/// in, never all-gaps.
fn arb_metered(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            4 => 0.0_f64..5.0,
            1 => Just(f64::NAN),
        ],
        2..max_len,
    )
    .prop_map(|mut v| {
        if v.iter().all(|x| x.is_nan()) {
            v[0] = 1.0;
        }
        v
    })
}

/// Adversarial values for the FXM3 XOR compressor: signed zeros,
/// subnormals, huge magnitudes, NaN gaps, and long constant runs (the
/// repeat arm expands one draw into a run of identical values).
fn arb_adversarial(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    let special = prop_oneof![
        Just(0.0_f64),
        Just(-0.0_f64),
        Just(f64::MIN_POSITIVE),
        Just(f64::from_bits(1)),                     // smallest subnormal
        Just(f64::from_bits(0x000F_FFFF_FFFF_FFFF)), // largest subnormal
        // Huge but sum-safe: both frame parsers reject chunks whose
        // statistics overflow to ±inf, so the format's domain excludes
        // runs of f64::MAX.
        Just(1e300),
        Just(-1e300),
        Just(1.0 + f64::EPSILON),
        Just(f64::NAN),
        -5.0_f64..5.0,
        1e-300_f64..1e-290,
    ];
    proptest::collection::vec((special, 1_usize..24), 2..max_len / 8).prop_map(|runs| {
        let mut v: Vec<f64> = runs
            .into_iter()
            .flat_map(|(x, n)| std::iter::repeat_n(x, n))
            .collect();
        if v.iter().all(|x| x.is_nan()) {
            v[0] = 1.0;
        }
        if v.len() < 2 {
            v.push(0.25);
        }
        v
    })
}

fn arb_predicate() -> impl Strategy<Value = Option<Predicate>> {
    prop_oneof![
        Just(None),
        Just(Some(Predicate::HasGaps)),
        (0.0_f64..5.0).prop_map(|t| Some(Predicate::MaxAbove(t))),
        (0.0_f64..5.0).prop_map(|t| Some(Predicate::MinBelow(t))),
    ]
}

/// The brute-force reference: chunk the values virtually, keep the
/// sliced part of every chunk whose sliced values match the predicate.
fn brute_force(
    values: &[f64],
    chunk_len: usize,
    lo: usize,
    hi: usize,
    predicate: Option<Predicate>,
) -> Vec<(usize, u64)> {
    let matches = |sliced: &[f64]| match predicate {
        None => true,
        Some(Predicate::HasGaps) => sliced.iter().any(|v| v.is_nan()),
        Some(Predicate::MaxAbove(t)) => sliced.iter().any(|v| !v.is_nan() && *v > t),
        Some(Predicate::MinBelow(t)) => sliced.iter().any(|v| !v.is_nan() && *v < t),
    };
    let mut out = Vec::new();
    for (c, chunk) in values.chunks(chunk_len).enumerate() {
        let first = c * chunk_len;
        let a = lo.saturating_sub(first).min(chunk.len());
        let b = hi.saturating_sub(first).min(chunk.len());
        if a >= b {
            continue;
        }
        let sliced = &chunk[a..b];
        if !matches(sliced) {
            continue;
        }
        out.extend(
            sliced
                .iter()
                .enumerate()
                .map(|(j, v)| (first + a + j, v.to_bits())),
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fxm2_chunk_stats_match_a_full_decode(
        values in arb_metered(300),
        chunk_len in 1_usize..64,
    ) {
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, values).unwrap();
        let frame = Frame::from_fxm_bytes(
            encode_chunked(&m, chunk_len).unwrap(),
            "prop.fxm",
        )
        .unwrap();
        let decoded = frame.decode().unwrap();
        prop_assert_eq!(decoded.len(), m.len());
        for meta in frame.chunks() {
            let stats = meta.stats.expect("v2 chunks carry stats");
            let recomputed =
                ChunkStats::from_values(&decoded.values()[meta.first..meta.first + meta.len]);
            prop_assert_eq!(stats.gaps, recomputed.gaps);
            prop_assert_eq!(stats.min.to_bits(), recomputed.min.to_bits());
            prop_assert_eq!(stats.max.to_bits(), recomputed.max.to_bits());
            prop_assert_eq!(stats.sum.to_bits(), recomputed.sum.to_bits());
        }
    }

    #[test]
    fn scan_equals_brute_force_on_both_codecs(
        values in arb_metered(300),
        chunk_len in 1_usize..64,
        slice_lo in 0_usize..300,
        slice_len in 0_usize..300,
        predicate in arb_predicate(),
    ) {
        let n = values.len();
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, values.clone()).unwrap();
        let lo = slice_lo.min(n);
        let hi = (slice_lo + slice_len).min(n);
        let slice = TimeRange::starting_at(
            start() + Duration::minutes(lo as i64 * 15),
            Duration::minutes((hi - lo) as i64 * 15),
        )
        .unwrap();
        let mut scan = Scan::new().time_slice(slice);
        if let Some(p) = predicate {
            scan = scan.with_predicate(p);
        }
        let expected = brute_force(&values, chunk_len, lo, hi, predicate);

        let v2 = Frame::from_fxm_bytes(encode_chunked(&m, chunk_len).unwrap(), "p.fxm").unwrap();
        let v1 =
            Frame::from_fxm_bytes(encode_chunked_v1(&m, chunk_len).unwrap(), "p.fxm").unwrap();
        let v3 =
            Frame::from_fxm_bytes(encode_chunked_v3(&m, chunk_len).unwrap(), "p.fxm").unwrap();
        for frame in [&v2, &v1, &v3] {
            let (got, report) = scan.collect(frame).unwrap();
            let got: Vec<(usize, u64)> =
                got.into_iter().map(|(i, v)| (i, v.to_bits())).collect();
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(report.intervals_selected, expected.len());
        }

        // Aggregates agree bit-exactly across the codec paths, and
        // with a brute-force fold over the selected values.
        let (agg2, rep2) = scan.aggregates(&v2).unwrap();
        let (agg1, _) = scan.aggregates(&v1).unwrap();
        let (agg3, rep3) = scan.aggregates(&v3).unwrap();
        prop_assert_eq!(agg2.sum_kwh.to_bits(), agg1.sum_kwh.to_bits());
        prop_assert_eq!(agg2, agg1);
        prop_assert_eq!(agg2, agg3);
        // The compressed codec carries the same chunk statistics, so
        // its pushdown skips exactly what FXM2's does.
        prop_assert_eq!(rep2.chunks_decoded, rep3.chunks_decoded);
        prop_assert_eq!(rep2.chunks_stats_only, rep3.chunks_stats_only);
        let brute_sum: f64 = expected
            .iter()
            .map(|(_, bits)| f64::from_bits(*bits))
            .filter(|v| !v.is_nan())
            .sum();
        prop_assert!((agg2.sum_kwh - brute_sum).abs() < 1e-9);
        let brute_gaps = expected
            .iter()
            .filter(|(_, bits)| f64::from_bits(*bits).is_nan())
            .count();
        prop_assert_eq!(agg2.gaps, brute_gaps);
        // Pushdown only ever skips decodes; it never decodes more
        // than the stat-less path.
        prop_assert!(rep2.chunks_decoded <= agg_decodes_upper_bound(&v1, &scan));

        // Peak agrees across codecs (first-argmax semantics).
        let (peak2, _) = scan.peak(&v2).unwrap();
        let (peak1, _) = scan.peak(&v1).unwrap();
        let (peak3, _) = scan.peak(&v3).unwrap();
        prop_assert_eq!(peak2, peak1);
        prop_assert_eq!(peak2, peak3);
    }

    #[test]
    fn fxm3_round_trip_is_bit_exact_to_fxm2(
        pattern in arb_adversarial(260),
        chunk_len in 1_usize..64,
    ) {
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, pattern).unwrap();
        let v2 = Frame::from_fxm_bytes(encode_chunked(&m, chunk_len).unwrap(), "a.fxm")
            .unwrap()
            .decode()
            .unwrap();
        let v3 = Frame::from_fxm_bytes(encode_chunked_v3(&m, chunk_len).unwrap(), "a.fxm")
            .unwrap()
            .decode()
            .unwrap();
        prop_assert_eq!(v2.len(), v3.len());
        for (a, b) in v2.values().iter().zip(v3.values()) {
            prop_assert_eq!(a.is_nan(), b.is_nan());
            if !a.is_nan() {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn materialize_is_an_exact_ranged_read(
        values in arb_metered(300),
        chunk_len in 1_usize..64,
        slice_lo in 0_usize..300,
        slice_len in 1_usize..300,
    ) {
        let n = values.len();
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, values.clone()).unwrap();
        let lo = slice_lo.min(n);
        let hi = (slice_lo + slice_len).min(n);
        let slice = TimeRange::starting_at(
            start() + Duration::minutes(lo as i64 * 15),
            Duration::minutes((hi - lo) as i64 * 15),
        )
        .unwrap();
        let frame =
            Frame::from_fxm_bytes(encode_chunked(&m, chunk_len).unwrap(), "p.fxm").unwrap();
        let (sliced, report) = Scan::new().time_slice(slice).materialize(&frame).unwrap();
        prop_assert_eq!(sliced.len(), hi - lo);
        for (j, v) in sliced.values().iter().enumerate() {
            let orig = values[lo + j];
            prop_assert!(v.is_nan() == orig.is_nan());
            if !v.is_nan() {
                prop_assert_eq!(v.to_bits(), orig.to_bits());
            }
        }
        // Exactly the overlapping chunks decode, no more.
        let overlapping = values
            .chunks(chunk_len)
            .enumerate()
            .filter(|(c, chunk)| {
                let first = c * chunk_len;
                lo < first + chunk.len() && hi > first
            })
            .count();
        prop_assert_eq!(report.chunks_decoded, overlapping);
    }
}

/// Every chunk the stat-less path decodes for this scan — the upper
/// bound pushdown must stay under.
fn agg_decodes_upper_bound(v1: &Frame, scan: &Scan) -> usize {
    let (_, report) = scan.aggregates(v1).unwrap();
    report.chunks_decoded
}

/// The acceptance-criterion shape: one day sliced out of a 30-day
/// FXM2 series decodes only the chunks overlapping that day.
#[test]
fn one_day_of_thirty_decodes_only_overlapping_chunks() {
    // 30 days of 1-min data: 43 200 intervals, 450 chunks of 96.
    let values: Vec<f64> = (0..43_200)
        .map(|i| 0.2 + ((i * 37) % 101) as f64 * 0.01)
        .collect();
    let m = MeasuredSeries::new(start(), Resolution::MIN_1, values).unwrap();
    let frame = Frame::from_fxm_bytes(encode_chunked(&m, 96).unwrap(), "month.fxm").unwrap();
    assert_eq!(frame.chunks().len(), 450);

    let day15 = TimeRange::starting_at(start() + Duration::days(14), Duration::days(1)).unwrap();
    let scan = Scan::new().time_slice(day15);

    // One day = 1440 intervals = exactly 15 chunks (96-interval
    // chunks align with day boundaries at 1-min resolution).
    let (sliced, report) = scan.materialize(&frame).unwrap();
    assert_eq!(sliced.len(), 1440);
    assert_eq!(report.chunks_decoded, 15, "{report:?}");
    assert_eq!(report.chunks_skipped_slice, 435, "{report:?}");

    // The aggregate form of the same query touches no payload at all:
    // every selected chunk is fully covered, so stats answer it.
    let (agg, report) = scan.aggregates(&frame).unwrap();
    assert_eq!(agg.intervals, 1440);
    assert_eq!(report.chunks_decoded, 0, "{report:?}");
    assert_eq!(report.chunks_stats_only, 15, "{report:?}");
    assert!(report.skip_fraction() == 1.0);
}
