//! Per-chunk statistics: the pushdown index of the FXM2 format.

/// Statistics over one chunk of measured values.
///
/// `min`, `max` and `sum` range over the **observed** (non-gap) values
/// only; `gaps` counts the `NaN` intervals. For an all-gap chunk, `min`
/// and `max` are `NaN` and `sum` is `0.0`.
///
/// Determinism contract: `sum` is the left-to-right fold over the
/// chunk's observed values, and `min`/`max` keep the **first** value
/// attaining the extreme — so recomputing the statistics from a decoded
/// chunk reproduces the stored ones bit for bit, and a scan that
/// aggregates from statistics alone matches one that decodes every
/// chunk exactly (chunk sums are combined in the same chunk order on
/// both paths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    /// Number of `NaN` (gap) intervals in the chunk.
    pub gaps: u32,
    /// Smallest observed value (`NaN` when the chunk is all gaps).
    pub min: f64,
    /// Largest observed value (`NaN` when the chunk is all gaps).
    pub max: f64,
    /// Sum of the observed values, folded left to right.
    pub sum: f64,
}

impl ChunkStats {
    /// Compute the statistics of one chunk of values (`NaN` = gap).
    pub fn from_values(values: &[f64]) -> ChunkStats {
        let mut gaps = 0u32;
        let mut min = f64::NAN;
        let mut max = f64::NAN;
        let mut sum = 0.0;
        for &v in values {
            if v.is_nan() {
                gaps += 1;
                continue;
            }
            sum += v;
            // First-wins on ties keeps the fold deterministic across
            // bit patterns that compare equal (0.0 vs -0.0).
            if min.is_nan() || v < min {
                min = v;
            }
            if max.is_nan() || v > max {
                max = v;
            }
        }
        ChunkStats {
            gaps,
            min,
            max,
            sum,
        }
    }

    /// Number of observed (non-gap) intervals given the chunk length.
    pub fn observed(&self, chunk_len: usize) -> usize {
        chunk_len - self.gaps as usize
    }

    /// `true` if every interval in the chunk is a gap.
    pub fn all_gaps(&self, chunk_len: usize) -> bool {
        self.gaps as usize == chunk_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_cover_observed_values_only() {
        let s = ChunkStats::from_values(&[1.0, f64::NAN, 3.0, 0.5]);
        assert_eq!(s.gaps, 1);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 3.0);
        assert!((s.sum - 4.5).abs() < 1e-12);
        assert_eq!(s.observed(4), 3);
        assert!(!s.all_gaps(4));
    }

    #[test]
    fn all_gap_chunk_has_nan_extremes_and_zero_sum() {
        let s = ChunkStats::from_values(&[f64::NAN, f64::NAN]);
        assert_eq!(s.gaps, 2);
        assert!(s.min.is_nan());
        assert!(s.max.is_nan());
        assert_eq!(s.sum, 0.0);
        assert!(s.all_gaps(2));
    }

    #[test]
    fn ties_keep_the_first_bit_pattern() {
        // -0.0 and 0.0 compare equal; the first one seen wins.
        let s = ChunkStats::from_values(&[-0.0, 0.0]);
        assert_eq!(s.min.to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.max.to_bits(), (-0.0f64).to_bits());
        let s = ChunkStats::from_values(&[0.0, -0.0]);
        assert_eq!(s.min.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn empty_chunk_is_all_gaps_trivially() {
        let s = ChunkStats::from_values(&[]);
        assert_eq!(s.gaps, 0);
        assert!(s.min.is_nan());
        assert_eq!(s.sum, 0.0);
        assert!(s.all_gaps(0));
    }
}
