//! The raw metered series type: gaps are first-class.

use flextract_series::{missing, FillStrategy, SeriesError, TimeSeries};
use flextract_time::{Resolution, Timestamp};

/// A raw metered consumer series, as it comes off the wire.
///
/// Unlike [`TimeSeries`], whose invariant is all-finite values, a
/// `MeasuredSeries` represents missing intervals as `NaN` — meter
/// outages and transmission loss are part of the data, not an error.
/// The remaining invariants match `TimeSeries`: the start is aligned to
/// the resolution grid and no value is ±∞ (a meter can fail to report,
/// but it cannot report infinity).
///
/// A `MeasuredSeries` becomes extraction-ready by going through the
/// dataset cleaning stage, which fills gaps and screens anomalies,
/// yielding a strict `TimeSeries`.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredSeries {
    start: Timestamp,
    resolution: Resolution,
    values: Vec<f64>,
}

impl MeasuredSeries {
    /// Construct from raw metered values; `NaN` marks a gap.
    ///
    /// Rejects an unaligned start and ±∞ values (gap is the only
    /// non-finite state a meter feed can be in).
    pub fn new(
        start: Timestamp,
        resolution: Resolution,
        values: Vec<f64>,
    ) -> Result<Self, SeriesError> {
        if !start.is_aligned(resolution) {
            return Err(SeriesError::UnalignedStart);
        }
        if let Some(index) = values.iter().position(|v| v.is_infinite()) {
            return Err(SeriesError::NonFinite { index });
        }
        Ok(MeasuredSeries {
            start,
            resolution,
            values,
        })
    }

    /// A gap-free measured series carrying the values of `series`.
    pub fn from_series(series: &TimeSeries) -> Self {
        MeasuredSeries {
            start: series.start(),
            resolution: series.resolution(),
            values: series.values().to_vec(),
        }
    }

    /// First instant covered.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// The interval width.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Number of intervals (gaps included).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series has no intervals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values; `NaN` marks a gap.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the series, yielding its raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The start instant of interval `i`.
    pub fn timestamp_of(&self, i: usize) -> Timestamp {
        self.start + self.resolution.interval() * i as i64
    }

    /// Number of missing intervals.
    pub fn gap_count(&self) -> usize {
        missing::gap_count(&self.values)
    }

    /// Fraction of intervals that are missing (0 for an empty series).
    pub fn gap_fraction(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.gap_count() as f64 / self.values.len() as f64
        }
    }

    /// Total energy over the observed (non-gap) intervals (kWh).
    pub fn observed_energy(&self) -> f64 {
        self.values.iter().filter(|v| !v.is_nan()).sum()
    }

    /// Convert to a strict [`TimeSeries`], requiring the series to be
    /// gap-free already (use [`MeasuredSeries::fill`] otherwise).
    pub fn into_series(self) -> Result<TimeSeries, SeriesError> {
        TimeSeries::new(self.start, self.resolution, self.values)
    }

    /// Fill gaps with `strategy` and convert to a strict
    /// [`TimeSeries`]; returns the filled series and how many gaps
    /// were filled. See [`missing::fill_gaps`] for per-strategy
    /// edge behavior and the energy bound.
    pub fn fill(self, strategy: FillStrategy) -> Result<(TimeSeries, usize), SeriesError> {
        let MeasuredSeries {
            start,
            resolution,
            mut values,
        } = self;
        let filled = missing::fill_gaps(&mut values, strategy, resolution.intervals_per_day())?;
        Ok((TimeSeries::new(start, resolution, values)?, filled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn construction_allows_nan_rejects_infinity() {
        let m = MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![1.0, f64::NAN, 2.0],
        )
        .unwrap();
        assert_eq!(m.gap_count(), 1);
        assert!((m.gap_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.observed_energy() - 3.0).abs() < 1e-12);

        assert_eq!(
            MeasuredSeries::new(
                ts("2013-03-18"),
                Resolution::MIN_15,
                vec![1.0, f64::INFINITY],
            ),
            Err(SeriesError::NonFinite { index: 1 })
        );
        assert_eq!(
            MeasuredSeries::new(ts("2013-03-18 00:07"), Resolution::MIN_15, vec![1.0]),
            Err(SeriesError::UnalignedStart)
        );
    }

    #[test]
    fn round_trip_with_time_series() {
        let s = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5, 0.7]).unwrap();
        let m = MeasuredSeries::from_series(&s);
        assert_eq!(m.gap_count(), 0);
        assert_eq!(m.clone().into_series().unwrap(), s);
        // With a gap, strict conversion fails but filling succeeds.
        let gappy = MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.5, f64::NAN, 0.7],
        )
        .unwrap();
        assert!(gappy.clone().into_series().is_err());
        let (filled, n) = gappy.fill(FillStrategy::Linear).unwrap();
        assert_eq!(n, 1);
        assert!((filled.values()[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn timestamp_of_walks_the_grid() {
        let m =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![f64::NAN; 5]).unwrap();
        assert_eq!(m.timestamp_of(4), ts("2013-03-18 01:00"));
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        assert_eq!(m.observed_energy(), 0.0);
    }
}
