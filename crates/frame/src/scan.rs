//! The lazy scan pipeline: time slices, chunk predicates and
//! aggregates planned against per-chunk statistics.
//!
//! A [`Scan`] describes *what* to read; executing it against a
//! [`Frame`] decides *how little* can be read:
//!
//! * chunks entirely outside the time slice are skipped without even
//!   touching their statistics;
//! * chunks whose statistics **prove** a predicate cannot match are
//!   skipped without decoding the payload (statistics only ever
//!   exclude — a surviving chunk is decoded and the predicate is
//!   re-checked exactly on the sliced values, so pushdown never
//!   changes a result, it only avoids work);
//! * aggregate queries with no predicates answer fully-covered chunks
//!   from their statistics alone.
//!
//! Frames without statistics (`FXM1`, CSV) degrade gracefully: every
//! overlapping chunk is decoded and every result is identical — the
//! determinism contract is that a scan's output is a pure function of
//! the series and the scan, never of the backing format. Aggregate
//! sums fold **per chunk first, then across chunks in order** on every
//! path, so the statistics-only answer is bit-identical to the
//! full-decode answer.

use crate::fxm::{ChunkMeta, Frame};
use crate::stats::ChunkStats;
use crate::{FrameError, MeasuredSeries};
use flextract_time::{Resolution, TimeRange, Timestamp};
use std::sync::Arc;

/// A reusable pool of decoded chunk payloads, keyed by
/// `(file, chunk index)`.
///
/// [`Scan::aggregates_cached`] runs the **same fold** as
/// [`Scan::aggregates_with`] and consults the cache only at the
/// payload-decode step, so a cached answer is bit-identical to a fresh
/// one by construction — a cache changes how many bytes are decoded,
/// never what is computed. Implementations live at the store layer
/// (the resident store in `flextract-dataset`); the trait is defined
/// here so the scan loop can consult a pool without the frame crate
/// knowing about any store.
pub trait ChunkCache {
    /// The cached decoded payload of chunk `chunk` of `file`, if
    /// resident. An implementation must return exactly the values a
    /// fresh [`Frame::chunk_values`] decode would produce — the scan
    /// does not re-verify them.
    fn lookup(&mut self, file: &str, chunk: usize) -> Option<Arc<Vec<f64>>>;

    /// Offer a freshly decoded payload for residency. Implementations
    /// may decline (for example when the payload alone exceeds the
    /// pool's byte budget).
    fn store(&mut self, file: &str, chunk: usize, values: Arc<Vec<f64>>);
}

/// A chunk-level selection predicate.
///
/// Predicates select **chunks** (the unit of pushdown), evaluated on
/// the chunk's sliced values: a chunk matches if *any* selected
/// interval satisfies the condition. Statistics are used to skip
/// chunks that provably cannot match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// The chunk contains at least one missing interval.
    HasGaps,
    /// Some observed value exceeds the threshold (kWh per interval).
    MaxAbove(f64),
    /// Some observed value falls below the threshold (kWh per
    /// interval).
    MinBelow(f64),
}

impl Predicate {
    /// `true` when whole-chunk statistics prove the predicate cannot
    /// match anywhere in the chunk (hence in any sliced portion).
    fn excluded_by(&self, stats: &ChunkStats) -> bool {
        match self {
            Predicate::HasGaps => stats.gaps == 0,
            // NaN extremes (all-gap chunk) count as excluded: with no
            // observed values, no threshold can match.
            Predicate::MaxAbove(t) => stats.max.is_nan() || stats.max <= *t,
            Predicate::MinBelow(t) => stats.min.is_nan() || stats.min >= *t,
        }
    }

    /// Exact evaluation on a chunk's sliced values.
    fn matches(&self, values: &[f64]) -> bool {
        match self {
            Predicate::HasGaps => values.iter().any(|v| v.is_nan()),
            Predicate::MaxAbove(t) => values.iter().any(|v| !v.is_nan() && *v > *t),
            Predicate::MinBelow(t) => values.iter().any(|v| !v.is_nan() && *v < *t),
        }
    }
}

/// What a scan execution actually touched — the pushdown audit trail.
///
/// Single-frame executions fill only the `chunks_*`/`intervals_selected`
/// counters. Dataset-level scans over a sharded store add one more
/// pruning tier with the `shards_*` counters: a shard whose roll-up
/// statistics prove no consumer can match is *pruned* (its manifest and
/// files are never opened), and a shard fully answerable from its
/// roll-up alone is *stats-only* — the same stats-only-exclude contract
/// as chunk pushdown, one level up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanReport {
    /// Chunks in the frame.
    pub chunks_total: usize,
    /// Chunks skipped because they lie entirely outside the time
    /// slice (their statistics were never read).
    pub chunks_skipped_slice: usize,
    /// Chunks skipped because their statistics prove no predicate
    /// match (payload never decoded).
    pub chunks_skipped_stats: usize,
    /// Chunks answered from statistics alone (payload never decoded).
    pub chunks_stats_only: usize,
    /// Chunks whose payload was decoded.
    pub chunks_decoded: usize,
    /// Intervals that contributed to the result.
    pub intervals_selected: usize,
    /// Shards in the store (0 for single-frame scans; 1 for a legacy
    /// single-manifest dataset).
    pub shards_total: usize,
    /// Shards excluded by their roll-up statistics or time coverage —
    /// neither their manifest nor any series file was opened.
    pub shards_pruned: usize,
    /// Shards answered entirely from their roll-up summary (manifest
    /// and series files never opened).
    pub shards_stats_only: usize,
    /// On-disk bytes read to open the scanned frame(s) — the whole
    /// file for a cold open, 0 for shards answered from roll-ups and
    /// for in-memory frames.
    pub bytes_read: usize,
    /// On-disk payload bytes decoded on demand by this scan (raw
    /// IEEE-754 words for `FXM2`, gap bitmap + compressed stream for
    /// `FXM3`). Eagerly decoded formats (`FXM1`, CSV) pay their decode
    /// at open, so this stays 0 for them — `bytes_read` carries their
    /// cost. A stats-only answer leaves this at 0 on every format.
    pub bytes_decoded: usize,
    /// Index bytes consulted to route this scan: `root.json` plus the
    /// opened shard manifests for a sharded store, `manifest.json` for
    /// a legacy dataset, 0 for single-frame scans. Filled by the
    /// dataset layer — frame-level executions don't know about
    /// manifests.
    pub bytes_read_index: usize,
    /// Chunk payloads (or, at the store layer, whole frames and parsed
    /// indexes) served from a resident cache instead of disk.
    pub cache_hits: usize,
    /// Bytes a resident cache kept this scan from re-reading or
    /// re-decoding: payload bytes of cache-served chunks, plus file
    /// and index bytes when the store layer answers from residency.
    pub bytes_saved: usize,
}

impl ScanReport {
    /// Fraction of chunks whose payload was **not** decoded (1.0 =
    /// everything answered without touching a payload; 0 for an empty
    /// frame).
    pub fn skip_fraction(&self) -> f64 {
        if self.chunks_total == 0 {
            0.0
        } else {
            1.0 - self.chunks_decoded as f64 / self.chunks_total as f64
        }
    }

    /// Shards whose manifest (and therefore files) had to be opened.
    pub fn shards_opened(&self) -> usize {
        self.shards_total
            .saturating_sub(self.shards_pruned + self.shards_stats_only)
    }

    /// Fold another execution's counters into this report — the audit
    /// aggregation for multi-consumer and multi-shard scans. Plain
    /// counter addition, so folding order cannot matter.
    pub fn absorb(&mut self, other: &ScanReport) {
        self.chunks_total += other.chunks_total;
        self.chunks_skipped_slice += other.chunks_skipped_slice;
        self.chunks_skipped_stats += other.chunks_skipped_stats;
        self.chunks_stats_only += other.chunks_stats_only;
        self.chunks_decoded += other.chunks_decoded;
        self.intervals_selected += other.intervals_selected;
        self.shards_total += other.shards_total;
        self.shards_pruned += other.shards_pruned;
        self.shards_stats_only += other.shards_stats_only;
        self.bytes_read += other.bytes_read;
        self.bytes_decoded += other.bytes_decoded;
        self.bytes_read_index += other.bytes_read_index;
        self.cache_hits += other.cache_hits;
        self.bytes_saved += other.bytes_saved;
    }
}

/// Aggregates over the selected intervals.
///
/// `min`, `max` and `sum_kwh` range over observed (non-gap) values;
/// `None` extremes mean nothing was observed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregates {
    /// Selected intervals (gaps included).
    pub intervals: usize,
    /// Observed (non-gap) intervals among them.
    pub observed: usize,
    /// Missing intervals among them.
    pub gaps: usize,
    /// Sum of the observed values (kWh).
    pub sum_kwh: f64,
    /// Smallest observed value.
    pub min: Option<f64>,
    /// Largest observed value.
    pub max: Option<f64>,
}

impl Aggregates {
    /// Aggregates over one contiguous run of values (`NaN` = gap) —
    /// the exact fold a scan applies per chunk, exposed so callers
    /// summarising already-materialized series (e.g. resampled query
    /// output) share the same determinism rules.
    pub fn from_values(values: &[f64]) -> Aggregates {
        let mut agg = Aggregates::default();
        agg.absorb(&ChunkStats::from_values(values), values.len());
        agg
    }

    /// Mean observed value, if anything was observed.
    pub fn mean(&self) -> Option<f64> {
        (self.observed > 0).then(|| self.sum_kwh / self.observed as f64)
    }

    /// Fold another aggregate into this one, in caller-chosen order —
    /// the canonical multi-series fold. The hierarchy is fixed: chunk
    /// stats fold into a per-series aggregate (in chunk order) via
    /// [`Aggregates::absorb`], per-series aggregates merge into a
    /// per-shard subtotal (in consumer order), and subtotals merge into
    /// the fleet total (in shard order). Keeping every path on that one
    /// association is what makes a statistics-only answer bit-identical
    /// to a full decode.
    pub fn merge(&mut self, other: &Aggregates) {
        self.intervals += other.intervals;
        self.observed += other.observed;
        self.gaps += other.gaps;
        self.sum_kwh += other.sum_kwh;
        if let Some(m) = other.min {
            if self.min.is_none_or(|cur| m < cur) {
                self.min = Some(m);
            }
        }
        if let Some(m) = other.max {
            if self.max.is_none_or(|cur| m > cur) {
                self.max = Some(m);
            }
        }
    }

    /// Fold one chunk's statistics into the aggregate — the exact
    /// per-chunk step every scan execution uses, public so store-level
    /// roll-ups (per-shard summaries) are built with the same
    /// association as the scans that later verify them.
    pub fn absorb(&mut self, stats: &ChunkStats, len: usize) {
        self.intervals += len;
        self.gaps += stats.gaps as usize;
        self.observed += len - stats.gaps as usize;
        self.sum_kwh += stats.sum;
        if !stats.min.is_nan() && self.min.is_none_or(|m| stats.min < m) {
            self.min = Some(stats.min);
        }
        if !stats.max.is_nan() && self.max.is_none_or(|m| stats.max > m) {
            self.max = Some(stats.max);
        }
    }
}

/// A lazy query over one frame: time slice + chunk predicates.
///
/// Build with [`Scan::new`], narrow with [`Scan::time_slice`] and
/// [`Scan::with_predicate`], then execute with [`Scan::aggregates`],
/// [`Scan::peak`], [`Scan::collect`] or [`Scan::materialize`]. The
/// scan itself holds no data; executions borrow the frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scan {
    slice: Option<TimeRange>,
    predicates: Vec<Predicate>,
}

impl Scan {
    /// A scan selecting the whole frame.
    pub fn new() -> Self {
        Scan::default()
    }

    /// Restrict to intervals whose start lies inside `range`
    /// (half-open, like every [`TimeRange`]).
    pub fn time_slice(mut self, range: TimeRange) -> Self {
        self.slice = Some(match self.slice {
            None => range,
            Some(prev) => prev
                .intersect(range)
                .unwrap_or_else(|| TimeRange::empty_at(range.start())),
        });
        self
    }

    /// Add a chunk predicate (multiple predicates AND together).
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// The configured time slice, if any.
    pub fn slice(&self) -> Option<TimeRange> {
        self.slice
    }

    /// The configured predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Global interval bounds `[lo, hi)` selected by the time slice.
    fn bounds(&self, frame: &Frame) -> (usize, usize) {
        let h = frame.header();
        let Some(slice) = self.slice else {
            return (0, h.len);
        };
        let res = h.resolution.minutes();
        let rel_start = (slice.start() - h.start).as_minutes();
        let rel_end = (slice.end() - h.start).as_minutes();
        let lo = rel_start.div_euclid(res) + i64::from(rel_start.rem_euclid(res) != 0);
        let lo = lo.clamp(0, h.len as i64) as usize;
        let hi = rel_end.div_euclid(res) + i64::from(rel_end.rem_euclid(res) != 0);
        let hi = hi.clamp(lo as i64, h.len as i64) as usize;
        (lo, hi)
    }

    /// Compute all aggregates over the selected intervals in one pass.
    pub fn aggregates(&self, frame: &Frame) -> Result<(Aggregates, ScanReport), FrameError> {
        self.aggregates_with(frame, &mut Vec::new())
    }

    /// [`Scan::aggregates`] with a caller-supplied decode buffer, so a
    /// multi-consumer scan reuses one allocation across every frame it
    /// visits instead of growing a fresh `Vec` per consumer.
    pub fn aggregates_with(
        &self,
        frame: &Frame,
        scratch: &mut Vec<f64>,
    ) -> Result<(Aggregates, ScanReport), FrameError> {
        self.aggregates_impl(frame, scratch, None)
    }

    /// [`Scan::aggregates_with`] through a [`ChunkCache`]: chunks whose
    /// decoded payload is resident are served from the cache (counted
    /// in [`ScanReport::cache_hits`] / [`ScanReport::bytes_saved`]);
    /// fresh decodes are offered back for residency. The fold is the
    /// **same code path** as the uncached execution, so the answer is
    /// bit-identical by construction.
    pub fn aggregates_cached(
        &self,
        frame: &Frame,
        cache: &mut dyn ChunkCache,
        scratch: &mut Vec<f64>,
    ) -> Result<(Aggregates, ScanReport), FrameError> {
        self.aggregates_impl(frame, scratch, Some(cache))
    }

    /// The one aggregate fold behind [`Scan::aggregates_with`] and
    /// [`Scan::aggregates_cached`]: the cache, when present, replaces
    /// only the payload-decode step — slice skipping, stats exclusion,
    /// stats-only answers and the per-chunk absorb order are shared.
    fn aggregates_impl(
        &self,
        frame: &Frame,
        scratch: &mut Vec<f64>,
        mut cache: Option<&mut dyn ChunkCache>,
    ) -> Result<(Aggregates, ScanReport), FrameError> {
        let (lo, hi) = self.bounds(frame);
        let mut report = ScanReport {
            chunks_total: frame.chunks().len(),
            bytes_read: frame.disk_bytes(),
            ..ScanReport::default()
        };
        let mut agg = Aggregates::default();
        for (ci, meta) in frame.chunks().iter().enumerate() {
            let Some((a, b)) = chunk_overlap(meta, lo, hi) else {
                report.chunks_skipped_slice += 1;
                continue;
            };
            if let Some(stats) = &meta.stats {
                if self.predicates.iter().any(|p| p.excluded_by(stats)) {
                    report.chunks_skipped_stats += 1;
                    continue;
                }
                if self.predicates.is_empty() && b - a == meta.len {
                    report.chunks_stats_only += 1;
                    agg.absorb(stats, meta.len);
                    continue;
                }
            }
            let resident = cache
                .as_deref_mut()
                .and_then(|c| c.lookup(frame.file(), ci));
            let values: &[f64] = match &resident {
                Some(hit) => {
                    report.cache_hits += 1;
                    report.bytes_saved += meta.payload_bytes();
                    hit.as_slice()
                }
                None => {
                    let values = frame.chunk_values(ci, scratch)?;
                    report.chunks_decoded += 1;
                    report.bytes_decoded += meta.payload_bytes();
                    if let Some(c) = cache.as_deref_mut() {
                        c.store(frame.file(), ci, Arc::new(values.to_vec()));
                    }
                    values
                }
            };
            let sliced = slice_chunk(values, a, b, frame)?;
            if !self.predicates.iter().all(|p| p.matches(sliced)) {
                continue;
            }
            // Fold the slice into chunk-local statistics first, then
            // absorb — the same association as the stats-only path, so
            // both are bit-identical.
            agg.absorb(&ChunkStats::from_values(sliced), sliced.len());
        }
        report.intervals_selected = agg.intervals;
        Ok((agg, report))
    }

    /// The first-attaining maximum observed value and its timestamp —
    /// argmax with ties broken towards the earliest interval.
    ///
    /// Statistics narrow the search: a chunk only decodes when its
    /// recorded maximum beats the best value seen so far.
    pub fn peak(
        &self,
        frame: &Frame,
    ) -> Result<(Option<(Timestamp, f64)>, ScanReport), FrameError> {
        self.peak_with(frame, &mut Vec::new())
    }

    /// [`Scan::peak`] with a caller-supplied decode buffer (see
    /// [`Scan::aggregates_with`]).
    pub fn peak_with(
        &self,
        frame: &Frame,
        scratch: &mut Vec<f64>,
    ) -> Result<(Option<(Timestamp, f64)>, ScanReport), FrameError> {
        let (lo, hi) = self.bounds(frame);
        let h = *frame.header();
        let mut report = ScanReport {
            chunks_total: frame.chunks().len(),
            bytes_read: frame.disk_bytes(),
            ..ScanReport::default()
        };
        let mut best: Option<(usize, f64)> = None;
        for (ci, meta) in frame.chunks().iter().enumerate() {
            let Some((a, b)) = chunk_overlap(meta, lo, hi) else {
                report.chunks_skipped_slice += 1;
                continue;
            };
            if let Some(stats) = &meta.stats {
                if self.predicates.iter().any(|p| p.excluded_by(stats)) {
                    report.chunks_skipped_stats += 1;
                    continue;
                }
                if self.predicates.is_empty() && b - a == meta.len {
                    // Fully covered: the chunk max is exact, so only a
                    // strictly better max forces a decode (strict keeps
                    // the earliest interval on ties).
                    if stats.max.is_nan() || best.is_some_and(|(_, bv)| stats.max <= bv) {
                        report.chunks_stats_only += 1;
                        report.intervals_selected += meta.len;
                        continue;
                    }
                    let max = stats.max;
                    let values = frame.chunk_values(ci, scratch)?;
                    report.chunks_decoded += 1;
                    report.bytes_decoded += meta.payload_bytes();
                    report.intervals_selected += meta.len;
                    // Statistics are sanity-checked at open but never
                    // verified against the payload — a corrupt file
                    // whose recorded max names no value is a codec
                    // error, not a panic.
                    let Some(j) = values.iter().position(|v| *v == max) else {
                        return Err(FrameError::Codec {
                            file: frame.file().to_string(),
                            what: "chunk statistics disagree with the payload \
                                   (recorded max not found in the chunk)"
                                .to_string(),
                        });
                    };
                    best = Some((meta.first + j, max));
                    continue;
                }
            }
            let values = frame.chunk_values(ci, scratch)?;
            report.chunks_decoded += 1;
            report.bytes_decoded += meta.payload_bytes();
            let sliced = slice_chunk(values, a, b, frame)?;
            if !self.predicates.iter().all(|p| p.matches(sliced)) {
                continue;
            }
            report.intervals_selected += sliced.len();
            for (j, v) in sliced.iter().enumerate() {
                if !v.is_nan() && best.is_none_or(|(_, bv)| *v > bv) {
                    best = Some((meta.first + a + j, *v));
                }
            }
        }
        let located = best.map(|(idx, v)| (h.start + h.resolution.interval() * idx as i64, v));
        Ok((located, report))
    }

    /// Collect the selected intervals as `(global index, value)` pairs
    /// (gaps as `NaN`) — the exact, unaggregated answer.
    pub fn collect(&self, frame: &Frame) -> Result<(Vec<(usize, f64)>, ScanReport), FrameError> {
        let (lo, hi) = self.bounds(frame);
        let mut report = ScanReport {
            chunks_total: frame.chunks().len(),
            bytes_read: frame.disk_bytes(),
            ..ScanReport::default()
        };
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for (ci, meta) in frame.chunks().iter().enumerate() {
            let Some((a, b)) = chunk_overlap(meta, lo, hi) else {
                report.chunks_skipped_slice += 1;
                continue;
            };
            if let Some(stats) = &meta.stats {
                if self.predicates.iter().any(|p| p.excluded_by(stats)) {
                    report.chunks_skipped_stats += 1;
                    continue;
                }
            }
            let values = frame.chunk_values(ci, &mut scratch)?;
            report.chunks_decoded += 1;
            report.bytes_decoded += meta.payload_bytes();
            let sliced = slice_chunk(values, a, b, frame)?;
            if !self.predicates.iter().all(|p| p.matches(sliced)) {
                continue;
            }
            out.extend(
                sliced
                    .iter()
                    .enumerate()
                    .map(|(j, v)| (meta.first + a + j, *v)),
            );
        }
        report.intervals_selected = out.len();
        Ok((out, report))
    }

    /// Materialize the time slice as a contiguous [`MeasuredSeries`] —
    /// the ranged-read primitive. Only chunks overlapping the slice
    /// are decoded. Errors if the scan carries predicates (a filtered
    /// selection is not contiguous).
    pub fn materialize(&self, frame: &Frame) -> Result<(MeasuredSeries, ScanReport), FrameError> {
        self.materialize_with(frame, &mut Vec::new())
    }

    /// [`Scan::materialize`] with a caller-supplied decode buffer (see
    /// [`Scan::aggregates_with`]).
    pub fn materialize_with(
        &self,
        frame: &Frame,
        scratch: &mut Vec<f64>,
    ) -> Result<(MeasuredSeries, ScanReport), FrameError> {
        if !self.predicates.is_empty() {
            return Err(FrameError::Scan {
                what: "materialize cannot combine with predicates (a filtered selection \
                       is not a contiguous series)"
                    .into(),
            });
        }
        let (lo, hi) = self.bounds(frame);
        let h = *frame.header();
        let mut report = ScanReport {
            chunks_total: frame.chunks().len(),
            bytes_read: frame.disk_bytes(),
            ..ScanReport::default()
        };
        let mut out = Vec::with_capacity(hi - lo);
        for (ci, meta) in frame.chunks().iter().enumerate() {
            let Some((a, b)) = chunk_overlap(meta, lo, hi) else {
                report.chunks_skipped_slice += 1;
                continue;
            };
            let values = frame.chunk_values(ci, scratch)?;
            report.chunks_decoded += 1;
            report.bytes_decoded += meta.payload_bytes();
            out.extend_from_slice(slice_chunk(values, a, b, frame)?);
        }
        report.intervals_selected = out.len();
        let start = h.start + h.resolution.interval() * lo as i64;
        let series = MeasuredSeries::new(start, h.resolution, out)?;
        Ok((series, report))
    }

    /// Like [`Scan::materialize`], then resample to a coarser grid:
    /// each `target` bucket sums its observed constituents; a bucket
    /// whose constituents are all gaps stays a gap.
    pub fn materialize_resampled(
        &self,
        frame: &Frame,
        target: Resolution,
    ) -> Result<(MeasuredSeries, ScanReport), FrameError> {
        self.materialize_resampled_with(frame, target, &mut Vec::new())
    }

    /// [`Scan::materialize_resampled`] with a caller-supplied decode
    /// buffer (see [`Scan::aggregates_with`]).
    pub fn materialize_resampled_with(
        &self,
        frame: &Frame,
        target: Resolution,
        scratch: &mut Vec<f64>,
    ) -> Result<(MeasuredSeries, ScanReport), FrameError> {
        let (fine, report) = self.materialize_with(frame, scratch)?;
        let res = fine.resolution();
        let k = target.ratio_to(res).ok_or_else(|| FrameError::Scan {
            what: format!("cannot resample {res} to {target} (must be a coarser multiple)"),
        })?;
        if k == 1 {
            return Ok((fine, report));
        }
        if fine.len() % k != 0 {
            return Err(FrameError::Scan {
                what: format!(
                    "{} selected intervals do not fill whole {target} buckets \
                     (each bucket needs {k})",
                    fine.len()
                ),
            });
        }
        if !fine.start().is_aligned(target) {
            return Err(FrameError::Scan {
                what: format!(
                    "slice start {} is not aligned to the {target} grid",
                    fine.start()
                ),
            });
        }
        let coarse: Vec<f64> = fine
            .values()
            .chunks(k)
            .map(|bucket| {
                let stats = ChunkStats::from_values(bucket);
                if stats.all_gaps(bucket.len()) {
                    f64::NAN
                } else {
                    stats.sum
                }
            })
            .collect();
        let series = MeasuredSeries::new(fine.start(), target, coarse)?;
        Ok((series, report))
    }
}

/// The `[a, b)` slice of a decoded chunk. Bounds come from
/// [`chunk_overlap`] against the chunk directory, so a miss means the
/// decode returned fewer values than the directory promised — a codec
/// error naming the chunk-local range, never a panic.
fn slice_chunk<'v>(
    values: &'v [f64],
    a: usize,
    b: usize,
    frame: &Frame,
) -> Result<&'v [f64], FrameError> {
    values.get(a..b).ok_or_else(|| FrameError::Codec {
        file: frame.file().to_string(),
        what: format!(
            "decoded chunk holds {} value(s), too few for the selected range [{a}, {b})",
            values.len()
        ),
    })
}

/// The sliced sub-range `[a, b)` of a chunk's local indices, or `None`
/// when the chunk lies entirely outside the global selection.
fn chunk_overlap(meta: &ChunkMeta, lo: usize, hi: usize) -> Option<(usize, usize)> {
    let c_lo = meta.first;
    let c_hi = meta.first + meta.len;
    if c_hi <= lo || c_lo >= hi || lo == hi {
        return None;
    }
    let a = lo.saturating_sub(c_lo);
    let b = (hi - c_lo).min(meta.len);
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxm::{encode_chunked, encode_chunked_v1, Frame};
    use flextract_time::Duration;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// Two days of 15-min data (192 intervals), chunked per 24
    /// intervals (8 chunks): a flat 0.5 base, a spike block in chunk 5,
    /// and a gap run in chunk 2.
    fn sample() -> MeasuredSeries {
        let mut values = vec![0.5; 192];
        values[48] = f64::NAN;
        values[49] = f64::NAN;
        for v in values.iter_mut().skip(120).take(3) {
            *v = 3.0;
        }
        MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap()
    }

    fn v2_frame(m: &MeasuredSeries) -> Frame {
        Frame::from_fxm_bytes(encode_chunked(m, 24).unwrap(), "t.fxm").unwrap()
    }

    fn v1_frame(m: &MeasuredSeries) -> Frame {
        Frame::from_fxm_bytes(encode_chunked_v1(m, 24).unwrap(), "t.fxm").unwrap()
    }

    #[test]
    fn full_scan_aggregates_from_stats_alone_on_v2() {
        let m = sample();
        let (agg, report) = Scan::new().aggregates(&v2_frame(&m)).unwrap();
        assert_eq!(report.chunks_total, 8);
        assert_eq!(report.chunks_decoded, 0);
        assert_eq!(report.chunks_stats_only, 8);
        assert_eq!(agg.intervals, 192);
        assert_eq!(agg.gaps, 2);
        assert_eq!(agg.observed, 190);
        assert_eq!(agg.min, Some(0.5));
        assert_eq!(agg.max, Some(3.0));
        assert!((agg.sum_kwh - (187.0 * 0.5 + 9.0)).abs() < 1e-9);

        // The stat-less v1 path decodes everything but agrees exactly.
        let (agg1, report1) = Scan::new().aggregates(&v1_frame(&m)).unwrap();
        assert_eq!(report1.chunks_decoded, 8);
        assert_eq!(report1.chunks_stats_only, 0);
        assert_eq!(agg1.sum_kwh.to_bits(), agg.sum_kwh.to_bits());
        assert_eq!(agg1, agg);
    }

    #[test]
    fn byte_accounting_tracks_reads_and_payload_decodes() {
        let m = sample();
        for frame in [
            v2_frame(&m),
            Frame::from_fxm_bytes(crate::fxm::encode_chunked_v3(&m, 24).unwrap(), "t.fxm").unwrap(),
        ] {
            // A stats-only full scan reads the file once and decodes
            // zero payload bytes, on both stat-carrying codecs.
            let (_, report) = Scan::new().aggregates(&frame).unwrap();
            assert_eq!(report.bytes_read, frame.disk_bytes(), "{report:?}");
            assert_eq!(report.bytes_decoded, 0, "{report:?}");

            // A misaligned slice decodes its two boundary chunks, and
            // the byte count is exactly those chunks' payload extents.
            let shifted = TimeRange::new(ts("2013-03-18 01:00"), ts("2013-03-18 07:00")).unwrap();
            let (_, report) = Scan::new().time_slice(shifted).aggregates(&frame).unwrap();
            assert_eq!(report.chunks_decoded, 2);
            let expected: usize = frame.chunks()[..2].iter().map(|c| c.payload_bytes()).sum();
            assert_eq!(report.bytes_decoded, expected, "{report:?}");
            assert!(report.bytes_decoded > 0);
        }
        // The eagerly decoded v1 path pays at open: bytes_read covers
        // the file, bytes_decoded stays 0 (there is no on-demand work).
        let v1 = v1_frame(&m);
        let (_, report) = Scan::new().aggregates(&v1).unwrap();
        assert_eq!(report.bytes_read, v1.disk_bytes());
        assert_eq!(report.bytes_decoded, 0);
    }

    #[test]
    fn time_slice_decodes_only_overlapping_chunks() {
        let m = sample();
        let frame = v2_frame(&m);
        // Second day only: chunks 4..8.
        let day2 = TimeRange::starting_at(ts("2013-03-19"), Duration::days(1)).unwrap();
        let scan = Scan::new().time_slice(day2);
        let (agg, report) = scan.aggregates(&frame).unwrap();
        assert_eq!(report.chunks_skipped_slice, 4);
        assert_eq!(report.chunks_decoded, 0, "aligned slice answers from stats");
        assert_eq!(agg.intervals, 96);
        // A misaligned slice decodes exactly its two boundary chunks.
        let shifted = TimeRange::new(ts("2013-03-18 01:00"), ts("2013-03-18 07:00")).unwrap();
        let (agg, report) = Scan::new().time_slice(shifted).aggregates(&frame).unwrap();
        assert_eq!(agg.intervals, 24);
        assert_eq!(report.chunks_decoded, 2);
        assert_eq!(report.chunks_skipped_slice, 6);
    }

    #[test]
    fn predicates_skip_via_stats_and_recheck_exactly() {
        let m = sample();
        let frame = v2_frame(&m);
        // Gaps live in chunk 2 only.
        let (agg, report) = Scan::new()
            .with_predicate(Predicate::HasGaps)
            .aggregates(&frame)
            .unwrap();
        assert_eq!(report.chunks_skipped_stats, 7);
        assert_eq!(report.chunks_decoded, 1);
        assert_eq!(agg.intervals, 24);
        assert_eq!(agg.gaps, 2);
        // The spike lives in chunk 5 only.
        let (agg, report) = Scan::new()
            .with_predicate(Predicate::MaxAbove(1.0))
            .aggregates(&frame)
            .unwrap();
        assert_eq!(report.chunks_decoded, 1);
        assert_eq!(agg.max, Some(3.0));
        // v1 reaches the same answers by decoding everything.
        let (agg1, report1) = Scan::new()
            .with_predicate(Predicate::MaxAbove(1.0))
            .aggregates(&v1_frame(&m))
            .unwrap();
        assert_eq!(report1.chunks_decoded, 8);
        assert_eq!(agg1, agg);
    }

    #[test]
    fn peak_locates_the_argmax_with_minimal_decodes() {
        let m = sample();
        let frame = v2_frame(&m);
        let (peak, report) = Scan::new().peak(&frame).unwrap();
        let (t, v) = peak.unwrap();
        assert_eq!(t, ts("2013-03-19 06:00")); // interval 120
        assert_eq!(v, 3.0);
        // Chunks 0..5 share max 0.5 → one decode for chunk 0 (first
        // candidate), one for chunk 5 (the strictly better max).
        assert_eq!(report.chunks_decoded, 2);
        // Ties resolve to the earliest interval, matching brute force.
        let (peak1, _) = Scan::new().peak(&v1_frame(&m)).unwrap();
        assert_eq!(peak1, peak);
        let flat =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.7; 96]).unwrap();
        let (p, _) = Scan::new().peak(&v2_frame(&flat)).unwrap();
        assert_eq!(p, Some((ts("2013-03-18"), 0.7)));
    }

    #[test]
    fn peak_on_corrupt_stats_is_a_codec_error_not_a_panic() {
        use crate::fxm::HEADER_LEN;
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5; 96]).unwrap();
        let mut raw = encode_chunked(&m, 96).unwrap().to_vec();
        // Rewrite chunk 0's recorded max (finite, gap-consistent, so
        // the open-time sanity checks pass) to a value the payload
        // does not contain.
        let max_at = HEADER_LEN + 16;
        raw[max_at..max_at + 8].copy_from_slice(&5.0f64.to_bits().to_le_bytes());
        let frame = Frame::from_fxm_bytes(bytes::Bytes::from(raw), "t.fxm").unwrap();
        let err = Scan::new().peak(&frame).unwrap_err();
        assert!(matches!(err, FrameError::Codec { .. }), "{err:?}");
        assert!(err.to_string().contains("disagree"), "{err}");
    }

    #[test]
    fn collect_matches_brute_force_on_both_codecs() {
        let m = sample();
        let slice = TimeRange::new(ts("2013-03-18 11:00"), ts("2013-03-19 08:00")).unwrap();
        let scan = Scan::new()
            .time_slice(slice)
            .with_predicate(Predicate::MaxAbove(1.0));
        let brute: Vec<(usize, u64)> = m
            .values()
            .chunks(24)
            .enumerate()
            .flat_map(|(c, chunk)| {
                let lo = 44usize; // 11:00
                let hi = 128usize; // next day 08:00
                let first = c * 24;
                let a = lo.saturating_sub(first).min(chunk.len());
                let b = hi.saturating_sub(first).min(chunk.len());
                let sliced = if a < b { &chunk[a..b] } else { &[][..] };
                let matches = sliced.iter().any(|v| !v.is_nan() && *v > 1.0);
                sliced
                    .iter()
                    .enumerate()
                    .filter(move |_| matches)
                    .map(move |(j, v)| (first + a + j, v.to_bits()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for frame in [v2_frame(&m), v1_frame(&m)] {
            let (got, _) = scan.collect(&frame).unwrap();
            let got: Vec<(usize, u64)> = got.into_iter().map(|(i, v)| (i, v.to_bits())).collect();
            assert_eq!(got, brute);
        }
    }

    #[test]
    fn materialize_is_a_ranged_read() {
        let m = sample();
        let frame = v2_frame(&m);
        let slice = TimeRange::new(ts("2013-03-18 12:15"), ts("2013-03-19 00:00")).unwrap();
        let (sliced, report) = Scan::new().time_slice(slice).materialize(&frame).unwrap();
        assert_eq!(sliced.start(), ts("2013-03-18 12:15"));
        assert_eq!(sliced.len(), 47);
        assert_eq!(report.chunks_decoded, 2);
        assert_eq!(report.chunks_skipped_slice, 6);
        for (j, v) in sliced.values().iter().enumerate() {
            let orig = m.values()[49 + j];
            assert!(v.is_nan() == orig.is_nan());
            if !v.is_nan() {
                assert_eq!(v.to_bits(), orig.to_bits());
            }
        }
        // Predicates refuse to materialize.
        assert!(matches!(
            Scan::new()
                .with_predicate(Predicate::HasGaps)
                .materialize(&frame),
            Err(FrameError::Scan { .. })
        ));
    }

    #[test]
    fn materialize_resampled_buckets_sum_and_propagate_all_gap_buckets() {
        let mut values = vec![0.25; 8];
        values[4] = f64::NAN;
        values[5] = f64::NAN;
        values[6] = f64::NAN;
        values[7] = f64::NAN;
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap();
        let frame = v2_frame(&m);
        let (coarse, _) = Scan::new()
            .materialize_resampled(&frame, Resolution::HOUR_1)
            .unwrap();
        assert_eq!(coarse.len(), 2);
        assert!((coarse.values()[0] - 1.0).abs() < 1e-12);
        assert!(coarse.values()[1].is_nan(), "all-gap bucket stays a gap");
        // A target the resolution does not divide is a scan error.
        let err = Scan::new()
            .materialize_resampled(&frame, Resolution::MIN_5)
            .unwrap_err();
        assert!(err.to_string().contains("coarser"), "{err}");
    }

    #[test]
    fn scratch_reuse_and_report_absorb_match_the_allocating_paths() {
        let m = sample();
        let frame = v2_frame(&m);
        let mut scratch = Vec::new();
        let scan = Scan::new().with_predicate(Predicate::MaxAbove(1.0));
        let (a0, r0) = scan.aggregates(&frame).unwrap();
        let (a1, r1) = scan.aggregates_with(&frame, &mut scratch).unwrap();
        assert_eq!(a0, a1);
        assert_eq!(r0, r1);
        let (p0, _) = Scan::new().peak(&frame).unwrap();
        let (p1, _) = Scan::new().peak_with(&frame, &mut scratch).unwrap();
        assert_eq!(p0, p1);
        let slice = TimeRange::new(ts("2013-03-18 12:15"), ts("2013-03-19 00:00")).unwrap();
        let (s0, _) = Scan::new().time_slice(slice).materialize(&frame).unwrap();
        let (s1, _) = Scan::new()
            .time_slice(slice)
            .materialize_with(&frame, &mut scratch)
            .unwrap();
        assert_eq!(s0.start(), s1.start());
        let bits = |s: &MeasuredSeries| s.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&s0), bits(&s1));
        // Report absorption is plain counter addition; the shard-tier
        // counters stay zero for single-frame scans and fold in from
        // dataset-level audits.
        let mut total = ScanReport::default();
        total.absorb(&r0);
        total.absorb(&r1);
        assert_eq!(total.chunks_total, r0.chunks_total * 2);
        assert_eq!(total.chunks_decoded, r0.chunks_decoded * 2);
        assert_eq!(total.shards_total, 0);
        let shardy = ScanReport {
            shards_total: 4,
            shards_pruned: 2,
            shards_stats_only: 1,
            ..ScanReport::default()
        };
        total.absorb(&shardy);
        assert_eq!(total.shards_total, 4);
        assert_eq!(total.shards_opened(), 1);
    }

    /// A minimal ordered cache for exercising the cached fold: every
    /// offered payload is kept, keyed deterministically.
    #[derive(Default)]
    struct MapCache {
        entries: std::collections::BTreeMap<(String, usize), Arc<Vec<f64>>>,
        hits: usize,
        misses: usize,
    }

    impl ChunkCache for MapCache {
        fn lookup(&mut self, file: &str, chunk: usize) -> Option<Arc<Vec<f64>>> {
            let got = self.entries.get(&(file.to_string(), chunk)).cloned();
            if got.is_some() {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
            got
        }
        fn store(&mut self, file: &str, chunk: usize, values: Arc<Vec<f64>>) {
            self.entries.insert((file.to_string(), chunk), values);
        }
    }

    #[test]
    fn cached_aggregates_are_bit_identical_and_account_hits() {
        let m = sample();
        let slice = TimeRange::new(ts("2013-03-18 01:00"), ts("2013-03-19 07:00")).unwrap();
        for frame in [
            v2_frame(&m),
            v1_frame(&m),
            Frame::from_fxm_bytes(crate::fxm::encode_chunked_v3(&m, 24).unwrap(), "t.fxm").unwrap(),
        ] {
            for scan in [
                Scan::new(),
                Scan::new().time_slice(slice),
                Scan::new()
                    .time_slice(slice)
                    .with_predicate(Predicate::MaxAbove(1.0)),
            ] {
                let (fresh_agg, fresh_rep) = scan.aggregates(&frame).unwrap();
                let mut cache = MapCache::default();
                let mut scratch = Vec::new();
                // Cold pass: all misses, answer identical, decodes
                // offered into the cache.
                let (cold_agg, cold_rep) = scan
                    .aggregates_cached(&frame, &mut cache, &mut scratch)
                    .unwrap();
                assert_eq!(cold_agg, fresh_agg);
                assert_eq!(cold_rep.cache_hits, 0);
                assert_eq!(cold_rep.bytes_saved, 0);
                assert_eq!(cold_rep.chunks_decoded, fresh_rep.chunks_decoded);
                assert_eq!(cache.entries.len(), fresh_rep.chunks_decoded);
                // Warm pass: every decode becomes a hit; the answer
                // (and everything but the decode accounting) is
                // bit-identical to the fresh execution.
                let (warm_agg, warm_rep) = scan
                    .aggregates_cached(&frame, &mut cache, &mut scratch)
                    .unwrap();
                assert_eq!(warm_agg.sum_kwh.to_bits(), fresh_agg.sum_kwh.to_bits());
                assert_eq!(warm_agg, fresh_agg);
                assert_eq!(warm_rep.cache_hits, fresh_rep.chunks_decoded);
                assert_eq!(warm_rep.bytes_saved, fresh_rep.bytes_decoded);
                assert_eq!(warm_rep.chunks_decoded, 0);
                assert_eq!(warm_rep.bytes_decoded, 0);
                assert_eq!(warm_rep.chunks_stats_only, fresh_rep.chunks_stats_only);
                assert_eq!(warm_rep.intervals_selected, fresh_rep.intervals_selected);
            }
        }
    }

    #[test]
    fn report_absorb_folds_cache_counters() {
        let a = ScanReport {
            cache_hits: 2,
            bytes_saved: 100,
            bytes_read_index: 848,
            ..ScanReport::default()
        };
        let mut total = ScanReport::default();
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.cache_hits, 4);
        assert_eq!(total.bytes_saved, 200);
        assert_eq!(total.bytes_read_index, 1696);
    }

    #[test]
    fn empty_and_degenerate_slices_behave() {
        let m = sample();
        let frame = v2_frame(&m);
        // A slice entirely before the series selects nothing.
        let before = TimeRange::new(ts("2013-03-01"), ts("2013-03-02")).unwrap();
        let (agg, report) = Scan::new().time_slice(before).aggregates(&frame).unwrap();
        assert_eq!(agg.intervals, 0);
        assert_eq!(report.chunks_decoded + report.chunks_stats_only, 0);
        // Disjoint stacked slices collapse to empty.
        let a = TimeRange::new(ts("2013-03-18"), ts("2013-03-18 06:00")).unwrap();
        let b = TimeRange::new(ts("2013-03-19"), ts("2013-03-19 06:00")).unwrap();
        let (agg, _) = Scan::new()
            .time_slice(a)
            .time_slice(b)
            .aggregates(&frame)
            .unwrap();
        assert_eq!(agg.intervals, 0);
        // Stacked overlapping slices intersect.
        let c = TimeRange::new(ts("2013-03-18 03:00"), ts("2013-03-20")).unwrap();
        let (agg, _) = Scan::new()
            .time_slice(a)
            .time_slice(c)
            .aggregates(&frame)
            .unwrap();
        assert_eq!(agg.intervals, 12);
    }
}
