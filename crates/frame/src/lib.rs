//! # flextract-frame
//!
//! The columnar chunk-stat frame engine underneath the flextract
//! dataset store: measured series encoded as sequences of fixed-length
//! chunks, each carrying its own statistics (min, max, sum, gap count),
//! plus a footer chunk index — and a lazy [`Scan`] pipeline that plans
//! against those statistics so readers can answer time-sliced and
//! predicate queries **without decoding non-matching chunks**.
//!
//! The design follows the shape of columnar analytics engines (row
//! groups with per-group statistics and predicate pushdown): chunk
//! statistics are written once at encode time and are cheap to read
//! (a fixed-size header per chunk, addressed through the footer index),
//! so a query over a month-long series that only needs one day touches
//! one day's chunks.
//!
//! Three frame kinds exist behind one [`Frame`] type:
//!
//! * **FXM2** — the stat-carrying chunked binary format ([`fxm`]):
//!   opened lazily, chunks decode on demand, statistics come from the
//!   chunk headers via the footer index.
//! * **FXM1** — the legacy chunked binary format without statistics:
//!   degrades gracefully to a full decode at open time (the scan still
//!   answers every query, it just cannot skip decode work).
//! * **Materialized** — any in-memory series (e.g. parsed from CSV):
//!   same degradation, values are served from memory.
//!
//! The scan surface is [`Scan`]: `time_slice` + chunk predicates +
//! aggregates (`sum`/`mean`/`min`/`max`/`gaps`), `peak` (argmax with
//! timestamp), `collect` (selected intervals) and `materialize`
//! (a ranged read as a [`MeasuredSeries`], optionally resampled).
//! Every execution returns a [`ScanReport`] counting exactly which
//! chunks were decoded, skipped by the time slice, skipped by
//! statistics, or answered from statistics alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxm;
mod measured;
pub mod scan;
pub mod stats;

pub use fxm::{Frame, FrameHeader, FxmVersion, DEFAULT_CHUNK_LEN};
pub use measured::MeasuredSeries;
pub use scan::{Aggregates, ChunkCache, Predicate, Scan, ScanReport};
pub use stats::ChunkStats;

use flextract_series::SeriesError;

/// Errors surfaced by frame encoding, decoding, and scanning.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// A binary frame buffer failed to decode.
    Codec {
        /// The offending file (or buffer label).
        file: String,
        /// What is wrong with the buffer.
        what: String,
    },
    /// The buffer continues past the end of the encoded frame — the
    /// classic "trailing garbage" corruption. `offset` is the byte
    /// position where the first unexpected byte sits; `trailing` is
    /// how many bytes follow it.
    TrailingBytes {
        /// The offending file (or buffer label).
        file: String,
        /// Byte offset of the first trailing byte.
        offset: usize,
        /// Number of trailing bytes.
        trailing: usize,
    },
    /// A fixed-width read ran off the end of the buffer — the decoder
    /// needed `needed` bytes at `offset` but the buffer ends at `len`.
    ShortRead {
        /// The offending file (or buffer label).
        file: String,
        /// Byte offset where the read started.
        offset: usize,
        /// Number of bytes the read needed.
        needed: usize,
        /// Total length of the buffer.
        len: usize,
    },
    /// `encode_chunked` was asked for zero-interval chunks, which
    /// would make the chunk grid undefined.
    ZeroChunkLen,
    /// A scan was configured out of domain (e.g. a resample target the
    /// source resolution does not divide).
    Scan {
        /// Which part of the scan is invalid.
        what: String,
    },
    /// A series-level invariant was violated while assembling a result.
    Series(SeriesError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Codec { file, what } => write!(f, "{file}: codec error: {what}"),
            FrameError::TrailingBytes {
                file,
                offset,
                trailing,
            } => write!(
                f,
                "{file}: codec error: {trailing} trailing byte(s) after the final chunk \
                 at byte offset {offset}"
            ),
            FrameError::ShortRead {
                file,
                offset,
                needed,
                len,
            } => write!(
                f,
                "{file}: codec error: need {needed} byte(s) at byte offset {offset}, \
                 but the buffer ends at {len}"
            ),
            FrameError::ZeroChunkLen => {
                write!(f, "chunk length must be at least 1 (got 0)")
            }
            FrameError::Scan { what } => write!(f, "invalid scan: {what}"),
            FrameError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<SeriesError> for FrameError {
    fn from(e: SeriesError) -> Self {
        FrameError::Series(e)
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_names_file_and_offset() {
        let e = FrameError::TrailingBytes {
            file: "consumer_0.fxm".into(),
            offset: 1234,
            trailing: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("consumer_0.fxm"), "{msg}");
        assert!(msg.contains("1234"), "{msg}");
        assert!(msg.contains("7 trailing"), "{msg}");

        let e = FrameError::ShortRead {
            file: "consumer_0.fxm".into(),
            offset: 56,
            needed: 8,
            len: 60,
        };
        let msg = e.to_string();
        assert!(msg.contains("consumer_0.fxm"), "{msg}");
        assert!(msg.contains("offset 56"), "{msg}");
        assert!(msg.contains("8 byte"), "{msg}");

        assert!(FrameError::ZeroChunkLen.to_string().contains("at least 1"));
        let e: FrameError = SeriesError::Empty.into();
        assert!(e.to_string().contains("series"));
    }
}
