//! The chunked binary frame formats: legacy `FXM1`, stat-carrying
//! `FXM2` and compressed `FXM3`, plus the [`Frame`] reader that serves
//! all of them (and materialized in-memory series) behind one
//! chunk-oriented interface.
//!
//! ## `FXM1` layout (all little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"FXM1"` |
//! | 4      | 8    | start (i64 minutes since flextract epoch) |
//! | 12     | 4    | resolution (u32 minutes) |
//! | 16     | 8    | total length (u64 interval count) |
//! | 24     | 4    | chunk length (u32 intervals per chunk) |
//! | 28     | …    | chunk frames `[u32 count][count × f64]` |
//!
//! ## `FXM2` layout (all little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"FXM2"` |
//! | 4      | 8    | start (i64 minutes since flextract epoch) |
//! | 12     | 4    | resolution (u32 minutes) |
//! | 16     | 8    | total length (u64 interval count) |
//! | 24     | 4    | chunk length (u32 intervals per chunk) |
//! | 28     | …    | chunk frames (see below) |
//! | F      | 8·C  | footer: absolute byte offset of each chunk frame |
//! | F+8·C  | 8    | `F` (absolute byte offset of the footer) |
//! | F+8·C+8| 4    | end magic `b"2MXF"` |
//!
//! Each `FXM2` chunk frame is
//! `[u32 count][u32 gap_count][f64 min][f64 max][f64 sum][count × f64]`:
//! a 32-byte statistics header followed by the raw IEEE-754 payload.
//! `count` equals the chunk length except for the final chunk. The
//! statistics cover the chunk's **observed** (non-gap) values; for an
//! all-gap chunk `min`/`max` carry the canonical gap payload.
//!
//! A reader seeks to the 12-byte tail, follows the footer to the chunk
//! offsets, and reads the 32-byte statistics headers without touching
//! any payload — which is what lets a [`Scan`](crate::scan::Scan) skip
//! whole chunks. Byte accounting is exact end to end: every slack or
//! trailing byte is a decode error, never silently ignored.
//!
//! ## `FXM3` layout (all little-endian)
//!
//! Same 28-byte fixed header (magic `b"FXM3"`), footer chunk index and
//! 12-byte tail (end magic `b"3MXF"`) as `FXM2`; only the chunk frames
//! differ:
//!
//! | field | size | contents |
//! |-------|------|----------|
//! | stats | 32   | `[u32 count][u32 gap_count][f64 min][f64 max][f64 sum]` (identical to `FXM2`) |
//! | gap bitmap | ⌈count/8⌉ | bit `i` (LSB-first per byte) set ⇔ interval `i` is a gap; padding bits zero |
//! | stream | …   | XOR-compressed observed values, MSB-first bit stream, zero-padded to a byte |
//!
//! The stream carries only the observed (non-gap) values: the first as
//! raw 64 bits, then per value a Gorilla-style XOR against the previous
//! observed value — control bit `0` for an identical bit pattern, `10`
//! plus the meaningful bits re-using the previous leading-zeros/length
//! window, or `11` plus a 6-bit leading-zero count, a 6-bit
//! (meaningful length − 1) and the meaningful bits for a new window.
//! Gaps never enter the stream (the bitmap carries them), so the
//! canonical gap payload never costs stream bits. Chunk frames are
//! therefore variable-length and located purely through the footer
//! index; a decoder accounts for every bit — slack bytes, non-zero
//! padding bits and window overruns are typed errors. Because the
//! statistics header is byte-identical to `FXM2`, a stats-only scan
//! decodes exactly as many payload bytes on `FXM3` as on `FXM2`: zero.
//!
//! All formats carry gaps explicitly (every `NaN` is normalised to one
//! canonical bit pattern on encode, so encoding is a pure function of
//! the series) and round-trip bit-exactly.

use crate::stats::ChunkStats;
use crate::{FrameError, MeasuredSeries};
use bytes::{BufMut, Bytes, BytesMut};
use flextract_series::SeriesError;
use flextract_time::{Resolution, Timestamp};

/// Format magic of the legacy stat-less format.
pub const MAGIC_V1: [u8; 4] = *b"FXM1";

/// Format magic of the stat-carrying format.
pub const MAGIC_V2: [u8; 4] = *b"FXM2";

/// End marker closing an `FXM2` buffer (the magic, mirrored).
pub const END_MAGIC_V2: [u8; 4] = *b"2MXF";

/// Format magic of the compressed stat-carrying format.
pub const MAGIC_V3: [u8; 4] = *b"FXM3";

/// End marker closing an `FXM3` buffer (the magic, mirrored).
pub const END_MAGIC_V3: [u8; 4] = *b"3MXF";

/// Size in bytes of the fixed header (both versions).
pub const HEADER_LEN: usize = 28;

/// Size in bytes of an `FXM2` chunk-frame statistics header.
pub const V2_CHUNK_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Size in bytes of the `FXM2` tail (footer offset + end magic).
pub const V2_TAIL_LEN: usize = 8 + 4;

/// Default intervals per chunk: one 15-min day. Chosen so a chunk is a
/// few KiB — small enough to stream and skip, large enough that framing
/// overhead (4–32 bytes per chunk) is noise.
pub const DEFAULT_CHUNK_LEN: usize = 96;

/// The canonical gap payload: every `NaN` is normalised to this bit
/// pattern on encode, so encoding is a pure function of the series
/// (two equal series always encode to identical bytes).
const GAP_BITS: u64 = 0x7FF8_0000_0000_0000;

/// Which binary format a buffer carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FxmVersion {
    /// Legacy `FXM1`: chunk frames without statistics or footer.
    V1,
    /// `FXM2`: per-chunk statistics plus a footer chunk index.
    V2,
    /// `FXM3`: per-chunk statistics plus XOR-compressed payloads.
    V3,
}

/// Identify the binary format of `bytes` by magic, if any.
pub fn sniff(bytes: &[u8]) -> Option<FxmVersion> {
    if bytes.starts_with(&MAGIC_V1) {
        Some(FxmVersion::V1)
    } else if bytes.starts_with(&MAGIC_V2) {
        Some(FxmVersion::V2)
    } else if bytes.starts_with(&MAGIC_V3) {
        Some(FxmVersion::V3)
    } else {
        None
    }
}

fn codec_err(file: &str, what: impl Into<String>) -> FrameError {
    FrameError::Codec {
        file: file.to_string(),
        what: what.into(),
    }
}

fn put_value(buf: &mut BytesMut, v: f64) {
    buf.put_u64_le(if v.is_nan() { GAP_BITS } else { v.to_bits() });
}

/// Encode a measured series as `FXM2` using
/// [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode(series: &MeasuredSeries) -> Bytes {
    encode_impl(series, DEFAULT_CHUNK_LEN)
}

/// Encode a measured series as `FXM2` with an explicit chunk length.
///
/// Errors with [`FrameError::ZeroChunkLen`] for `chunk_len == 0` — a
/// zero-interval chunk grid is undefined and is never silently
/// clamped.
pub fn encode_chunked(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, FrameError> {
    if chunk_len == 0 {
        return Err(FrameError::ZeroChunkLen);
    }
    Ok(encode_impl(series, chunk_len))
}

/// `FXM2` encoding over a validated (non-zero) chunk length.
fn encode_impl(series: &MeasuredSeries, chunk_len: usize) -> Bytes {
    let n = series.len();
    let chunks = n.div_ceil(chunk_len);
    let mut buf =
        BytesMut::with_capacity(HEADER_LEN + chunks * (V2_CHUNK_HEADER_LEN + 8) + 8 * n + 12);
    buf.put_slice(&MAGIC_V2);
    buf.put_i64_le(series.start().as_minutes());
    buf.put_u32_le(series.resolution().minutes() as u32);
    buf.put_u64_le(n as u64);
    buf.put_u32_le(chunk_len as u32);
    let mut offsets = Vec::with_capacity(chunks);
    for chunk in series.values().chunks(chunk_len) {
        offsets.push(buf.len() as u64);
        let stats = ChunkStats::from_values(chunk);
        buf.put_u32_le(chunk.len() as u32);
        buf.put_u32_le(stats.gaps);
        put_value(&mut buf, stats.min);
        put_value(&mut buf, stats.max);
        put_value(&mut buf, stats.sum);
        for &v in chunk {
            put_value(&mut buf, v);
        }
    }
    let footer = buf.len() as u64;
    for o in offsets {
        buf.put_u64_le(o);
    }
    buf.put_u64_le(footer);
    buf.put_slice(&END_MAGIC_V2);
    buf.freeze()
}

/// Encode a measured series as legacy `FXM1` using
/// [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode_v1(series: &MeasuredSeries) -> Bytes {
    encode_impl_v1(series, DEFAULT_CHUNK_LEN)
}

/// Encode a measured series as legacy `FXM1` with an explicit chunk
/// length (same [`FrameError::ZeroChunkLen`] contract as
/// [`encode_chunked`]).
pub fn encode_chunked_v1(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, FrameError> {
    if chunk_len == 0 {
        return Err(FrameError::ZeroChunkLen);
    }
    Ok(encode_impl_v1(series, chunk_len))
}

/// `FXM1` encoding over a validated (non-zero) chunk length.
fn encode_impl_v1(series: &MeasuredSeries, chunk_len: usize) -> Bytes {
    let n = series.len();
    let chunks = n.div_ceil(chunk_len);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 4 * chunks + 8 * n);
    buf.put_slice(&MAGIC_V1);
    buf.put_i64_le(series.start().as_minutes());
    buf.put_u32_le(series.resolution().minutes() as u32);
    buf.put_u64_le(n as u64);
    buf.put_u32_le(chunk_len as u32);
    for chunk in series.values().chunks(chunk_len) {
        buf.put_u32_le(chunk.len() as u32);
        for &v in chunk {
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// MSB-first bit accumulator for the `FXM3` compressed stream. The
/// final byte is zero-padded on flush, and the decoder re-checks that
/// padding, so the stream's bit count is recoverable exactly.
struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    used: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            out: Vec::new(),
            cur: 0,
            used: 0,
        }
    }

    /// Append the low `n` bits of `value`, MSB-first (`n <= 64`).
    fn push_bits(&mut self, value: u64, n: u32) {
        let mut left = n;
        while left > 0 {
            let take = left.min(8 - self.used);
            // `take` is 1..=8 and `left - take` is 0..=63; the byte
            // shift goes through u16 because `take` can be exactly 8
            // (the accumulator is empty then, so the high bits are 0).
            let chunk = ((value >> (left - take)) & ((1u64 << take) - 1)) as u8;
            self.cur = ((u16::from(self.cur) << take) as u8) | chunk;
            self.used += take;
            left -= take;
            if self.used == 8 {
                self.out.push(self.cur);
                self.cur = 0;
                self.used = 0;
            }
        }
    }

    fn push_bit(&mut self, bit: u64) {
        self.push_bits(bit, 1);
    }

    /// Flush, zero-padding the final partial byte.
    fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.out.push(self.cur << (8 - self.used));
        }
        self.out
    }
}

/// Append one chunk's `FXM3` gap bitmap + compressed stream to `buf`.
fn put_v3_payload(buf: &mut BytesMut, chunk: &[f64]) {
    // Gap bitmap, LSB-first within each byte; padding bits stay zero.
    for group in chunk.chunks(8) {
        let mut byte = 0u8;
        for (bit, v) in group.iter().enumerate() {
            if v.is_nan() {
                byte |= 1 << bit;
            }
        }
        buf.put_slice(&[byte]);
    }
    let mut w = BitWriter::new();
    let mut prev: Option<u64> = None;
    // The window (leading zeros, meaningful length) of the last `11`
    // control block; `10` re-uses it when the new XOR fits inside.
    let mut window: Option<(u32, u32)> = None;
    for &v in chunk.iter().filter(|v| !v.is_nan()) {
        let bits = v.to_bits();
        match prev {
            None => w.push_bits(bits, 64),
            Some(p) => {
                let xor = p ^ bits;
                if xor == 0 {
                    w.push_bit(0);
                } else {
                    w.push_bit(1);
                    let lead = xor.leading_zeros();
                    let trail = xor.trailing_zeros();
                    let reused = match window {
                        Some((wl, wm)) if lead >= wl && trail >= 64 - wl - wm => {
                            w.push_bit(0);
                            w.push_bits(xor >> (64 - wl - wm), wm);
                            true
                        }
                        _ => false,
                    };
                    if !reused {
                        let meaningful = 64 - lead - trail;
                        w.push_bit(1);
                        w.push_bits(u64::from(lead), 6);
                        w.push_bits(u64::from(meaningful - 1), 6);
                        w.push_bits(xor >> trail, meaningful);
                        window = Some((lead, meaningful));
                    }
                }
            }
        }
        prev = Some(bits);
    }
    buf.put_slice(&w.finish());
}

/// Encode a measured series as `FXM3` using
/// [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode_v3(series: &MeasuredSeries) -> Bytes {
    encode_impl_v3(series, DEFAULT_CHUNK_LEN)
}

/// Encode a measured series as `FXM3` with an explicit chunk length
/// (same [`FrameError::ZeroChunkLen`] contract as [`encode_chunked`]).
pub fn encode_chunked_v3(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, FrameError> {
    if chunk_len == 0 {
        return Err(FrameError::ZeroChunkLen);
    }
    Ok(encode_impl_v3(series, chunk_len))
}

/// `FXM3` encoding over a validated (non-zero) chunk length.
fn encode_impl_v3(series: &MeasuredSeries, chunk_len: usize) -> Bytes {
    let n = series.len();
    let chunks = n.div_ceil(chunk_len);
    // Capacity is a guess (the stream compresses); worst case per value
    // is < 80 bits, so the uncompressed size is a safe reservation.
    let mut buf =
        BytesMut::with_capacity(HEADER_LEN + chunks * (V2_CHUNK_HEADER_LEN + 8) + 10 * n + 12);
    buf.put_slice(&MAGIC_V3);
    buf.put_i64_le(series.start().as_minutes());
    buf.put_u32_le(series.resolution().minutes() as u32);
    buf.put_u64_le(n as u64);
    buf.put_u32_le(chunk_len as u32);
    let mut offsets = Vec::with_capacity(chunks);
    for chunk in series.values().chunks(chunk_len) {
        offsets.push(buf.len() as u64);
        let stats = ChunkStats::from_values(chunk);
        buf.put_u32_le(chunk.len() as u32);
        buf.put_u32_le(stats.gaps);
        put_value(&mut buf, stats.min);
        put_value(&mut buf, stats.max);
        put_value(&mut buf, stats.sum);
        put_v3_payload(&mut buf, chunk);
    }
    let footer = buf.len() as u64;
    for o in offsets {
        buf.put_u64_le(o);
    }
    buf.put_u64_le(footer);
    buf.put_slice(&END_MAGIC_V3);
    buf.freeze()
}

/// Parsed fixed header (identical in both versions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// First instant covered by the series.
    pub start: Timestamp,
    /// Interval width.
    pub resolution: Resolution,
    /// Total interval count across all chunks.
    pub len: usize,
    /// Intervals per chunk (the final chunk may be shorter).
    pub chunk_len: usize,
}

impl FrameHeader {
    /// Number of chunks implied by `len` and `chunk_len`.
    pub fn chunk_count(&self) -> usize {
        self.len.div_ceil(self.chunk_len)
    }
}

/// One chunk's placement and (for `FXM2`) statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkMeta {
    /// Global index of the chunk's first interval.
    pub first: usize,
    /// Number of intervals in the chunk.
    pub len: usize,
    /// Statistics, when the format carries them (`FXM2`/`FXM3`).
    pub stats: Option<ChunkStats>,
    /// Absolute byte offset of the chunk frame (0 for materialized
    /// frames, which have no backing buffer).
    offset: usize,
    /// On-disk payload bytes past the statistics header (raw IEEE-754
    /// words for `FXM2`; gap bitmap + compressed stream for `FXM3`; 0
    /// for virtually chunked frames). Feeds the scan byte audit.
    payload_bytes: usize,
}

impl ChunkMeta {
    /// On-disk payload bytes a decode of this chunk touches (0 for
    /// virtually chunked frames, whose decode cost was paid at open).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }
}

/// How a [`Frame`] serves its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Lazy `FXM2`: chunks decode on demand, statistics are indexed.
    FxmV2,
    /// Lazy `FXM3`: like `FxmV2`, with XOR-compressed payloads that
    /// decompress on demand.
    FxmV3,
    /// Legacy `FXM1`: fully decoded at open (no statistics to push
    /// down), chunks served from memory.
    FxmV1,
    /// An in-memory series (e.g. parsed from CSV) chunked virtually.
    Materialized,
}

/// A chunk-addressable view over one measured series.
///
/// `FXM2` buffers open lazily — the constructor reads only the header,
/// the footer index and the 32-byte per-chunk statistics headers;
/// payloads decode on demand through [`Frame::chunk_values`]. `FXM1`
/// and in-memory series degrade gracefully: they are materialized up
/// front and chunked virtually, so every scan still runs (it just
/// cannot skip decode work it has already paid for).
#[derive(Debug, Clone)]
pub struct Frame {
    file: String,
    header: FrameHeader,
    kind: FrameKind,
    /// The raw buffer (`FxmV2`/`FxmV3` only; empty otherwise).
    buf: Bytes,
    /// Materialized values (`FxmV1`/`Materialized` only; empty for
    /// lazy frames).
    values: Vec<f64>,
    chunks: Vec<ChunkMeta>,
    /// On-disk size of the backing buffer at open (0 for frames built
    /// from an in-memory series). Kept separately because the eager
    /// `FXM1` path drops its buffer after decoding.
    disk_bytes: usize,
}

/// Take `N` bytes at `at`, or a [`FrameError::ShortRead`] naming the
/// offset if the buffer ends first. Every fixed-width read in the
/// decoder goes through here — on a truncated or crafted buffer the
/// failing offset surfaces as a typed error, never a panic.
fn read_array<const N: usize>(buf: &[u8], at: usize, file: &str) -> Result<[u8; N], FrameError> {
    at.checked_add(N)
        .and_then(|end| buf.get(at..end))
        .and_then(|bytes| <[u8; N]>::try_from(bytes).ok())
        .ok_or_else(|| FrameError::ShortRead {
            file: file.to_string(),
            offset: at,
            needed: N,
            len: buf.len(),
        })
}

fn read_u32(buf: &[u8], at: usize, file: &str) -> Result<u32, FrameError> {
    Ok(u32::from_le_bytes(read_array(buf, at, file)?))
}

fn read_u64(buf: &[u8], at: usize, file: &str) -> Result<u64, FrameError> {
    Ok(u64::from_le_bytes(read_array(buf, at, file)?))
}

fn read_f64(buf: &[u8], at: usize, file: &str) -> Result<f64, FrameError> {
    Ok(f64::from_bits(read_u64(buf, at, file)?))
}

/// Decode the fixed header shared by both versions, returning the
/// version alongside.
pub fn decode_header(buf: &[u8], file: &str) -> Result<(FrameHeader, FxmVersion), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(codec_err(file, "buffer shorter than header"));
    }
    let version =
        sniff(buf).ok_or_else(|| codec_err(file, "bad magic (expected FXM1, FXM2 or FXM3)"))?;
    let start = Timestamp::from_minutes(read_u64(buf, 4, file)? as i64);
    let resolution = Resolution::from_minutes(read_u32(buf, 12, file)? as i64)
        .map_err(|_| codec_err(file, "invalid resolution"))?;
    if !start.is_aligned(resolution) {
        return Err(codec_err(file, "unaligned start"));
    }
    let len = read_u64(buf, 16, file)?;
    if len > (usize::MAX / 8) as u64 {
        return Err(codec_err(file, "length overflow"));
    }
    let chunk_len = read_u32(buf, 24, file)? as usize;
    if chunk_len == 0 {
        return Err(codec_err(file, "zero chunk length"));
    }
    Ok((
        FrameHeader {
            start,
            resolution,
            len: len as usize,
            chunk_len,
        },
        version,
    ))
}

impl Frame {
    /// Open a binary frame buffer (either version). `file` names the
    /// source in errors.
    pub fn from_fxm_bytes(bytes: Bytes, file: &str) -> Result<Frame, FrameError> {
        let (header, version) = decode_header(&bytes, file)?;
        match version {
            FxmVersion::V2 => Self::open_v2(bytes, header, file),
            FxmVersion::V3 => Self::open_v3(bytes, header, file),
            FxmVersion::V1 => Self::open_v1(&bytes, header, file),
        }
    }

    /// Wrap an already-materialized series as a virtually chunked
    /// frame (the CSV path). Statistics are not computed — the decode
    /// cost has already been paid, so there is nothing left to skip.
    pub fn from_measured(
        series: MeasuredSeries,
        chunk_len: usize,
        file: &str,
    ) -> Result<Frame, FrameError> {
        if chunk_len == 0 {
            return Err(FrameError::ZeroChunkLen);
        }
        let header = FrameHeader {
            start: series.start(),
            resolution: series.resolution(),
            len: series.len(),
            chunk_len,
        };
        Ok(Frame {
            file: file.to_string(),
            chunks: virtual_chunks(&header),
            header,
            kind: FrameKind::Materialized,
            buf: Bytes::new(),
            values: series.into_values(),
            disk_bytes: 0,
        })
    }

    fn open_v2(bytes: Bytes, header: FrameHeader, file: &str) -> Result<Frame, FrameError> {
        let chunks = parse_v2_chunks(&bytes, &header, file)?;
        Ok(Frame {
            file: file.to_string(),
            header,
            kind: FrameKind::FxmV2,
            disk_bytes: bytes.len(),
            buf: bytes,
            values: Vec::new(),
            chunks,
        })
    }

    fn open_v3(bytes: Bytes, header: FrameHeader, file: &str) -> Result<Frame, FrameError> {
        let chunks = parse_v3_chunks(&bytes, &header, file)?;
        Ok(Frame {
            file: file.to_string(),
            header,
            kind: FrameKind::FxmV3,
            disk_bytes: bytes.len(),
            buf: bytes,
            values: Vec::new(),
            chunks,
        })
    }
    fn open_v1(buf: &[u8], header: FrameHeader, file: &str) -> Result<Frame, FrameError> {
        // Sequential decode: v1 has no footer, so the only way to find
        // chunk boundaries is to walk them — a full decode.
        // The header's chunk_len is attacker-controlled; cap the
        // upfront allocation by what the buffer could actually hold so
        // a corrupt file yields a codec error, not a huge allocation.
        let mut values = Vec::with_capacity(header.len.min(buf.len() / 8));
        let mut at = HEADER_LEN;
        while values.len() < header.len {
            let expected = header.chunk_len.min(header.len - values.len());
            if at + 4 > buf.len() {
                return Err(codec_err(file, "truncated chunk frame"));
            }
            let count = read_u32(buf, at, file)? as usize;
            if count != expected {
                return Err(codec_err(file, "chunk count disagrees with header"));
            }
            at += 4;
            if at + count * 8 > buf.len() {
                return Err(codec_err(file, "truncated chunk payload"));
            }
            for _ in 0..count {
                let v = read_f64(buf, at, file)?;
                if v.is_infinite() {
                    return Err(codec_err(file, "infinite value in chunk payload"));
                }
                values.push(v);
                at += 8;
            }
        }
        if at < buf.len() {
            return Err(FrameError::TrailingBytes {
                file: file.to_string(),
                offset: at,
                trailing: buf.len() - at,
            });
        }
        Ok(Frame {
            file: file.to_string(),
            chunks: virtual_chunks(&header),
            header,
            kind: FrameKind::FxmV1,
            buf: Bytes::new(),
            values,
            disk_bytes: buf.len(),
        })
    }

    /// The fixed header.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// How this frame serves its chunks.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The source file (or buffer label), for error context.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The chunk directory, in interval order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// On-disk bytes read to open this frame (0 for frames built from
    /// an in-memory series). Feeds [`ScanReport::bytes_read`]
    /// accounting.
    ///
    /// [`ScanReport::bytes_read`]: crate::scan::ScanReport::bytes_read
    pub fn disk_bytes(&self) -> usize {
        self.disk_bytes
    }

    /// The values of chunk `i`, decoding on demand for lazy frames.
    /// `scratch` is the decode buffer (reused across calls); the
    /// returned slice borrows either `scratch` or the frame itself.
    ///
    /// A chunk index past the directory is a [`FrameError::Scan`], not
    /// a panic.
    pub fn chunk_values<'a>(
        &'a self,
        i: usize,
        scratch: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], FrameError> {
        let meta = self.chunks.get(i).ok_or_else(|| FrameError::Scan {
            what: format!(
                "chunk index {i} out of range ({} chunks)",
                self.chunks.len()
            ),
        })?;
        match self.kind {
            FrameKind::FxmV1 | FrameKind::Materialized => self
                .values
                .get(meta.first..meta.first + meta.len)
                .ok_or_else(|| {
                    codec_err(
                        &self.file,
                        format!("chunk {i} extends past the materialized values"),
                    )
                }),
            FrameKind::FxmV2 => {
                read_v2_payload(&self.buf, meta, &self.file, scratch)?;
                Ok(scratch.as_slice())
            }
            FrameKind::FxmV3 => {
                read_v3_payload(&self.buf, meta, &self.file, scratch)?;
                Ok(scratch.as_slice())
            }
        }
    }

    /// Fully decode the frame into a measured series.
    pub fn decode(&self) -> Result<MeasuredSeries, FrameError> {
        let mut values = Vec::with_capacity(self.header.len);
        let mut scratch = Vec::new();
        for i in 0..self.chunks.len() {
            values.extend_from_slice(self.chunk_values(i, &mut scratch)?);
        }
        MeasuredSeries::new(self.header.start, self.header.resolution, values).map_err(
            |e| match e {
                SeriesError::UnalignedStart => codec_err(&self.file, "unaligned start"),
                other => FrameError::Series(other),
            },
        )
    }

    /// Consume the frame into a fully decoded measured series —
    /// already-materialized frames move their values instead of
    /// copying.
    pub fn into_measured(self) -> Result<MeasuredSeries, FrameError> {
        match self.kind {
            FrameKind::FxmV2 | FrameKind::FxmV3 => self.decode(),
            FrameKind::FxmV1 | FrameKind::Materialized => {
                MeasuredSeries::new(self.header.start, self.header.resolution, self.values).map_err(
                    |e| match e {
                        SeriesError::UnalignedStart => codec_err(&self.file, "unaligned start"),
                        other => FrameError::Series(other),
                    },
                )
            }
        }
    }
}

/// Parse an `FXM2` buffer's footer index and per-chunk statistics
/// headers into the chunk directory, enforcing exact byte accounting
/// (no payload is decoded). All size arithmetic is bounded by the
/// buffer length *before* it happens, so a crafted header yields a
/// codec error, never an overflow or a huge allocation.
fn parse_v2_chunks(
    buf: &[u8],
    header: &FrameHeader,
    file: &str,
) -> Result<Vec<ChunkMeta>, FrameError> {
    let chunks = header.chunk_count();
    // Bound the declared chunk count by what the buffer could hold
    // before any multiplication: each chunk needs 8 footer bytes.
    let avail = buf.len().saturating_sub(HEADER_LEN + V2_TAIL_LEN);
    if chunks > avail / 8 {
        return Err(codec_err(file, "buffer shorter than footer"));
    }
    let footer_len = chunks * 8 + V2_TAIL_LEN;
    let end_magic: [u8; 4] = read_array(buf, buf.len().saturating_sub(4), file)?;
    if end_magic != END_MAGIC_V2 {
        return Err(codec_err(
            file,
            "missing FXM2 end marker (truncated buffer or trailing bytes)",
        ));
    }
    let tail_at = buf
        .len()
        .checked_sub(V2_TAIL_LEN)
        .ok_or_else(|| codec_err(file, "buffer shorter than the FXM2 tail"))?;
    let footer_off = read_u64(buf, tail_at, file)?;
    let expected_footer = (buf.len() - footer_len) as u64;
    if footer_off != expected_footer {
        return Err(codec_err(
            file,
            format!(
                "footer offset {footer_off} does not line up with the chunk index \
                 (expected {expected_footer}; truncated buffer or trailing bytes)"
            ),
        ));
    }
    let mut metas: Vec<ChunkMeta> = Vec::with_capacity(chunks);
    let mut expected_off = HEADER_LEN as u64;
    for c in 0..chunks {
        let off = read_u64(buf, footer_off as usize + c * 8, file)?;
        if off != expected_off {
            return Err(codec_err(
                file,
                format!("chunk {c} offset {off} disagrees with the frame layout"),
            ));
        }
        let first = c * header.chunk_len;
        let len = header.chunk_len.min(header.len - first);
        // `off` equals `expected_off`, which grows contiguously and is
        // re-checked against `footer_off` below, so `at` is in range.
        let at = off as usize;
        if at + V2_CHUNK_HEADER_LEN + len * 8 > footer_off as usize {
            return Err(codec_err(file, "truncated chunk frame"));
        }
        let count = read_u32(buf, at, file)? as usize;
        if count != len {
            return Err(codec_err(file, "chunk count disagrees with header"));
        }
        let gaps = read_u32(buf, at + 4, file)?;
        if gaps as usize > len {
            return Err(codec_err(file, "chunk gap count exceeds chunk length"));
        }
        let min = read_f64(buf, at + 8, file)?;
        let max = read_f64(buf, at + 16, file)?;
        let sum = read_f64(buf, at + 24, file)?;
        if min.is_infinite() || max.is_infinite() || !sum.is_finite() {
            return Err(codec_err(file, "non-finite chunk statistics"));
        }
        if (gaps as usize == len) != (min.is_nan() || max.is_nan()) {
            return Err(codec_err(
                file,
                "chunk statistics disagree with the gap count",
            ));
        }
        metas.push(ChunkMeta {
            first,
            len,
            stats: Some(ChunkStats {
                gaps,
                min,
                max,
                sum,
            }),
            offset: at,
            payload_bytes: len * 8,
        });
        expected_off = (at + V2_CHUNK_HEADER_LEN + len * 8) as u64;
    }
    if expected_off != footer_off {
        return Err(codec_err(
            file,
            "slack bytes between the final chunk and the footer",
        ));
    }
    Ok(metas)
}

/// Decode one `FXM2` chunk payload into `out` (cleared first).
fn read_v2_payload(
    buf: &[u8],
    meta: &ChunkMeta,
    file: &str,
    out: &mut Vec<f64>,
) -> Result<(), FrameError> {
    out.clear();
    out.reserve(meta.len);
    let mut at = meta.offset + V2_CHUNK_HEADER_LEN;
    for _ in 0..meta.len {
        let v = read_f64(buf, at, file)?;
        if v.is_infinite() {
            return Err(codec_err(file, "infinite value in chunk payload"));
        }
        out.push(v);
        at += 8;
    }
    Ok(())
}

/// Parse an `FXM3` buffer's footer index and per-chunk statistics
/// headers into the chunk directory. Chunk frames are variable-length
/// (the payload compresses), so each chunk's byte extent is derived
/// from the next footer offset; offsets must be contiguous from the
/// fixed header to the footer, which makes every extent bounded before
/// any read. No payload (bitmap or stream) is touched here.
fn parse_v3_chunks(
    buf: &[u8],
    header: &FrameHeader,
    file: &str,
) -> Result<Vec<ChunkMeta>, FrameError> {
    let chunks = header.chunk_count();
    // Bound the declared chunk count by what the buffer could hold
    // before any multiplication: each chunk needs 8 footer bytes.
    let avail = buf.len().saturating_sub(HEADER_LEN + V2_TAIL_LEN);
    if chunks > avail / 8 {
        return Err(codec_err(file, "buffer shorter than footer"));
    }
    let footer_len = chunks * 8 + V2_TAIL_LEN;
    let end_magic: [u8; 4] = read_array(buf, buf.len().saturating_sub(4), file)?;
    if end_magic != END_MAGIC_V3 {
        return Err(codec_err(
            file,
            "missing FXM3 end marker (truncated buffer or trailing bytes)",
        ));
    }
    let tail_at = buf
        .len()
        .checked_sub(V2_TAIL_LEN)
        .ok_or_else(|| codec_err(file, "buffer shorter than the FXM3 tail"))?;
    let footer_off = read_u64(buf, tail_at, file)?;
    let expected_footer = (buf.len() - footer_len) as u64;
    if footer_off != expected_footer {
        return Err(codec_err(
            file,
            format!(
                "footer offset {footer_off} does not line up with the chunk index \
                 (expected {expected_footer}; truncated buffer or trailing bytes)"
            ),
        ));
    }
    let mut metas: Vec<ChunkMeta> = Vec::with_capacity(chunks);
    let mut expected_off = HEADER_LEN as u64;
    for c in 0..chunks {
        let off = read_u64(buf, footer_off as usize + c * 8, file)?;
        if off != expected_off {
            return Err(codec_err(
                file,
                format!("chunk {c} offset {off} disagrees with the frame layout"),
            ));
        }
        // The chunk's byte extent ends where the next chunk (or the
        // footer) begins; `off == expected_off` keeps the walk
        // contiguous, so `end` is bounded by `footer_off`.
        let end = if c + 1 < chunks {
            read_u64(buf, footer_off as usize + (c + 1) * 8, file)?
        } else {
            footer_off
        };
        let Some(extent) = end.checked_sub(off).map(|e| e as usize) else {
            return Err(codec_err(
                file,
                format!("chunk {c} offsets are not monotonic"),
            ));
        };
        if end > footer_off {
            return Err(codec_err(
                file,
                format!("chunk {c} extends past the footer"),
            ));
        }
        let first = c * header.chunk_len;
        let len = header.chunk_len.min(header.len - first);
        let bitmap_len = len.div_ceil(8);
        if extent < V2_CHUNK_HEADER_LEN + bitmap_len {
            return Err(codec_err(file, "truncated chunk frame"));
        }
        let at = off as usize;
        let count = read_u32(buf, at, file)? as usize;
        if count != len {
            return Err(codec_err(file, "chunk count disagrees with header"));
        }
        let gaps = read_u32(buf, at + 4, file)?;
        if gaps as usize > len {
            return Err(codec_err(file, "chunk gap count exceeds chunk length"));
        }
        let min = read_f64(buf, at + 8, file)?;
        let max = read_f64(buf, at + 16, file)?;
        let sum = read_f64(buf, at + 24, file)?;
        if min.is_infinite() || max.is_infinite() || !sum.is_finite() {
            return Err(codec_err(file, "non-finite chunk statistics"));
        }
        if (gaps as usize == len) != (min.is_nan() || max.is_nan()) {
            return Err(codec_err(
                file,
                "chunk statistics disagree with the gap count",
            ));
        }
        metas.push(ChunkMeta {
            first,
            len,
            stats: Some(ChunkStats {
                gaps,
                min,
                max,
                sum,
            }),
            offset: at,
            payload_bytes: extent - V2_CHUNK_HEADER_LEN,
        });
        expected_off = end;
    }
    if expected_off != footer_off {
        return Err(codec_err(
            file,
            "slack bytes between the final chunk and the footer",
        ));
    }
    Ok(metas)
}

/// MSB-first bit cursor over a compressed stream, buffered through a
/// 64-bit accumulator so the per-value hot path is shifts, not a
/// byte-masking loop (this decoder sits under every time-sliced FXM3
/// query — see the `query/*/fxm3` bench rows). Every refill is
/// bounds-checked; `None` means the stream ended early, which callers
/// surface as a typed codec error.
struct BitReader<'a> {
    buf: &'a [u8],
    /// Next byte to refill the accumulator from.
    next: usize,
    /// MSB-aligned accumulator: the top `have` bits are valid.
    acc: u64,
    /// Valid bit count in `acc`.
    have: u32,
    /// Total bits consumed (drives the padding check).
    used: usize,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> BitReader<'a> {
        BitReader {
            buf,
            next: 0,
            acc: 0,
            have: 0,
            used: 0,
        }
    }

    /// Read `n` bits (`1 <= n <= 64`), MSB-first, as the low bits of a
    /// u64.
    fn read_bits(&mut self, n: u32) -> Option<u64> {
        if n > 57 {
            // Two halves keep `read_small`'s refill shifts in range.
            let hi = self.read_small(n - 32)?;
            let lo = self.read_small(32)?;
            return Some((hi << 32) | lo);
        }
        self.read_small(n)
    }

    /// Read `n <= 57` bits out of the accumulator, refilling in bulk
    /// where 8 source bytes remain and a byte at a time near the end
    /// of the stream. A bulk refill tops `have` up to at least 56, so
    /// the byte loop only runs near the stream's tail, where
    /// `have < n <= 57` keeps its `56 - have` shift in range.
    #[inline]
    fn read_small(&mut self, n: u32) -> Option<u64> {
        if self.have < n {
            self.refill_bulk();
            while self.have < n {
                let byte = *self.buf.get(self.next)?;
                self.next += 1;
                self.acc |= u64::from(byte) << (56 - self.have);
                self.have += 8;
            }
        }
        let out = self.acc >> (64 - n);
        self.acc <<= n;
        self.have -= n;
        self.used += n as usize;
        Some(out)
    }

    /// Buffer as many stream bits as fit (at least 57 unless the
    /// stream itself ends sooner), so callers can branch on `peek` /
    /// `consume` without per-read refill checks. Afterwards either
    /// `have >= 57` or every remaining stream byte is in `acc`.
    #[inline]
    fn ensure(&mut self) {
        if self.have < 57 {
            self.refill_bulk();
            while self.have <= 56 {
                let Some(&byte) = self.buf.get(self.next) else {
                    break;
                };
                self.next += 1;
                self.acc |= u64::from(byte) << (56 - self.have);
                self.have += 8;
            }
        }
    }

    /// The top `n` buffered bits (callers check `have >= n` first).
    #[inline]
    fn peek(&self, n: u32) -> u64 {
        self.acc >> (64 - n)
    }

    /// Drop `n` buffered bits (callers check `have >= n` first;
    /// `n < 64`).
    #[inline]
    fn consume(&mut self, n: u32) {
        self.acc <<= n;
        self.have -= n;
        self.used += n as usize;
    }

    /// Top up the accumulator from one 8-byte load, committing only
    /// the whole bytes that fit. Bits of `acc` below the committed
    /// `have` region receive a *prefix of not-yet-committed stream
    /// bytes*; the next refill ORs those same bytes again
    /// (idempotent), and `peek`/`consume` only ever look at the top
    /// `have` bits, so no masking is needed. A no-op when fewer than
    /// 8 bytes remain (the caller's byte loop finishes up, restoring
    /// the zero-low-bits invariant it relies on). Called with
    /// `have <= 56`.
    #[inline]
    fn refill_bulk(&mut self) {
        let Some(&chunk) = self.buf.get(self.next..).and_then(|s| s.first_chunk::<8>()) else {
            return;
        };
        self.acc |= u64::from_be_bytes(chunk) >> self.have;
        let bytes = (63 - self.have) / 8;
        self.next += bytes as usize;
        self.have += bytes * 8;
    }

    /// Bits left over in the final partial byte, which must be zero
    /// padding: `false` means a non-zero pad bit (corruption).
    fn padding_is_zero(&self) -> bool {
        let pad = self.buf.len() * 8 - self.used;
        if pad == 0 {
            return true;
        }
        match self.buf.last() {
            Some(last) => pad < 8 && last & ((1u8 << pad) - 1) == 0,
            None => false,
        }
    }
}

/// Decode one `FXM3` chunk payload (gap bitmap + compressed stream)
/// into `out` (cleared first). Accounting is exact: the stream must
/// end on the final value with only zero padding bits left, the bitmap
/// must agree with the recorded gap count, and decoded values must be
/// finite non-NaN — anything else is a typed error naming the chunk's
/// byte offset.
fn read_v3_payload(
    buf: &[u8],
    meta: &ChunkMeta,
    file: &str,
    out: &mut Vec<f64>,
) -> Result<(), FrameError> {
    let chunk_err = |what: &str| {
        codec_err(
            file,
            format!("chunk at byte offset {}: {what}", meta.offset),
        )
    };
    out.clear();
    out.reserve(meta.len);
    let bitmap_len = meta.len.div_ceil(8);
    let bitmap_at = meta.offset + V2_CHUNK_HEADER_LEN;
    let stream_at = bitmap_at + bitmap_len;
    let stream_end = bitmap_at + meta.payload_bytes;
    // The extent was validated against the footer at open; a miss here
    // means the directory itself is inconsistent.
    let (Some(bitmap), Some(stream)) = (
        buf.get(bitmap_at..stream_at),
        buf.get(stream_at..stream_end),
    ) else {
        return Err(chunk_err("payload extends past the buffer"));
    };
    let gaps: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
    let recorded = meta.stats.map_or(0, |s| s.gaps as usize);
    if gaps != recorded {
        return Err(chunk_err(
            "gap bitmap disagrees with the recorded gap count",
        ));
    }
    // Padding bits past `len` in the final bitmap byte must be zero —
    // they are not intervals, so any set bit is corruption (and would
    // otherwise double-count in the popcount above).
    if !meta.len.is_multiple_of(8) {
        let last = bitmap.last().copied().unwrap_or(0);
        if last & !((1u16 << (meta.len % 8)) - 1) as u8 != 0 {
            return Err(chunk_err("gap bitmap sets bits past the chunk length"));
        }
    }
    let mut r = BitReader::new(stream);
    // Current reuse window; `w_ml == 0` means none defined yet (a
    // real window always has `meaningful >= 1`).
    let mut w_lead = 0u32;
    let mut w_ml = 0u32;
    // An all-ones exponent is ±∞ (zero mantissa) or a NaN outside
    // the gap bitmap — corruption either way, told apart cold.
    const EXP_ALL: u64 = 0x7ff0_0000_0000_0000;
    let non_finite = |bits: u64| {
        chunk_err(if bits & !(EXP_ALL | (1 << 63)) == 0 {
            "infinite value in chunk payload"
        } else {
            "NaN payload outside the gap bitmap"
        })
    };
    // Prologue: leading gaps, then the first observed value (64 raw
    // bits) — so the main loop carries `prev` as a plain u64.
    let gap_at = |i: usize| bitmap.get(i / 8).is_some_and(|b| b >> (i % 8) & 1 == 1);
    let mut i = 0;
    while i < meta.len && gap_at(i) {
        out.push(f64::from_bits(GAP_BITS));
        i += 1;
    }
    let mut p = 0u64;
    if i < meta.len {
        p = r
            .read_bits(64)
            .ok_or_else(|| chunk_err("compressed stream ends inside a value"))?;
        if p & EXP_ALL == EXP_ALL {
            return Err(non_finite(p));
        }
        out.push(f64::from_bits(p));
        i += 1;
    }
    while i < meta.len {
        // One cached bitmap byte per 8 values keeps the per-value gap
        // test a register shift.
        let bm = bitmap.get(i / 8).copied().unwrap_or(0);
        let hi = (i / 8 * 8 + 8).min(meta.len);
        let mut bit = (i % 8) as u32;
        while i < hi {
            if bm >> bit & 1 == 1 {
                out.push(f64::from_bits(GAP_BITS));
                i += 1;
                bit += 1;
                continue;
            }
            // Branch on buffered bits directly: one `ensure` per
            // value replaces a refill-checked read per field, and the
            // payload comes straight out of the accumulator when it
            // is already buffered.
            r.ensure();
            if r.have == 0 {
                return Err(chunk_err("compressed stream ends inside a value"));
            }
            if r.peek(1) == 0 {
                r.consume(1);
            } else {
                if r.have < 2 {
                    return Err(chunk_err("compressed stream ends inside a value"));
                }
                let (lead, meaningful);
                if r.peek(2) & 1 == 0 {
                    if w_ml == 0 {
                        return Err(chunk_err(
                            "compressed stream re-uses a window before defining one",
                        ));
                    }
                    lead = w_lead;
                    meaningful = w_ml;
                    r.consume(2);
                } else {
                    // Both 6-bit window fields ride the control bits
                    // in one 14-bit consume: lead in the high half,
                    // meaningful−1 in the low half (the stream is
                    // MSB-first).
                    let lead_ml = if r.have >= 14 {
                        let f = r.peek(14) & 0xfff;
                        r.consume(14);
                        f
                    } else {
                        r.consume(2);
                        r.read_bits(12)
                            .ok_or_else(|| chunk_err("compressed stream ends inside a window"))?
                    };
                    lead = (lead_ml >> 6) as u32;
                    meaningful = (lead_ml & 0x3f) as u32 + 1;
                    if lead + meaningful > 64 {
                        return Err(chunk_err("compressed window overruns 64 bits"));
                    }
                    w_lead = lead;
                    w_ml = meaningful;
                    r.ensure();
                }
                // Fast path: the whole payload is buffered (and
                // `consume`'s shift stays in range). `ensure` above
                // keeps this the common case; the fallback only runs
                // near the stream's tail or for 58–64 meaningful
                // bits.
                let payload = if meaningful < 64 && r.have >= meaningful {
                    let v = r.peek(meaningful);
                    r.consume(meaningful);
                    v
                } else {
                    r.read_bits(meaningful)
                        .ok_or_else(|| chunk_err("compressed stream ends inside a value"))?
                };
                p ^= payload << (64 - lead - meaningful);
            }
            if p & EXP_ALL == EXP_ALL {
                return Err(non_finite(p));
            }
            out.push(f64::from_bits(p));
            i += 1;
            bit += 1;
        }
    }
    // Exact accounting: the stream must hold exactly the bits decoded,
    // rounded up to whole bytes, with zero padding — slack bytes or
    // set padding bits mean the frame lies about its contents.
    if stream.len() != r.used.div_ceil(8) || !r.padding_is_zero() {
        return Err(chunk_err("slack bytes after the compressed stream"));
    }
    Ok(())
}

fn virtual_chunks(header: &FrameHeader) -> Vec<ChunkMeta> {
    (0..header.chunk_count())
        .map(|c| {
            let first = c * header.chunk_len;
            ChunkMeta {
                first,
                len: header.chunk_len.min(header.len - first),
                stats: None,
                offset: 0,
                payload_bytes: 0,
            }
        })
        .collect()
}

/// Decode a full measured series from a binary frame buffer (either
/// version). `file` names the source in errors. Works on the borrowed
/// buffer directly — no copy of the input is made.
pub fn decode(buf: &[u8], file: &str) -> Result<MeasuredSeries, FrameError> {
    let (header, version) = decode_header(buf, file)?;
    let chunks = match version {
        FxmVersion::V1 => return Frame::open_v1(buf, header, file)?.into_measured(),
        FxmVersion::V2 => parse_v2_chunks(buf, &header, file)?,
        FxmVersion::V3 => parse_v3_chunks(buf, &header, file)?,
    };
    let mut values = Vec::with_capacity(header.len);
    let mut scratch = Vec::new();
    for meta in &chunks {
        match version {
            FxmVersion::V2 => read_v2_payload(buf, meta, file, &mut scratch)?,
            _ => read_v3_payload(buf, meta, file, &mut scratch)?,
        }
        values.extend_from_slice(&scratch);
    }
    MeasuredSeries::new(header.start, header.resolution, values).map_err(|e| match e {
        SeriesError::UnalignedStart => codec_err(file, "unaligned start"),
        other => FrameError::Series(other),
    })
}

/// Cold-open a frame file with one buffered sequential read.
///
/// The whole file — header, chunk frames, statistics block and footer
/// — lands in a single pre-sized read, so a cold open costs one IO
/// round-trip instead of a seek per chunk header (the footer index
/// then resolves chunk placement from memory). This is the read-ahead
/// path every store-level open funnels through; `BENCH_pipeline.json`'s
/// `cold_open` stages measure it against a seek-per-chunk reader.
pub fn open_file(path: &std::path::Path) -> Result<Frame, FrameError> {
    use std::io::Read as _;
    let display = path.display().to_string();
    let mut f =
        std::fs::File::open(path).map_err(|e| codec_err(&display, format!("open failed: {e}")))?;
    let size = f.metadata().map(|m| m.len() as usize).unwrap_or(0);
    let mut raw = Vec::with_capacity(size);
    f.read_to_end(&mut raw)
        .map_err(|e| codec_err(&display, format!("read failed: {e}")))?;
    Frame::from_fxm_bytes(Bytes::from(raw), &display)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn sample() -> MeasuredSeries {
        MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.25, f64::NAN, 0.75, 1.0, f64::NAN],
        )
        .unwrap()
    }

    fn assert_series_eq(a: &MeasuredSeries, b: &MeasuredSeries) {
        assert_eq!(a.start(), b.start());
        assert_eq!(a.resolution(), b.resolution());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!(x.is_nan() == y.is_nan());
            if !x.is_nan() {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn v2_round_trip_preserves_gaps() {
        let m = sample();
        let bytes = encode(&m);
        assert_eq!(sniff(&bytes), Some(FxmVersion::V2));
        let back = decode(&bytes, "t.fxm").unwrap();
        assert_eq!(back.gap_count(), 2);
        assert_series_eq(&back, &m);
    }

    #[test]
    fn v1_round_trip_preserves_gaps() {
        let m = sample();
        let bytes = encode_v1(&m);
        assert_eq!(sniff(&bytes), Some(FxmVersion::V1));
        let back = decode(&bytes, "t.fxm").unwrap();
        assert_series_eq(&back, &m);
    }

    #[test]
    fn v3_round_trip_preserves_gaps() {
        let m = sample();
        let bytes = encode_v3(&m);
        assert_eq!(sniff(&bytes), Some(FxmVersion::V3));
        let back = decode(&bytes, "t.fxm").unwrap();
        assert_eq!(back.gap_count(), 2);
        assert_series_eq(&back, &m);
        // The lazy open decodes chunk by chunk to the same answer.
        let frame = Frame::from_fxm_bytes(encode_v3(&m), "t.fxm").unwrap();
        assert_eq!(frame.kind(), FrameKind::FxmV3);
        assert_eq!(frame.disk_bytes(), bytes.len());
        assert_series_eq(&frame.decode().unwrap(), &m);
    }

    #[test]
    fn v3_round_trip_is_bit_exact_on_adversarial_values() {
        // Signed zeros, subnormals, huge magnitudes, long constant
        // runs and NaN-gap patterns — the XOR stream and gap bitmap
        // must reproduce every observed bit pattern exactly.
        let mut values = vec![
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            f64::from_bits(1), // smallest subnormal
            -f64::from_bits(1),
            f64::MAX,
            -f64::MAX,
            1.0,
            1.0 + f64::EPSILON,
            f64::NAN,
            f64::NAN,
            1e-300,
            -1e300,
        ];
        values.extend(std::iter::repeat_n(0.25, 200)); // constant run
        values.extend((0..100).map(|i| {
            if i % 3 == 0 {
                f64::NAN
            } else {
                i as f64 * 1e-5
            }
        }));
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_1, values).unwrap();
        for chunk_len in [1, 7, 96, 1000] {
            let v3 = encode_chunked_v3(&m, chunk_len).unwrap();
            let back = decode(&v3, "t.fxm").unwrap();
            assert_series_eq(&back, &m);
            // And the FXM3 decode is bit-exact to the FXM2 decode of
            // the same series — the codecs are interchangeable.
            let v2 = decode(&encode_chunked(&m, chunk_len).unwrap(), "t.fxm").unwrap();
            assert_series_eq(&back, &v2);
        }
    }

    #[test]
    fn v3_compresses_smooth_series_and_keeps_stats() {
        // A realistic quantized meter feed (1 Wh register steps that
        // plateau for minutes at a time — the regime the dataset
        // layer's `quantize_kwh` degradation produces): FXM3 must be
        // markedly smaller than FXM2's fixed 8 bytes per interval,
        // with identical chunk statistics behind the same 32-byte
        // header.
        let values: Vec<f64> = (0..2880)
            .map(|i| {
                if i % 97 == 0 {
                    f64::NAN
                } else {
                    let level = [3, 4, 4, 3, 7, 12, 6, 4][(i / 24) % 8] + (i * 31) % 13 / 11;
                    level as f64 * 0.001
                }
            })
            .collect();
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_1, values).unwrap();
        let v2 = encode(&m);
        let v3 = encode_v3(&m);
        assert!(
            v3.len() * 2 < v2.len(),
            "expected ≥2× compression, got {} vs {}",
            v3.len(),
            v2.len()
        );
        let f2 = Frame::from_fxm_bytes(v2, "t.fxm").unwrap();
        let f3 = Frame::from_fxm_bytes(v3, "t.fxm").unwrap();
        assert_eq!(f2.chunks().len(), f3.chunks().len());
        for (a, b) in f2.chunks().iter().zip(f3.chunks()) {
            assert_eq!(a.stats, b.stats);
            assert!(b.payload_bytes() < a.payload_bytes());
        }
        assert_series_eq(&f2.decode().unwrap(), &f3.decode().unwrap());
    }

    #[test]
    fn encoding_is_deterministic_across_nan_payloads() {
        // A NaN produced by arithmetic may carry a different bit
        // pattern than f64::NAN; encoding canonicalises them.
        let arithmetic = f64::from_bits(0x7FF8_0000_0000_0001);
        assert!(arithmetic.is_nan());
        let a =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0, f64::NAN]).unwrap();
        let b = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0, arithmetic])
            .unwrap();
        assert_eq!(encode(&a), encode(&b));
        assert_eq!(encode_v1(&a), encode_v1(&b));
        assert_eq!(encode_v3(&a), encode_v3(&b));
    }

    #[test]
    fn zero_chunk_length_is_a_typed_error_not_a_clamp() {
        let m = sample();
        assert_eq!(encode_chunked(&m, 0), Err(FrameError::ZeroChunkLen));
        assert_eq!(encode_chunked_v1(&m, 0), Err(FrameError::ZeroChunkLen));
        assert_eq!(encode_chunked_v3(&m, 0), Err(FrameError::ZeroChunkLen));
        // 1 is the smallest valid chunk length and round-trips.
        let back = decode(&encode_chunked(&m, 1).unwrap(), "t.fxm").unwrap();
        assert_series_eq(&back, &m);
        let back = decode(&encode_chunked_v3(&m, 1).unwrap(), "t.fxm").unwrap();
        assert_series_eq(&back, &m);
    }

    #[test]
    fn v2_chunk_directory_carries_stats() {
        let values: Vec<f64> = (0..250)
            .map(|i| {
                if i % 10 == 3 {
                    f64::NAN
                } else {
                    i as f64 * 0.01
                }
            })
            .collect();
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_1, values).unwrap();
        let frame = Frame::from_fxm_bytes(encode_chunked(&m, 96).unwrap(), "t.fxm").unwrap();
        assert_eq!(frame.kind(), FrameKind::FxmV2);
        assert_eq!(frame.chunks().len(), 3);
        let lens: Vec<usize> = frame.chunks().iter().map(|c| c.len).collect();
        assert_eq!(lens, vec![96, 96, 58]);
        for meta in frame.chunks() {
            let stats = meta.stats.expect("v2 chunks carry stats");
            let recomputed =
                ChunkStats::from_values(&m.values()[meta.first..meta.first + meta.len]);
            assert_eq!(stats.gaps, recomputed.gaps);
            assert_eq!(stats.min.to_bits(), recomputed.min.to_bits());
            assert_eq!(stats.max.to_bits(), recomputed.max.to_bits());
            assert_eq!(stats.sum.to_bits(), recomputed.sum.to_bits());
        }
        assert_series_eq(&frame.decode().unwrap(), &m);
    }

    #[test]
    fn v1_trailing_garbage_is_a_typed_error_naming_the_offset() {
        let raw = encode_v1(&sample());
        let clean_len = raw.len();
        let mut long = raw.to_vec();
        long.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let err = decode(&long, "t.fxm").unwrap_err();
        assert_eq!(
            err,
            FrameError::TrailingBytes {
                file: "t.fxm".into(),
                offset: clean_len,
                trailing: 3,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains(&clean_len.to_string()), "{msg}");
        assert!(msg.contains("trailing"), "{msg}");
    }

    #[test]
    fn v2_trailing_garbage_and_slack_bytes_are_rejected() {
        let raw = encode(&sample());
        // Trailing garbage after the end marker.
        let mut long = raw.to_vec();
        long.push(0);
        let err = decode(&long, "t.fxm").unwrap_err();
        assert!(err.to_string().contains("end marker"), "{err}");
        // Truncation anywhere in the tail.
        assert!(decode(&raw[..raw.len() - 1], "t.fxm").is_err());
        assert!(decode(&raw[..HEADER_LEN + 3], "t.fxm").is_err());
    }

    #[test]
    fn rejects_malformed_buffers() {
        let raw = encode(&sample());
        assert!(matches!(
            decode(&raw[..10], "t.fxm"),
            Err(FrameError::Codec { .. })
        ));
        let mut bad_magic = raw.to_vec();
        bad_magic[0] = b'X';
        let err = decode(&bad_magic, "t.fxm").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Infinity in a v2 payload.
        let mut inf = raw.to_vec();
        let val_at = HEADER_LEN + V2_CHUNK_HEADER_LEN;
        inf[val_at..val_at + 8].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let frame = Frame::from_fxm_bytes(Bytes::from(inf), "t.fxm").unwrap();
        let err = frame.decode().unwrap_err();
        assert!(err.to_string().contains("infinite"), "{err}");
        // Truncated v1 payload.
        let v1 = encode_v1(&sample());
        assert!(matches!(
            decode(&v1[..v1.len() - 4], "t.fxm"),
            Err(FrameError::Codec { .. })
        ));
        // Infinity in a v1 payload.
        let mut inf = v1.to_vec();
        let val_at = HEADER_LEN + 4;
        inf[val_at..val_at + 8].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let err = decode(&inf, "t.fxm").unwrap_err();
        assert!(err.to_string().contains("infinite"), "{err}");
    }

    #[test]
    fn v2_rejects_corrupt_stats_and_offsets() {
        let raw = encode(&sample()).to_vec();
        // Corrupt the gap count of chunk 0 (offset HEADER_LEN + 4).
        let mut bad = raw.clone();
        bad[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&99u32.to_le_bytes());
        let err = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("gap count"), "{err}");
        // Corrupt the footer offset of chunk 0.
        let mut bad = raw.clone();
        let footer_at = raw.len() - V2_TAIL_LEN - 8;
        bad[footer_at..footer_at + 8].copy_from_slice(&7u64.to_le_bytes());
        let err = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
        // Non-finite statistics.
        let mut bad = raw;
        bad[HEADER_LEN + 8..HEADER_LEN + 16]
            .copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let err = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("statistics"), "{err}");
    }

    #[test]
    fn huge_declared_lengths_fail_without_allocating() {
        // A v1 header claiming u32::MAX-interval chunks with no payload
        // must produce a codec error, not a multi-GiB allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC_V1);
        buf.put_i64_le(0);
        buf.put_u32_le(15);
        buf.put_u64_le(u64::from(u32::MAX));
        buf.put_u32_le(u32::MAX);
        let err = decode(&buf.freeze(), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Same for a v2 header: the footer check trips first.
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC_V2);
        buf.put_i64_le(0);
        buf.put_u32_le(15);
        buf.put_u64_le(u64::from(u32::MAX));
        buf.put_u32_le(1);
        let err = decode(&buf.freeze(), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
        // The largest length the header check admits must not overflow
        // the footer-size arithmetic (chunks·8 + tail would wrap).
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC_V2);
        buf.put_i64_le(0);
        buf.put_u32_le(15);
        buf.put_u64_le((usize::MAX / 8) as u64);
        buf.put_u32_le(1);
        buf.put_slice(&[0u8; 16]); // some plausible-looking tail bytes
        let err = decode(&buf.freeze(), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
    }

    #[test]
    fn every_strict_truncation_is_a_typed_error_never_a_panic() {
        // Exhaustive: cutting a valid buffer anywhere must surface as
        // an Err — the byte accounting leaves no prefix that decodes.
        for raw in [
            encode(&sample()),
            encode_v1(&sample()),
            encode_v3(&sample()),
        ] {
            for cut in 0..raw.len() {
                assert!(
                    decode(&raw[..cut], "t.fxm").is_err(),
                    "truncation to {cut} of {} bytes decoded",
                    raw.len()
                );
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        // Flip every byte of a valid buffer in turn; each variant must
        // either decode or fail with a typed error — never abort.
        for raw in [
            encode(&sample()),
            encode_v1(&sample()),
            encode_v3(&sample()),
        ] {
            let raw = raw.to_vec();
            for i in 0..raw.len() {
                let mut bad = raw.clone();
                bad[i] ^= 0xFF;
                let _ = decode(&bad, "t.fxm");
            }
        }
    }

    #[test]
    fn chunk_index_out_of_range_is_a_typed_error() {
        let frame = Frame::from_fxm_bytes(encode(&sample()), "t.fxm").unwrap();
        let mut scratch = Vec::new();
        let err = frame.chunk_values(99, &mut scratch).unwrap_err();
        assert!(matches!(err, FrameError::Scan { .. }), "{err:?}");
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn materialized_frames_chunk_virtually() {
        let m = sample();
        let frame = Frame::from_measured(m.clone(), 2, "mem").unwrap();
        assert_eq!(frame.kind(), FrameKind::Materialized);
        assert_eq!(frame.chunks().len(), 3);
        assert!(frame.chunks().iter().all(|c| c.stats.is_none()));
        let mut scratch = Vec::new();
        assert_eq!(
            frame.chunk_values(1, &mut scratch).unwrap(),
            &m.values()[2..4]
        );
        assert_series_eq(&frame.decode().unwrap(), &m);
        assert!(matches!(
            Frame::from_measured(m, 0, "mem"),
            Err(FrameError::ZeroChunkLen)
        ));
    }

    #[test]
    fn empty_series_round_trip_all_versions() {
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![]).unwrap();
        for bytes in [encode(&m), encode_v1(&m), encode_v3(&m)] {
            let frame = Frame::from_fxm_bytes(bytes, "t.fxm").unwrap();
            assert_eq!(frame.chunks().len(), 0);
            assert_eq!(frame.decode().unwrap().len(), 0);
        }
    }

    #[test]
    fn v3_rejects_corrupt_bitmaps_streams_and_offsets() {
        let values: Vec<f64> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    f64::NAN
                } else {
                    0.1 + i as f64 * 0.003
                }
            })
            .collect();
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_1, values).unwrap();
        let raw = encode_chunked_v3(&m, 96).unwrap().to_vec();
        let bitmap_at = HEADER_LEN + V2_CHUNK_HEADER_LEN;

        // Flip a bitmap bit: popcount no longer matches the recorded
        // gap count — a typed error naming the chunk offset.
        let mut bad = raw.clone();
        bad[bitmap_at] ^= 0b10; // interval 1 is observed in chunk 0
        let err = decode(&bad, "t.fxm").unwrap_err();
        assert!(err.to_string().contains("gap bitmap"), "{err}");
        assert!(err.to_string().contains(&HEADER_LEN.to_string()), "{err}");

        // Corrupt the chunk-0 footer offset: the contiguity walk trips.
        let mut bad = raw.clone();
        let chunks = Frame::from_fxm_bytes(Bytes::from(raw.clone()), "t.fxm")
            .unwrap()
            .chunks()
            .len();
        let footer_at = raw.len() - V2_TAIL_LEN - chunks * 8;
        bad[footer_at..footer_at + 8].copy_from_slice(&7u64.to_le_bytes());
        let err = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");

        // Corrupt the recorded gap count (keeping it <= len): the
        // open-time stats either disagree with min/max or the decode
        // disagrees with the bitmap — an error either way.
        let mut bad = raw.clone();
        bad[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&2u32.to_le_bytes());
        assert!(decode(&bad, "t.fxm").is_err());

        // A stats-only open touches no payload even on FXM3: corrupt
        // every bitmap+stream byte of chunk 0 and the open still
        // succeeds (directory and stats parse fine); only the decode
        // of that chunk fails.
        let mut bad = raw.clone();
        let frame = Frame::from_fxm_bytes(Bytes::from(raw.clone()), "t.fxm").unwrap();
        let chunk1_off = HEADER_LEN + V2_CHUNK_HEADER_LEN + frame.chunks()[0].payload_bytes();
        for b in &mut bad[bitmap_at..chunk1_off] {
            *b = 0xFF;
        }
        let frame = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap();
        let mut scratch = Vec::new();
        assert!(frame.chunk_values(0, &mut scratch).is_err());
    }
}
