//! The chunked binary frame formats: legacy `FXM1` and stat-carrying
//! `FXM2`, plus the [`Frame`] reader that serves both (and materialized
//! in-memory series) behind one chunk-oriented interface.
//!
//! ## `FXM1` layout (all little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"FXM1"` |
//! | 4      | 8    | start (i64 minutes since flextract epoch) |
//! | 12     | 4    | resolution (u32 minutes) |
//! | 16     | 8    | total length (u64 interval count) |
//! | 24     | 4    | chunk length (u32 intervals per chunk) |
//! | 28     | …    | chunk frames `[u32 count][count × f64]` |
//!
//! ## `FXM2` layout (all little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"FXM2"` |
//! | 4      | 8    | start (i64 minutes since flextract epoch) |
//! | 12     | 4    | resolution (u32 minutes) |
//! | 16     | 8    | total length (u64 interval count) |
//! | 24     | 4    | chunk length (u32 intervals per chunk) |
//! | 28     | …    | chunk frames (see below) |
//! | F      | 8·C  | footer: absolute byte offset of each chunk frame |
//! | F+8·C  | 8    | `F` (absolute byte offset of the footer) |
//! | F+8·C+8| 4    | end magic `b"2MXF"` |
//!
//! Each `FXM2` chunk frame is
//! `[u32 count][u32 gap_count][f64 min][f64 max][f64 sum][count × f64]`:
//! a 32-byte statistics header followed by the raw IEEE-754 payload.
//! `count` equals the chunk length except for the final chunk. The
//! statistics cover the chunk's **observed** (non-gap) values; for an
//! all-gap chunk `min`/`max` carry the canonical gap payload.
//!
//! A reader seeks to the 12-byte tail, follows the footer to the chunk
//! offsets, and reads the 32-byte statistics headers without touching
//! any payload — which is what lets a [`Scan`](crate::scan::Scan) skip
//! whole chunks. Byte accounting is exact end to end: every slack or
//! trailing byte is a decode error, never silently ignored.
//!
//! Both formats carry gaps explicitly (every `NaN` is normalised to one
//! canonical bit pattern on encode, so encoding is a pure function of
//! the series) and round-trip bit-exactly.

use crate::stats::ChunkStats;
use crate::{FrameError, MeasuredSeries};
use bytes::{BufMut, Bytes, BytesMut};
use flextract_series::SeriesError;
use flextract_time::{Resolution, Timestamp};

/// Format magic of the legacy stat-less format.
pub const MAGIC_V1: [u8; 4] = *b"FXM1";

/// Format magic of the stat-carrying format.
pub const MAGIC_V2: [u8; 4] = *b"FXM2";

/// End marker closing an `FXM2` buffer (the magic, mirrored).
pub const END_MAGIC_V2: [u8; 4] = *b"2MXF";

/// Size in bytes of the fixed header (both versions).
pub const HEADER_LEN: usize = 28;

/// Size in bytes of an `FXM2` chunk-frame statistics header.
pub const V2_CHUNK_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Size in bytes of the `FXM2` tail (footer offset + end magic).
pub const V2_TAIL_LEN: usize = 8 + 4;

/// Default intervals per chunk: one 15-min day. Chosen so a chunk is a
/// few KiB — small enough to stream and skip, large enough that framing
/// overhead (4–32 bytes per chunk) is noise.
pub const DEFAULT_CHUNK_LEN: usize = 96;

/// The canonical gap payload: every `NaN` is normalised to this bit
/// pattern on encode, so encoding is a pure function of the series
/// (two equal series always encode to identical bytes).
const GAP_BITS: u64 = 0x7FF8_0000_0000_0000;

/// Which binary format a buffer carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FxmVersion {
    /// Legacy `FXM1`: chunk frames without statistics or footer.
    V1,
    /// `FXM2`: per-chunk statistics plus a footer chunk index.
    V2,
}

/// Identify the binary format of `bytes` by magic, if any.
pub fn sniff(bytes: &[u8]) -> Option<FxmVersion> {
    if bytes.starts_with(&MAGIC_V1) {
        Some(FxmVersion::V1)
    } else if bytes.starts_with(&MAGIC_V2) {
        Some(FxmVersion::V2)
    } else {
        None
    }
}

fn codec_err(file: &str, what: impl Into<String>) -> FrameError {
    FrameError::Codec {
        file: file.to_string(),
        what: what.into(),
    }
}

fn put_value(buf: &mut BytesMut, v: f64) {
    buf.put_u64_le(if v.is_nan() { GAP_BITS } else { v.to_bits() });
}

/// Encode a measured series as `FXM2` using
/// [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode(series: &MeasuredSeries) -> Bytes {
    encode_impl(series, DEFAULT_CHUNK_LEN)
}

/// Encode a measured series as `FXM2` with an explicit chunk length.
///
/// Errors with [`FrameError::ZeroChunkLen`] for `chunk_len == 0` — a
/// zero-interval chunk grid is undefined and is never silently
/// clamped.
pub fn encode_chunked(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, FrameError> {
    if chunk_len == 0 {
        return Err(FrameError::ZeroChunkLen);
    }
    Ok(encode_impl(series, chunk_len))
}

/// `FXM2` encoding over a validated (non-zero) chunk length.
fn encode_impl(series: &MeasuredSeries, chunk_len: usize) -> Bytes {
    let n = series.len();
    let chunks = n.div_ceil(chunk_len);
    let mut buf =
        BytesMut::with_capacity(HEADER_LEN + chunks * (V2_CHUNK_HEADER_LEN + 8) + 8 * n + 12);
    buf.put_slice(&MAGIC_V2);
    buf.put_i64_le(series.start().as_minutes());
    buf.put_u32_le(series.resolution().minutes() as u32);
    buf.put_u64_le(n as u64);
    buf.put_u32_le(chunk_len as u32);
    let mut offsets = Vec::with_capacity(chunks);
    for chunk in series.values().chunks(chunk_len) {
        offsets.push(buf.len() as u64);
        let stats = ChunkStats::from_values(chunk);
        buf.put_u32_le(chunk.len() as u32);
        buf.put_u32_le(stats.gaps);
        put_value(&mut buf, stats.min);
        put_value(&mut buf, stats.max);
        put_value(&mut buf, stats.sum);
        for &v in chunk {
            put_value(&mut buf, v);
        }
    }
    let footer = buf.len() as u64;
    for o in offsets {
        buf.put_u64_le(o);
    }
    buf.put_u64_le(footer);
    buf.put_slice(&END_MAGIC_V2);
    buf.freeze()
}

/// Encode a measured series as legacy `FXM1` using
/// [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode_v1(series: &MeasuredSeries) -> Bytes {
    encode_impl_v1(series, DEFAULT_CHUNK_LEN)
}

/// Encode a measured series as legacy `FXM1` with an explicit chunk
/// length (same [`FrameError::ZeroChunkLen`] contract as
/// [`encode_chunked`]).
pub fn encode_chunked_v1(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, FrameError> {
    if chunk_len == 0 {
        return Err(FrameError::ZeroChunkLen);
    }
    Ok(encode_impl_v1(series, chunk_len))
}

/// `FXM1` encoding over a validated (non-zero) chunk length.
fn encode_impl_v1(series: &MeasuredSeries, chunk_len: usize) -> Bytes {
    let n = series.len();
    let chunks = n.div_ceil(chunk_len);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 4 * chunks + 8 * n);
    buf.put_slice(&MAGIC_V1);
    buf.put_i64_le(series.start().as_minutes());
    buf.put_u32_le(series.resolution().minutes() as u32);
    buf.put_u64_le(n as u64);
    buf.put_u32_le(chunk_len as u32);
    for chunk in series.values().chunks(chunk_len) {
        buf.put_u32_le(chunk.len() as u32);
        for &v in chunk {
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Parsed fixed header (identical in both versions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// First instant covered by the series.
    pub start: Timestamp,
    /// Interval width.
    pub resolution: Resolution,
    /// Total interval count across all chunks.
    pub len: usize,
    /// Intervals per chunk (the final chunk may be shorter).
    pub chunk_len: usize,
}

impl FrameHeader {
    /// Number of chunks implied by `len` and `chunk_len`.
    pub fn chunk_count(&self) -> usize {
        self.len.div_ceil(self.chunk_len)
    }
}

/// One chunk's placement and (for `FXM2`) statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkMeta {
    /// Global index of the chunk's first interval.
    pub first: usize,
    /// Number of intervals in the chunk.
    pub len: usize,
    /// Statistics, when the format carries them (`FXM2` only).
    pub stats: Option<ChunkStats>,
    /// Absolute byte offset of the chunk frame (0 for materialized
    /// frames, which have no backing buffer).
    offset: usize,
}

/// How a [`Frame`] serves its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Lazy `FXM2`: chunks decode on demand, statistics are indexed.
    FxmV2,
    /// Legacy `FXM1`: fully decoded at open (no statistics to push
    /// down), chunks served from memory.
    FxmV1,
    /// An in-memory series (e.g. parsed from CSV) chunked virtually.
    Materialized,
}

/// A chunk-addressable view over one measured series.
///
/// `FXM2` buffers open lazily — the constructor reads only the header,
/// the footer index and the 32-byte per-chunk statistics headers;
/// payloads decode on demand through [`Frame::chunk_values`]. `FXM1`
/// and in-memory series degrade gracefully: they are materialized up
/// front and chunked virtually, so every scan still runs (it just
/// cannot skip decode work it has already paid for).
#[derive(Debug, Clone)]
pub struct Frame {
    file: String,
    header: FrameHeader,
    kind: FrameKind,
    /// The raw buffer (`FxmV2` only; empty otherwise).
    buf: Bytes,
    /// Materialized values (`FxmV1`/`Materialized` only; empty for v2).
    values: Vec<f64>,
    chunks: Vec<ChunkMeta>,
}

/// Take `N` bytes at `at`, or a [`FrameError::ShortRead`] naming the
/// offset if the buffer ends first. Every fixed-width read in the
/// decoder goes through here — on a truncated or crafted buffer the
/// failing offset surfaces as a typed error, never a panic.
fn read_array<const N: usize>(buf: &[u8], at: usize, file: &str) -> Result<[u8; N], FrameError> {
    at.checked_add(N)
        .and_then(|end| buf.get(at..end))
        .and_then(|bytes| <[u8; N]>::try_from(bytes).ok())
        .ok_or_else(|| FrameError::ShortRead {
            file: file.to_string(),
            offset: at,
            needed: N,
            len: buf.len(),
        })
}

fn read_u32(buf: &[u8], at: usize, file: &str) -> Result<u32, FrameError> {
    Ok(u32::from_le_bytes(read_array(buf, at, file)?))
}

fn read_u64(buf: &[u8], at: usize, file: &str) -> Result<u64, FrameError> {
    Ok(u64::from_le_bytes(read_array(buf, at, file)?))
}

fn read_f64(buf: &[u8], at: usize, file: &str) -> Result<f64, FrameError> {
    Ok(f64::from_bits(read_u64(buf, at, file)?))
}

/// Decode the fixed header shared by both versions, returning the
/// version alongside.
pub fn decode_header(buf: &[u8], file: &str) -> Result<(FrameHeader, FxmVersion), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(codec_err(file, "buffer shorter than header"));
    }
    let version = sniff(buf).ok_or_else(|| codec_err(file, "bad magic (expected FXM1 or FXM2)"))?;
    let start = Timestamp::from_minutes(read_u64(buf, 4, file)? as i64);
    let resolution = Resolution::from_minutes(read_u32(buf, 12, file)? as i64)
        .map_err(|_| codec_err(file, "invalid resolution"))?;
    if !start.is_aligned(resolution) {
        return Err(codec_err(file, "unaligned start"));
    }
    let len = read_u64(buf, 16, file)?;
    if len > (usize::MAX / 8) as u64 {
        return Err(codec_err(file, "length overflow"));
    }
    let chunk_len = read_u32(buf, 24, file)? as usize;
    if chunk_len == 0 {
        return Err(codec_err(file, "zero chunk length"));
    }
    Ok((
        FrameHeader {
            start,
            resolution,
            len: len as usize,
            chunk_len,
        },
        version,
    ))
}

impl Frame {
    /// Open a binary frame buffer (either version). `file` names the
    /// source in errors.
    pub fn from_fxm_bytes(bytes: Bytes, file: &str) -> Result<Frame, FrameError> {
        let (header, version) = decode_header(&bytes, file)?;
        match version {
            FxmVersion::V2 => Self::open_v2(bytes, header, file),
            FxmVersion::V1 => Self::open_v1(&bytes, header, file),
        }
    }

    /// Wrap an already-materialized series as a virtually chunked
    /// frame (the CSV path). Statistics are not computed — the decode
    /// cost has already been paid, so there is nothing left to skip.
    pub fn from_measured(
        series: MeasuredSeries,
        chunk_len: usize,
        file: &str,
    ) -> Result<Frame, FrameError> {
        if chunk_len == 0 {
            return Err(FrameError::ZeroChunkLen);
        }
        let header = FrameHeader {
            start: series.start(),
            resolution: series.resolution(),
            len: series.len(),
            chunk_len,
        };
        Ok(Frame {
            file: file.to_string(),
            chunks: virtual_chunks(&header),
            header,
            kind: FrameKind::Materialized,
            buf: Bytes::new(),
            values: series.into_values(),
        })
    }

    fn open_v2(bytes: Bytes, header: FrameHeader, file: &str) -> Result<Frame, FrameError> {
        let chunks = parse_v2_chunks(&bytes, &header, file)?;
        Ok(Frame {
            file: file.to_string(),
            header,
            kind: FrameKind::FxmV2,
            buf: bytes,
            values: Vec::new(),
            chunks,
        })
    }
    fn open_v1(buf: &[u8], header: FrameHeader, file: &str) -> Result<Frame, FrameError> {
        // Sequential decode: v1 has no footer, so the only way to find
        // chunk boundaries is to walk them — a full decode.
        // The header's chunk_len is attacker-controlled; cap the
        // upfront allocation by what the buffer could actually hold so
        // a corrupt file yields a codec error, not a huge allocation.
        let mut values = Vec::with_capacity(header.len.min(buf.len() / 8));
        let mut at = HEADER_LEN;
        while values.len() < header.len {
            let expected = header.chunk_len.min(header.len - values.len());
            if at + 4 > buf.len() {
                return Err(codec_err(file, "truncated chunk frame"));
            }
            let count = read_u32(buf, at, file)? as usize;
            if count != expected {
                return Err(codec_err(file, "chunk count disagrees with header"));
            }
            at += 4;
            if at + count * 8 > buf.len() {
                return Err(codec_err(file, "truncated chunk payload"));
            }
            for _ in 0..count {
                let v = read_f64(buf, at, file)?;
                if v.is_infinite() {
                    return Err(codec_err(file, "infinite value in chunk payload"));
                }
                values.push(v);
                at += 8;
            }
        }
        if at < buf.len() {
            return Err(FrameError::TrailingBytes {
                file: file.to_string(),
                offset: at,
                trailing: buf.len() - at,
            });
        }
        Ok(Frame {
            file: file.to_string(),
            chunks: virtual_chunks(&header),
            header,
            kind: FrameKind::FxmV1,
            buf: Bytes::new(),
            values,
        })
    }

    /// The fixed header.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// How this frame serves its chunks.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The source file (or buffer label), for error context.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The chunk directory, in interval order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// The values of chunk `i`, decoding on demand for lazy frames.
    /// `scratch` is the decode buffer (reused across calls); the
    /// returned slice borrows either `scratch` or the frame itself.
    ///
    /// A chunk index past the directory is a [`FrameError::Scan`], not
    /// a panic.
    pub fn chunk_values<'a>(
        &'a self,
        i: usize,
        scratch: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], FrameError> {
        let meta = self.chunks.get(i).ok_or_else(|| FrameError::Scan {
            what: format!(
                "chunk index {i} out of range ({} chunks)",
                self.chunks.len()
            ),
        })?;
        match self.kind {
            FrameKind::FxmV1 | FrameKind::Materialized => self
                .values
                .get(meta.first..meta.first + meta.len)
                .ok_or_else(|| {
                    codec_err(
                        &self.file,
                        format!("chunk {i} extends past the materialized values"),
                    )
                }),
            FrameKind::FxmV2 => {
                read_v2_payload(&self.buf, meta, &self.file, scratch)?;
                Ok(scratch.as_slice())
            }
        }
    }

    /// Fully decode the frame into a measured series.
    pub fn decode(&self) -> Result<MeasuredSeries, FrameError> {
        let mut values = Vec::with_capacity(self.header.len);
        let mut scratch = Vec::new();
        for i in 0..self.chunks.len() {
            values.extend_from_slice(self.chunk_values(i, &mut scratch)?);
        }
        MeasuredSeries::new(self.header.start, self.header.resolution, values).map_err(
            |e| match e {
                SeriesError::UnalignedStart => codec_err(&self.file, "unaligned start"),
                other => FrameError::Series(other),
            },
        )
    }

    /// Consume the frame into a fully decoded measured series —
    /// already-materialized frames move their values instead of
    /// copying.
    pub fn into_measured(self) -> Result<MeasuredSeries, FrameError> {
        match self.kind {
            FrameKind::FxmV2 => self.decode(),
            FrameKind::FxmV1 | FrameKind::Materialized => {
                MeasuredSeries::new(self.header.start, self.header.resolution, self.values).map_err(
                    |e| match e {
                        SeriesError::UnalignedStart => codec_err(&self.file, "unaligned start"),
                        other => FrameError::Series(other),
                    },
                )
            }
        }
    }
}

/// Parse an `FXM2` buffer's footer index and per-chunk statistics
/// headers into the chunk directory, enforcing exact byte accounting
/// (no payload is decoded). All size arithmetic is bounded by the
/// buffer length *before* it happens, so a crafted header yields a
/// codec error, never an overflow or a huge allocation.
fn parse_v2_chunks(
    buf: &[u8],
    header: &FrameHeader,
    file: &str,
) -> Result<Vec<ChunkMeta>, FrameError> {
    let chunks = header.chunk_count();
    // Bound the declared chunk count by what the buffer could hold
    // before any multiplication: each chunk needs 8 footer bytes.
    let avail = buf.len().saturating_sub(HEADER_LEN + V2_TAIL_LEN);
    if chunks > avail / 8 {
        return Err(codec_err(file, "buffer shorter than footer"));
    }
    let footer_len = chunks * 8 + V2_TAIL_LEN;
    let end_magic: [u8; 4] = read_array(buf, buf.len().saturating_sub(4), file)?;
    if end_magic != END_MAGIC_V2 {
        return Err(codec_err(
            file,
            "missing FXM2 end marker (truncated buffer or trailing bytes)",
        ));
    }
    let tail_at = buf
        .len()
        .checked_sub(V2_TAIL_LEN)
        .ok_or_else(|| codec_err(file, "buffer shorter than the FXM2 tail"))?;
    let footer_off = read_u64(buf, tail_at, file)?;
    let expected_footer = (buf.len() - footer_len) as u64;
    if footer_off != expected_footer {
        return Err(codec_err(
            file,
            format!(
                "footer offset {footer_off} does not line up with the chunk index \
                 (expected {expected_footer}; truncated buffer or trailing bytes)"
            ),
        ));
    }
    let mut metas: Vec<ChunkMeta> = Vec::with_capacity(chunks);
    let mut expected_off = HEADER_LEN as u64;
    for c in 0..chunks {
        let off = read_u64(buf, footer_off as usize + c * 8, file)?;
        if off != expected_off {
            return Err(codec_err(
                file,
                format!("chunk {c} offset {off} disagrees with the frame layout"),
            ));
        }
        let first = c * header.chunk_len;
        let len = header.chunk_len.min(header.len - first);
        // `off` equals `expected_off`, which grows contiguously and is
        // re-checked against `footer_off` below, so `at` is in range.
        let at = off as usize;
        if at + V2_CHUNK_HEADER_LEN + len * 8 > footer_off as usize {
            return Err(codec_err(file, "truncated chunk frame"));
        }
        let count = read_u32(buf, at, file)? as usize;
        if count != len {
            return Err(codec_err(file, "chunk count disagrees with header"));
        }
        let gaps = read_u32(buf, at + 4, file)?;
        if gaps as usize > len {
            return Err(codec_err(file, "chunk gap count exceeds chunk length"));
        }
        let min = read_f64(buf, at + 8, file)?;
        let max = read_f64(buf, at + 16, file)?;
        let sum = read_f64(buf, at + 24, file)?;
        if min.is_infinite() || max.is_infinite() || !sum.is_finite() {
            return Err(codec_err(file, "non-finite chunk statistics"));
        }
        if (gaps as usize == len) != (min.is_nan() || max.is_nan()) {
            return Err(codec_err(
                file,
                "chunk statistics disagree with the gap count",
            ));
        }
        metas.push(ChunkMeta {
            first,
            len,
            stats: Some(ChunkStats {
                gaps,
                min,
                max,
                sum,
            }),
            offset: at,
        });
        expected_off = (at + V2_CHUNK_HEADER_LEN + len * 8) as u64;
    }
    if expected_off != footer_off {
        return Err(codec_err(
            file,
            "slack bytes between the final chunk and the footer",
        ));
    }
    Ok(metas)
}

/// Decode one `FXM2` chunk payload into `out` (cleared first).
fn read_v2_payload(
    buf: &[u8],
    meta: &ChunkMeta,
    file: &str,
    out: &mut Vec<f64>,
) -> Result<(), FrameError> {
    out.clear();
    out.reserve(meta.len);
    let mut at = meta.offset + V2_CHUNK_HEADER_LEN;
    for _ in 0..meta.len {
        let v = read_f64(buf, at, file)?;
        if v.is_infinite() {
            return Err(codec_err(file, "infinite value in chunk payload"));
        }
        out.push(v);
        at += 8;
    }
    Ok(())
}

fn virtual_chunks(header: &FrameHeader) -> Vec<ChunkMeta> {
    (0..header.chunk_count())
        .map(|c| {
            let first = c * header.chunk_len;
            ChunkMeta {
                first,
                len: header.chunk_len.min(header.len - first),
                stats: None,
                offset: 0,
            }
        })
        .collect()
}

/// Decode a full measured series from a binary frame buffer (either
/// version). `file` names the source in errors. Works on the borrowed
/// buffer directly — no copy of the input is made.
pub fn decode(buf: &[u8], file: &str) -> Result<MeasuredSeries, FrameError> {
    let (header, version) = decode_header(buf, file)?;
    let frame = match version {
        FxmVersion::V1 => Frame::open_v1(buf, header, file)?,
        FxmVersion::V2 => {
            let chunks = parse_v2_chunks(buf, &header, file)?;
            let mut values = Vec::with_capacity(header.len);
            let mut scratch = Vec::new();
            for meta in &chunks {
                read_v2_payload(buf, meta, file, &mut scratch)?;
                values.extend_from_slice(&scratch);
            }
            return MeasuredSeries::new(header.start, header.resolution, values).map_err(
                |e| match e {
                    SeriesError::UnalignedStart => codec_err(file, "unaligned start"),
                    other => FrameError::Series(other),
                },
            );
        }
    };
    frame.into_measured()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn sample() -> MeasuredSeries {
        MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.25, f64::NAN, 0.75, 1.0, f64::NAN],
        )
        .unwrap()
    }

    fn assert_series_eq(a: &MeasuredSeries, b: &MeasuredSeries) {
        assert_eq!(a.start(), b.start());
        assert_eq!(a.resolution(), b.resolution());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!(x.is_nan() == y.is_nan());
            if !x.is_nan() {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn v2_round_trip_preserves_gaps() {
        let m = sample();
        let bytes = encode(&m);
        assert_eq!(sniff(&bytes), Some(FxmVersion::V2));
        let back = decode(&bytes, "t.fxm").unwrap();
        assert_eq!(back.gap_count(), 2);
        assert_series_eq(&back, &m);
    }

    #[test]
    fn v1_round_trip_preserves_gaps() {
        let m = sample();
        let bytes = encode_v1(&m);
        assert_eq!(sniff(&bytes), Some(FxmVersion::V1));
        let back = decode(&bytes, "t.fxm").unwrap();
        assert_series_eq(&back, &m);
    }

    #[test]
    fn encoding_is_deterministic_across_nan_payloads() {
        // A NaN produced by arithmetic may carry a different bit
        // pattern than f64::NAN; encoding canonicalises them.
        let arithmetic = f64::from_bits(0x7FF8_0000_0000_0001);
        assert!(arithmetic.is_nan());
        let a =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0, f64::NAN]).unwrap();
        let b = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0, arithmetic])
            .unwrap();
        assert_eq!(encode(&a), encode(&b));
        assert_eq!(encode_v1(&a), encode_v1(&b));
    }

    #[test]
    fn zero_chunk_length_is_a_typed_error_not_a_clamp() {
        let m = sample();
        assert_eq!(encode_chunked(&m, 0), Err(FrameError::ZeroChunkLen));
        assert_eq!(encode_chunked_v1(&m, 0), Err(FrameError::ZeroChunkLen));
        // 1 is the smallest valid chunk length and round-trips.
        let back = decode(&encode_chunked(&m, 1).unwrap(), "t.fxm").unwrap();
        assert_series_eq(&back, &m);
    }

    #[test]
    fn v2_chunk_directory_carries_stats() {
        let values: Vec<f64> = (0..250)
            .map(|i| {
                if i % 10 == 3 {
                    f64::NAN
                } else {
                    i as f64 * 0.01
                }
            })
            .collect();
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_1, values).unwrap();
        let frame = Frame::from_fxm_bytes(encode_chunked(&m, 96).unwrap(), "t.fxm").unwrap();
        assert_eq!(frame.kind(), FrameKind::FxmV2);
        assert_eq!(frame.chunks().len(), 3);
        let lens: Vec<usize> = frame.chunks().iter().map(|c| c.len).collect();
        assert_eq!(lens, vec![96, 96, 58]);
        for meta in frame.chunks() {
            let stats = meta.stats.expect("v2 chunks carry stats");
            let recomputed =
                ChunkStats::from_values(&m.values()[meta.first..meta.first + meta.len]);
            assert_eq!(stats.gaps, recomputed.gaps);
            assert_eq!(stats.min.to_bits(), recomputed.min.to_bits());
            assert_eq!(stats.max.to_bits(), recomputed.max.to_bits());
            assert_eq!(stats.sum.to_bits(), recomputed.sum.to_bits());
        }
        assert_series_eq(&frame.decode().unwrap(), &m);
    }

    #[test]
    fn v1_trailing_garbage_is_a_typed_error_naming_the_offset() {
        let raw = encode_v1(&sample());
        let clean_len = raw.len();
        let mut long = raw.to_vec();
        long.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let err = decode(&long, "t.fxm").unwrap_err();
        assert_eq!(
            err,
            FrameError::TrailingBytes {
                file: "t.fxm".into(),
                offset: clean_len,
                trailing: 3,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains(&clean_len.to_string()), "{msg}");
        assert!(msg.contains("trailing"), "{msg}");
    }

    #[test]
    fn v2_trailing_garbage_and_slack_bytes_are_rejected() {
        let raw = encode(&sample());
        // Trailing garbage after the end marker.
        let mut long = raw.to_vec();
        long.push(0);
        let err = decode(&long, "t.fxm").unwrap_err();
        assert!(err.to_string().contains("end marker"), "{err}");
        // Truncation anywhere in the tail.
        assert!(decode(&raw[..raw.len() - 1], "t.fxm").is_err());
        assert!(decode(&raw[..HEADER_LEN + 3], "t.fxm").is_err());
    }

    #[test]
    fn rejects_malformed_buffers() {
        let raw = encode(&sample());
        assert!(matches!(
            decode(&raw[..10], "t.fxm"),
            Err(FrameError::Codec { .. })
        ));
        let mut bad_magic = raw.to_vec();
        bad_magic[0] = b'X';
        let err = decode(&bad_magic, "t.fxm").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Infinity in a v2 payload.
        let mut inf = raw.to_vec();
        let val_at = HEADER_LEN + V2_CHUNK_HEADER_LEN;
        inf[val_at..val_at + 8].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let frame = Frame::from_fxm_bytes(Bytes::from(inf), "t.fxm").unwrap();
        let err = frame.decode().unwrap_err();
        assert!(err.to_string().contains("infinite"), "{err}");
        // Truncated v1 payload.
        let v1 = encode_v1(&sample());
        assert!(matches!(
            decode(&v1[..v1.len() - 4], "t.fxm"),
            Err(FrameError::Codec { .. })
        ));
        // Infinity in a v1 payload.
        let mut inf = v1.to_vec();
        let val_at = HEADER_LEN + 4;
        inf[val_at..val_at + 8].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let err = decode(&inf, "t.fxm").unwrap_err();
        assert!(err.to_string().contains("infinite"), "{err}");
    }

    #[test]
    fn v2_rejects_corrupt_stats_and_offsets() {
        let raw = encode(&sample()).to_vec();
        // Corrupt the gap count of chunk 0 (offset HEADER_LEN + 4).
        let mut bad = raw.clone();
        bad[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&99u32.to_le_bytes());
        let err = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("gap count"), "{err}");
        // Corrupt the footer offset of chunk 0.
        let mut bad = raw.clone();
        let footer_at = raw.len() - V2_TAIL_LEN - 8;
        bad[footer_at..footer_at + 8].copy_from_slice(&7u64.to_le_bytes());
        let err = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
        // Non-finite statistics.
        let mut bad = raw;
        bad[HEADER_LEN + 8..HEADER_LEN + 16]
            .copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let err = Frame::from_fxm_bytes(Bytes::from(bad), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("statistics"), "{err}");
    }

    #[test]
    fn huge_declared_lengths_fail_without_allocating() {
        // A v1 header claiming u32::MAX-interval chunks with no payload
        // must produce a codec error, not a multi-GiB allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC_V1);
        buf.put_i64_le(0);
        buf.put_u32_le(15);
        buf.put_u64_le(u64::from(u32::MAX));
        buf.put_u32_le(u32::MAX);
        let err = decode(&buf.freeze(), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Same for a v2 header: the footer check trips first.
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC_V2);
        buf.put_i64_le(0);
        buf.put_u32_le(15);
        buf.put_u64_le(u64::from(u32::MAX));
        buf.put_u32_le(1);
        let err = decode(&buf.freeze(), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
        // The largest length the header check admits must not overflow
        // the footer-size arithmetic (chunks·8 + tail would wrap).
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC_V2);
        buf.put_i64_le(0);
        buf.put_u32_le(15);
        buf.put_u64_le((usize::MAX / 8) as u64);
        buf.put_u32_le(1);
        buf.put_slice(&[0u8; 16]); // some plausible-looking tail bytes
        let err = decode(&buf.freeze(), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
    }

    #[test]
    fn every_strict_truncation_is_a_typed_error_never_a_panic() {
        // Exhaustive: cutting a valid buffer anywhere must surface as
        // an Err — the byte accounting leaves no prefix that decodes.
        for raw in [encode(&sample()), encode_v1(&sample())] {
            for cut in 0..raw.len() {
                assert!(
                    decode(&raw[..cut], "t.fxm").is_err(),
                    "truncation to {cut} of {} bytes decoded",
                    raw.len()
                );
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        // Flip every byte of a valid buffer in turn; each variant must
        // either decode or fail with a typed error — never abort.
        for raw in [encode(&sample()), encode_v1(&sample())] {
            let raw = raw.to_vec();
            for i in 0..raw.len() {
                let mut bad = raw.clone();
                bad[i] ^= 0xFF;
                let _ = decode(&bad, "t.fxm");
            }
        }
    }

    #[test]
    fn chunk_index_out_of_range_is_a_typed_error() {
        let frame = Frame::from_fxm_bytes(encode(&sample()), "t.fxm").unwrap();
        let mut scratch = Vec::new();
        let err = frame.chunk_values(99, &mut scratch).unwrap_err();
        assert!(matches!(err, FrameError::Scan { .. }), "{err:?}");
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn materialized_frames_chunk_virtually() {
        let m = sample();
        let frame = Frame::from_measured(m.clone(), 2, "mem").unwrap();
        assert_eq!(frame.kind(), FrameKind::Materialized);
        assert_eq!(frame.chunks().len(), 3);
        assert!(frame.chunks().iter().all(|c| c.stats.is_none()));
        let mut scratch = Vec::new();
        assert_eq!(
            frame.chunk_values(1, &mut scratch).unwrap(),
            &m.values()[2..4]
        );
        assert_series_eq(&frame.decode().unwrap(), &m);
        assert!(matches!(
            Frame::from_measured(m, 0, "mem"),
            Err(FrameError::ZeroChunkLen)
        ));
    }

    #[test]
    fn empty_series_round_trip_both_versions() {
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![]).unwrap();
        for bytes in [encode(&m), encode_v1(&m)] {
            let frame = Frame::from_fxm_bytes(bytes, "t.fxm").unwrap();
            assert_eq!(frame.chunks().len(), 0);
            assert_eq!(frame.decode().unwrap().len(), 0);
        }
    }
}
