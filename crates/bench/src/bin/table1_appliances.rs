//! E4 / Table 1: the appliance information catalog.
//!
//! Prints the paper's six published rows exactly, followed by the
//! extended catalog the simulator uses, and verifies that every load
//! profile integrates to its declared per-cycle energy range.

use flextract_appliance::Catalog;

fn main() {
    let table1 = Catalog::table1();
    println!("Table 1 — example of appliance information (the paper's six rows)\n");
    print!("{}", table1.render_table());

    for spec in table1.iter() {
        assert!(
            spec.profile_consistent(1e-9),
            "{} profile does not integrate to its declared range",
            spec.name
        );
    }
    println!("\nall declared energy ranges verified against profile integrals ✓");

    let extended = Catalog::extended();
    println!(
        "\nExtended catalog ({} rows; base-load appliances added for realistic simulation):\n",
        extended.len()
    );
    print!("{}", extended.render_table());
    println!(
        "\nshiftable (flexibility candidates): {}",
        extended
            .shiftable()
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "non-shiftable (base/comfort load): {}",
        extended
            .non_shiftable()
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
