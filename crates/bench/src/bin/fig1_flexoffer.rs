//! E1 / Figure 1: the anatomy of a flex-offer.
//!
//! Reconstructs the paper's example — "the flex-offer issued by the
//! owner of the electric vehicle … charging … should start between
//! 10 PM and 5 AM, the charging takes 2 hours in total, and it requires
//! 50 kWh to be fully charged" — and renders every annotated attribute.

use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_time::{Duration, Resolution, Timestamp};

fn main() {
    let ten_pm = Timestamp::from_ymd_hm(2013, 3, 18, 22, 0).expect("static date");
    let five_am = Timestamp::from_ymd_hm(2013, 3, 19, 5, 0).expect("static date");
    // 2 h of charging in 15-min slices; 50 kWh max with ~10 % headroom
    // below (the solid "minimum required energy" area of the figure).
    let per_slice = 50.0 / 8.0;
    let offer = FlexOffer::builder(1)
        .start_window(ten_pm, five_am)
        .slices(
            Resolution::MIN_15,
            vec![EnergyRange::new(per_slice * 0.9, per_slice).expect("static range"); 8],
        )
        .created_at(ten_pm - Duration::hours(12))
        .build()
        .expect("the Figure-1 offer is valid");

    println!("Figure 1 — example of a flex-offer\n");
    println!("{offer}\n");
    println!("earliest start time : {}   (10 PM)", offer.earliest_start());
    println!("latest start time   : {}   (5 AM)", offer.latest_start());
    println!("latest end time     : {}   (7 AM)", offer.latest_end());
    println!("start time flexibility : {}", offer.time_flexibility());
    println!(
        "profile duration       : {} ({} slices of {})",
        offer.profile().duration(),
        offer.profile().len(),
        offer.profile().resolution()
    );
    let total = offer.total_energy();
    println!(
        "total energy           : {:.1}-{:.1} kWh (max = the 50 kWh charge)",
        total.min, total.max
    );
    println!(
        "energy flexibility     : {:.1} kWh",
        offer.energy_flexibility()
    );
    println!("creation time          : {}", offer.creation_time());
    println!("acceptance deadline    : {}", offer.acceptance_deadline());
    println!("assignment deadline    : {}", offer.assignment_deadline());

    println!("\nprofile (kWh per 15-min slice; min=solid, max=dotted in the figure):");
    for (i, s) in offer.profile().slices().iter().enumerate() {
        let bar = "#".repeat((s.min * 4.0).round() as usize);
        let flex = "·".repeat(((s.max - s.min) * 4.0).round().max(1.0) as usize);
        println!("  slice {i}: {:5.2}-{:5.2}  {bar}{flex}", s.min, s.max);
    }

    assert_eq!(offer.time_flexibility(), Duration::hours(7));
    assert_eq!(offer.latest_end(), five_am + Duration::hours(2));
    assert!((offer.total_energy().max - 50.0).abs() < 1e-9);
    println!("\nall Figure-1 attributes verified ✓");
}
