//! E7: disaggregation accuracy vs series granularity (the paper's
//! closing caveat: 15-min data is insufficient for appliance-level
//! extraction).

use flextract_eval::experiments::{granularity, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        households: 20,
        days: 28,
        seed: 2013,
    };
    let study = granularity(params);
    print!("{}", study.render());
    println!("\n(20 households x 28 days; matched = truth activations with a same-appliance detection within ±15 min)");
}
