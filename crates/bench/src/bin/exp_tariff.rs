//! E9: the multi-tariff approach (§3.3) evaluated across consumer
//! tariff sensitivity — the experiment the paper could not run.

use flextract_eval::experiments::{tariff_study, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        households: 15,
        days: 28,
        seed: 2013,
    };
    let study = tariff_study(&[0.0, 0.25, 0.5, 0.75, 1.0], params);
    print!("{}", study.render());
    println!("\n(15 family households x 28 days under the overnight 22:00-06:00 low tariff)");
}
