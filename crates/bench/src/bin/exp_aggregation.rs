//! E8: aggregation + RES scheduling — the §6 claim that aggregated
//! flex-offers behave realistically even from the coarse peak-based
//! extraction.

use flextract_eval::experiments::{aggregation_study, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        households: 50,
        days: 14,
        seed: 2013,
    };
    let study = aggregation_study(params);
    print!("{}", study.render());
    println!("\n(50 households x 14 days, wind farm sized to the fleet's mean load)");
}
