//! E5: flexible-share sweep over the MIRACLE 0.1-6.5 % range (§1 ref \[7\]).

use flextract_eval::experiments::{share_sweep, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        households: 30,
        days: 28,
        seed: 2013,
    };
    let sweep = share_sweep(&[0.001, 0.005, 0.01, 0.02, 0.05, 0.065], params);
    print!("{}", sweep.render());
    println!("\n(30 households x 28 days; 'achieved' is extracted energy / total consumption)");
}
