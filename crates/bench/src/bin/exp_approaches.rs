//! E6: all six extraction approaches compared on one fleet.

use flextract_eval::experiments::{approach_comparison, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        households: 30,
        days: 28,
        seed: 2013,
    };
    let cmp = approach_comparison(params);
    print!("{}", cmp.render());
    println!("\n(30 households x 28 days; dispersion 1.0 = uniformly spread starts — the random baseline's flaw)");
}
