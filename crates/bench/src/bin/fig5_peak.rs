//! E3 / Figure 5: the peak-based extraction walk-through, reproduced
//! digit-for-digit on the canonical engineered day.
//!
//! Expected (from the paper): day total 39.02 kWh; eight peaks sized
//! 0.47, 1.5, 0.48, 0.48, 1.85, 2.22, 5.47, 0.48 kWh; 5 % flexible part
//! ⇒ filter threshold 1.951 kWh; survivors peaks 6 and 7; selection
//! probabilities 29 % and 71 %.

use flextract_core::{ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor};
use flextract_eval::{fig5_day, FIG5_EXPECTED};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let day = fig5_day();
    println!("Figure 5 — peak-based extraction walk-through\n");
    println!(
        "input day: {} intervals of {}, total {:.2} kWh (paper: {:.2})",
        day.len(),
        day.resolution(),
        day.total_energy(),
        FIG5_EXPECTED.day_total_kwh
    );

    let extractor = PeakExtractor::new(ExtractionConfig::default());
    let out = extractor
        .extract(
            &ExtractionInput::household(&day),
            &mut StdRng::seed_from_u64(5),
        )
        .expect("the canonical day is non-empty");
    let report = &out.diagnostics.peak_reports[0];

    println!(
        "average line: {:.4} kWh/interval (the figure's \"thick horizontal line\")",
        report.threshold_kwh
    );
    println!(
        "flexible part: {:.0} % ⇒ filter threshold {:.3} kWh (paper: 39.02 × 0.05 = 1.951)\n",
        FIG5_EXPECTED.flexible_share * 100.0,
        report.min_peak_energy_kwh
    );
    println!(
        "{:>5} {:>8} {:>10} {:>9} {:>12} {:>12}",
        "peak", "start", "intervals", "size", "filter", "probability"
    );
    for p in &report.peaks {
        println!(
            "{:>5} {:>8} {:>10} {:>9.2} {:>12} {:>12}",
            p.number,
            p.start.time().to_string(),
            p.intervals,
            p.size_kwh,
            if p.survived_filter {
                "survives"
            } else {
                "discarded"
            },
            if p.survived_filter {
                format!("{:.0} %", p.probability * 100.0)
            } else {
                "-".into()
            },
        );
    }
    println!(
        "\nselected peak: {} → flex-offer {}",
        report.selected.expect("two peaks survive"),
        out.flex_offers[0]
    );

    // --- Verify against the paper's printed numbers.
    assert!((day.total_energy() - FIG5_EXPECTED.day_total_kwh).abs() < 1e-9);
    assert_eq!(report.peaks.len(), 8);
    for (p, expect) in report.peaks.iter().zip(FIG5_EXPECTED.peak_sizes_kwh) {
        assert!(
            (p.size_kwh - expect).abs() < 1e-9,
            "peak {}: {}",
            p.number,
            p.size_kwh
        );
    }
    assert!((report.min_peak_energy_kwh - FIG5_EXPECTED.min_peak_energy_kwh).abs() < 1e-9);
    let survivors: Vec<&flextract_core::PeakInfo> =
        report.peaks.iter().filter(|p| p.survived_filter).collect();
    assert_eq!(
        survivors.iter().map(|p| p.number).collect::<Vec<_>>(),
        FIG5_EXPECTED.survivors.to_vec()
    );
    for (p, pct) in survivors.iter().zip(FIG5_EXPECTED.probabilities_pct) {
        assert_eq!((p.probability * 100.0).round() as u32, pct);
    }
    println!("\nall Figure-5 numbers reproduced ✓ (total 39.02, filter 1.951, survivors 6 & 7 at 29 %/71 %)");
}
