//! E10: peak-threshold ablation (the DESIGN.md design-choice study).

use flextract_eval::experiments::{threshold_ablation, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        households: 30,
        days: 28,
        seed: 2013,
    };
    let ablation = threshold_ablation(params);
    print!("{}", ablation.render());
    println!("\n(30 households x 28 days; 'empty-days' = household-days where no peak survived the filter)");
}
