//! E2 / Figure 4: flex-offers extracted with the basic approach.
//!
//! The figure shows four flex-offers tiling a day's time axis, each
//! with a light (minimum required energy) and dark (maximum) profile
//! area, "the total energy amount … equal to the flexible part
//! extracted from the input time series". This binary regenerates the
//! same picture as ASCII over a simulated household-day.

use flextract_bench::family_market_series;
use flextract_core::{BasicExtractor, ExtractionConfig, ExtractionInput, FlexibilityExtractor};
use flextract_series::segment::split_into_periods;
use flextract_time::Duration;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let day = family_market_series(1, 4);
    println!("Figure 4 — flex-offers extracted using the basic approach\n");
    println!(
        "input: one simulated household-day, {:.2} kWh total\n",
        day.total_energy()
    );

    let cfg = ExtractionConfig::default();
    let extractor = BasicExtractor::new(cfg.clone());
    let out = extractor
        .extract(
            &ExtractionInput::household(&day),
            &mut StdRng::seed_from_u64(4),
        )
        .expect("one full day of data");
    out.check_invariants(&day).expect("energy accounting holds");

    println!(
        "{} flex-offers, one per {}-period, extracting {:.2} kWh ({:.1} %):\n",
        out.flex_offers.len(),
        cfg.period,
        out.extracted_energy(),
        out.achieved_share() * 100.0
    );

    for (offer, period) in out
        .flex_offers
        .iter()
        .zip(split_into_periods(&day, Duration::hours(6)))
    {
        let extracted = out.extracted_series.energy_in(period.range());
        let share_of_period = extracted / period.total_energy() * 100.0;
        println!(
            "{offer}\n  period {} .. {}: consumption {:.2} kWh, flexible part {:.2} kWh ({:.1} %)",
            period.start().time(),
            period.end().time(),
            period.total_energy(),
            extracted,
            share_of_period,
        );
        // Light (min, '#') and dark (max-min, '+') areas per slice.
        for (i, s) in offer.profile().slices().iter().enumerate() {
            let light = "#".repeat((s.min * 200.0).round() as usize);
            let dark = "+".repeat(((s.max - s.min) * 200.0).round().max(1.0) as usize);
            println!(
                "    slice {i}: {:6.3}-{:6.3} kWh {light}{dark}",
                s.min, s.max
            );
        }
        println!();
    }
    println!("(# = minimum required energy [light area], + = energy flexibility [dark area])");
}
