//! # flextract-bench
//!
//! Benchmark harness and per-figure/table experiment binaries.
//!
//! Binaries (each regenerates one artefact of the paper; see
//! `EXPERIMENTS.md` for the paper-vs-measured record):
//!
//! | binary | artefact |
//! |--------|----------|
//! | `fig1_flexoffer` | Figure 1 — the EV flex-offer anatomy |
//! | `fig4_basic` | Figure 4 — basic extraction over one day |
//! | `fig5_peak` | Figure 5 — the peak-based walk-through (exact numbers) |
//! | `table1_appliances` | Table 1 — the appliance catalog |
//! | `exp_share_sweep` | E5 — the 0.1–6.5 % flexible-share sweep |
//! | `exp_approaches` | E6 — all six approaches compared |
//! | `exp_granularity` | E7 — disaggregation vs granularity |
//! | `exp_aggregation` | E8 — aggregation + RES scheduling |
//! | `exp_tariff` | E9 — multi-tariff sensitivity sweep |
//!
//! Criterion benches (`cargo bench -p flextract-bench`):
//! `bench_series`, `bench_extractors`, `bench_disagg`, `bench_agg`,
//! `bench_sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flextract_series::TimeSeries;
use flextract_sim::{simulate_household, HouseholdArchetype, HouseholdConfig};
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};

/// The canonical experiment start date: Monday of the EDBT/ICDT 2013
/// workshop week.
pub fn epoch() -> Timestamp {
    Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).expect("static date")
}

/// A horizon of `days` starting at [`epoch`].
pub fn horizon(days: i64) -> TimeRange {
    TimeRange::starting_at(epoch(), Duration::days(days)).expect("days >= 0")
}

/// A deterministic simulated family household at 15-min granularity —
/// the standard benchmark input.
pub fn family_market_series(days: i64, seed: u64) -> TimeSeries {
    let cfg = HouseholdConfig::new(seed, HouseholdArchetype::FamilyWithChildren).with_seed(seed);
    simulate_household(&cfg, horizon(days)).series_at(Resolution::MIN_15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_market_granularity() {
        let s = family_market_series(2, 1);
        assert_eq!(s.len(), 2 * 96);
        assert_eq!(s.resolution(), Resolution::MIN_15);
        assert!(s.total_energy() > 0.0);
        assert_eq!(horizon(2).duration(), Duration::days(2));
    }
}
