//! Throughput of the six extraction approaches versus input length —
//! the scalability dimension of every table/figure reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flextract_appliance::Catalog;
use flextract_bench::{family_market_series, horizon};
use flextract_core::{
    BasicExtractor, ExtractionConfig, ExtractionInput, FlexibilityExtractor,
    FrequencyBasedExtractor, MultiTariffExtractor, PeakExtractor, RandomExtractor,
    ScheduleBasedExtractor,
};
use flextract_sim::{simulate_household, HouseholdArchetype, HouseholdConfig};
use flextract_time::Resolution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_household_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract/household_level");
    let cfg = ExtractionConfig::default();
    for days in [7_i64, 28] {
        let series = family_market_series(days, 11);
        group.throughput(Throughput::Elements(series.len() as u64));
        let extractors: Vec<(&str, Box<dyn FlexibilityExtractor>)> = vec![
            ("random", Box::new(RandomExtractor::new(cfg.clone()))),
            ("basic", Box::new(BasicExtractor::new(cfg.clone()))),
            ("peak", Box::new(PeakExtractor::new(cfg.clone()))),
        ];
        for (name, ex) in extractors {
            group.bench_with_input(BenchmarkId::new(name, days), &series, |b, s| {
                b.iter(|| {
                    ex.extract(
                        &ExtractionInput::household(black_box(s)),
                        &mut StdRng::seed_from_u64(1),
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_multi_tariff(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract/multi_tariff");
    let cfg = ExtractionConfig::default();
    let mt = MultiTariffExtractor::new(cfg);
    for days in [7_i64, 28] {
        let observed = family_market_series(days, 12);
        let reference = family_market_series(days, 13);
        group.throughput(Throughput::Elements(observed.len() as u64));
        group.bench_with_input(BenchmarkId::new("compare", days), &days, |b, _| {
            b.iter(|| {
                mt.extract(
                    &ExtractionInput::household(black_box(&observed))
                        .with_reference(black_box(&reference)),
                    &mut StdRng::seed_from_u64(1),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_appliance_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract/appliance_level");
    group.sample_size(10);
    let cfg = ExtractionConfig::default();
    let catalog = Catalog::extended();
    for days in [7_i64, 14] {
        let sim = simulate_household(
            &HouseholdConfig::new(14, HouseholdArchetype::FamilyWithChildren),
            horizon(days),
        );
        let market = sim.series_at(Resolution::MIN_15);
        group.throughput(Throughput::Elements(sim.series.len() as u64));
        let freq = FrequencyBasedExtractor::new(cfg.clone());
        group.bench_with_input(BenchmarkId::new("frequency", days), &days, |b, _| {
            b.iter(|| {
                freq.extract(
                    &ExtractionInput::household(black_box(&market))
                        .with_fine_series(black_box(&sim.series))
                        .with_catalog(&catalog),
                    &mut StdRng::seed_from_u64(1),
                )
                .unwrap()
            })
        });
        let sched = ScheduleBasedExtractor::new(cfg.clone());
        group.bench_with_input(BenchmarkId::new("schedule", days), &days, |b, _| {
            b.iter(|| {
                sched
                    .extract(
                        &ExtractionInput::household(black_box(&market))
                            .with_fine_series(black_box(&sim.series))
                            .with_catalog(&catalog),
                        &mut StdRng::seed_from_u64(1),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_household_level,
    bench_multi_tariff,
    bench_appliance_level
);
criterion_main!(benches);
