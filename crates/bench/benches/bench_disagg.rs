//! Disaggregation throughput: signature matching versus resolution and
//! catalog size, plus the two mining steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flextract_appliance::{ApplianceSpec, Catalog};
use flextract_bench::horizon;
use flextract_disagg::{detect_activations, FrequencyTable, MatchConfig, MinedSchedule};
use flextract_series::resample;
use flextract_sim::{simulate_household, HouseholdArchetype, HouseholdConfig};
use flextract_time::Resolution;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("disagg/matching");
    group.sample_size(10);
    let sim = simulate_household(
        &HouseholdConfig::new(21, HouseholdArchetype::FamilyWithChildren),
        horizon(7),
    );
    let catalog = Catalog::extended();
    for res in [Resolution::MIN_1, Resolution::MIN_5, Resolution::MIN_15] {
        let series = resample::to_resolution(&sim.series, res).unwrap();
        let specs: Vec<&ApplianceSpec> = catalog.shiftable();
        group.throughput(Throughput::Elements(series.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("week_full_catalog", res.to_string()),
            &series,
            |b, s| b.iter(|| detect_activations(black_box(s), &specs, &MatchConfig::default())),
        );
    }
    // Catalog-size sweep at 1-min resolution.
    for n_specs in [2_usize, 4, 8] {
        let specs: Vec<&ApplianceSpec> = catalog.shiftable().into_iter().take(n_specs).collect();
        group.bench_with_input(
            BenchmarkId::new("week_catalog_size", n_specs),
            &n_specs,
            |b, _| {
                b.iter(|| {
                    detect_activations(black_box(&sim.series), &specs, &MatchConfig::default())
                })
            },
        );
    }
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("disagg/mining");
    let sim = simulate_household(
        &HouseholdConfig::new(22, HouseholdArchetype::FamilyWithChildren),
        horizon(28),
    );
    let catalog = Catalog::extended();
    let specs: Vec<&ApplianceSpec> = catalog.shiftable();
    let (detections, _) = detect_activations(&sim.series, &specs, &MatchConfig::default());
    group.throughput(Throughput::Elements(detections.len() as u64));
    group.bench_function("frequency_table_28d", |b| {
        b.iter(|| FrequencyTable::mine(black_box(&detections), 28.0, &catalog))
    });
    group.bench_function("schedule_mining_28d", |b| {
        b.iter(|| MinedSchedule::mine_all(black_box(&detections), 20.0, 8.0, 60))
    });
    group.finish();
}

criterion_group!(benches, bench_matching, bench_mining);
criterion_main!(benches);
