//! Microbenchmarks of the series-engine primitives every extraction
//! approach leans on: statistics, decomposition, peak detection,
//! resampling and the binary codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flextract_bench::family_market_series;
use flextract_series::{codec, decompose, peaks, resample, stats, PeakThreshold};
use flextract_time::Resolution;
use std::hint::black_box;

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("series/stats");
    for days in [7_i64, 28] {
        let series = family_market_series(days, 1);
        let values = series.values().to_vec();
        group.throughput(Throughput::Elements(values.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("autocorrelation_day_lag", days),
            &values,
            |b, v| b.iter(|| stats::autocorrelation(black_box(v), 96)),
        );
        group.bench_with_input(BenchmarkId::new("quantile_p75", days), &values, |b, v| {
            b.iter(|| stats::quantile(black_box(v), 0.75))
        });
        group.bench_with_input(BenchmarkId::new("znormalize", days), &values, |b, v| {
            b.iter(|| stats::znormalize(black_box(v)))
        });
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("series/decompose");
    for days in [7_i64, 28] {
        let series = family_market_series(days, 2);
        group.throughput(Throughput::Elements(series.len() as u64));
        group.bench_with_input(BenchmarkId::new("daily_period", days), &series, |b, s| {
            b.iter(|| decompose::decompose(black_box(s), 96).unwrap())
        });
    }
    group.finish();
}

fn bench_peaks(c: &mut Criterion) {
    let mut group = c.benchmark_group("series/peaks");
    for days in [1_i64, 7, 28] {
        let series = family_market_series(days, 3);
        group.throughput(Throughput::Elements(series.len() as u64));
        group.bench_with_input(BenchmarkId::new("detect_mean", days), &series, |b, s| {
            b.iter(|| peaks::detect_peaks(black_box(s), PeakThreshold::Mean).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("detect_median", days), &series, |b, s| {
            b.iter(|| peaks::detect_peaks(black_box(s), PeakThreshold::Median).unwrap())
        });
    }
    group.finish();
}

fn bench_resample(c: &mut Criterion) {
    let mut group = c.benchmark_group("series/resample");
    let week_1min = {
        let cfg = flextract_sim::HouseholdConfig::new(
            4,
            flextract_sim::HouseholdArchetype::FamilyWithChildren,
        );
        flextract_sim::simulate_household(&cfg, flextract_bench::horizon(7)).series
    };
    group.throughput(Throughput::Elements(week_1min.len() as u64));
    group.bench_function("downsample_1min_to_15min_week", |b| {
        b.iter(|| resample::downsample(black_box(&week_1min), Resolution::MIN_15).unwrap())
    });
    let week_15 = resample::downsample(&week_1min, Resolution::MIN_15).unwrap();
    group.bench_function("upsample_15min_to_1min_week", |b| {
        b.iter(|| resample::upsample(black_box(&week_15), Resolution::MIN_1).unwrap())
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("series/codec");
    let series = family_market_series(28, 5);
    group.throughput(Throughput::Bytes((series.len() * 8) as u64));
    group.bench_function("encode_28d", |b| {
        b.iter(|| codec::encode(black_box(&series)))
    });
    let bytes = codec::encode(&series);
    group.bench_function("decode_28d", |b| {
        b.iter(|| codec::decode(black_box(bytes.clone())).unwrap())
    });
    group.finish();
}

fn bench_rolling(c: &mut Criterion) {
    let mut group = c.benchmark_group("series/rolling");
    let series = family_market_series(28, 6);
    let values = series.values().to_vec();
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("mean_w96_28d", |b| {
        b.iter(|| flextract_series::rolling::rolling_mean(black_box(&values), 96))
    });
    group.bench_function("median_w96_28d", |b| {
        b.iter(|| flextract_series::rolling::rolling_median(black_box(&values), 96))
    });
    group.bench_function("max_w96_28d", |b| {
        b.iter(|| flextract_series::rolling::rolling_max(black_box(&values), 96))
    });
    group.finish();
}

fn bench_forecast_and_anomaly(c: &mut Criterion) {
    let mut group = c.benchmark_group("series/forecast_anomaly");
    let series = family_market_series(28, 7);
    group.throughput(Throughput::Elements(series.len() as u64));
    group.bench_function("seasonal_naive_day_ahead", |b| {
        b.iter(|| {
            flextract_series::forecast::forecast(
                black_box(&series),
                96,
                flextract_series::forecast::ForecastMethod::SeasonalNaive,
            )
            .unwrap()
        })
    });
    group.bench_function("seasonal_anomalies_28d", |b| {
        b.iter(|| {
            flextract_series::anomaly::seasonal_anomalies(black_box(&series), 2.0, 0.02).unwrap()
        })
    });
    group.bench_function("rolling_anomalies_28d", |b| {
        b.iter(|| flextract_series::anomaly::rolling_anomalies(black_box(&series), 96, 3.0, 0.02))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stats,
    bench_decompose,
    bench_peaks,
    bench_resample,
    bench_codec,
    bench_rolling,
    bench_forecast_and_anomaly
);
criterion_main!(benches);
