//! End-to-end scenario-pipeline benchmark **with a recorded baseline**.
//!
//! Unlike the micro benches, this harness measures the whole
//! simulate→extract→aggregate pipeline through [`ScenarioRunner`] at
//! several `consumer_threads` settings and **writes the measurements to
//! `BENCH_pipeline.json`** at the workspace root (mean µs/iter per
//! bench, git revision, thread count, host parallelism), so the perf
//! trajectory across PRs has data points instead of folklore. Run it
//! with `cargo bench -p flextract-bench --bench bench_pipeline`; commit
//! the regenerated JSON when the numbers move for a reason.

use flextract_dataset::{
    ConsumerKind, Dataset, DatasetWriter, Degradation, MeasuredSeries, Predicate, ResidentStore,
    Scan, SeriesCodec, ShardedWriter,
};
use flextract_scenario::{
    export_dataset, AggregationPolicy, DatasetCleaning, ExportOptions, ExtractorChoice, Scenario,
    ScenarioRunner, Workload,
};
use flextract_series::FillStrategy;
use flextract_sim::HouseholdArchetype;
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One measured configuration.
struct Record {
    name: String,
    consumer_threads: usize,
    iters: u32,
    mean_us: f64,
    /// Free-form context recorded next to the timing (e.g. the
    /// shard-prune ratio a sharded-store query achieved).
    note: Option<String>,
}

/// The corpus' default archetype mix, inlined so the bench is
/// self-contained (no dependency on the scenarios/ directory).
fn default_mix() -> Vec<(HouseholdArchetype, f64)> {
    vec![
        (HouseholdArchetype::SingleResident, 0.25),
        (HouseholdArchetype::Couple, 0.35),
        (HouseholdArchetype::FamilyWithChildren, 0.25),
        (HouseholdArchetype::SuburbanWithEv, 0.15),
    ]
}

fn fleet_scenario(name: &str, households: usize) -> Scenario {
    Scenario {
        name: name.into(),
        description: "pipeline benchmark fleet".into(),
        workload: Workload::Households {
            households,
            archetype_mix: default_mix(),
            tariff_sensitivity: 0.0,
        },
        start: "2013-03-18".into(),
        days: 1,
        resolution_min: 15,
        extractor: ExtractorChoice::Basic,
        flexible_share: 0.05,
        aggregation: AggregationPolicy::None,
        res_capacity_share: 0.0,
        seed: 2013,
    }
}

/// Time `runner.run(scenario)` for `iters` iterations after `warmup`
/// untimed ones; returns the mean µs per iteration.
fn measure(runner: &ScenarioRunner, scenario: &Scenario, warmup: u32, iters: u32) -> f64 {
    measure_fn(warmup, iters, || {
        std::hint::black_box(runner.run(scenario).expect("benchmark scenario runs"));
    })
}

/// Time an arbitrary closure; returns the mean µs per iteration.
fn measure_fn(warmup: u32, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn workspace_root() -> PathBuf {
    // crates/bench → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("bench crate lives two levels below the workspace root")
}

fn git_rev(root: &Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Export a degraded 48-household dataset to a scratch directory and
/// return the dataset-backed scenario that ingests it — the measured
/// leg of the `ingest_clean_extract` bench. The export itself is
/// deliberately untimed (it is a one-off, not part of the serving hot
/// path).
fn ingest_scenario(dir: &Path) -> Scenario {
    let source = fleet_scenario("bench_ingest_source", 48);
    export_dataset(
        &source,
        dir,
        &ExportOptions {
            degradation: Degradation {
                resolution_min: Some(15),
                noise_std: 0.02,
                gap_rate: 0.01,
                ..Degradation::default()
            },
            ..ExportOptions::default()
        },
    )
    .expect("benchmark dataset exports");
    Scenario {
        name: "bench_ingest_48hh_1d".into(),
        workload: Workload::Dataset {
            path: dir.display().to_string(),
            consumers: 48,
            cleaning: DatasetCleaning {
                fill: FillStrategy::Linear,
                screen_anomalies: true,
            },
            disaggregate: false,
        },
        ..fleet_scenario("bench_ingest_48hh_1d", 48)
    }
}

/// Write a 30-day 1-min 4-consumer dataset in the given codec and
/// return its directory. Synthetic values (no simulation) so the bench
/// isolates the storage layer.
fn query_dataset(codec: SeriesCodec, tag: &str) -> PathBuf {
    let start: Timestamp = "2013-03-18".parse().expect("static date");
    let intervals = 30 * 1440;
    let dir = std::env::temp_dir().join(format!(
        "flextract_bench_query_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = DatasetWriter::create(
        &dir,
        "bench_query",
        "30-day query benchmark fleet",
        start,
        Resolution::MIN_1,
        intervals,
        codec,
    )
    .expect("benchmark dataset dir is writable");
    for c in 0..4_usize {
        let values: Vec<f64> = (0..intervals)
            .map(|i| {
                let x = (i * 37 + c * 13) % 101;
                if x == 100 {
                    f64::NAN
                } else {
                    0.2 + x as f64 * 0.01
                }
            })
            .collect();
        let m = MeasuredSeries::new(start, Resolution::MIN_1, values).expect("finite values");
        w.write_consumer(&c.to_string(), ConsumerKind::Household, &m, None, None)
            .expect("consumer writes");
    }
    w.finish().expect("manifest writes");
    dir
}

/// Bytes of series payload files in a dataset directory (everything
/// but the manifest) — the on-disk footprint a codec choice buys.
fn series_disk_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter(|e| e.file_name().to_string_lossy() != "manifest.json")
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// The query-engine stages: a one-day slice out of a 30-day series and
/// a whole-series aggregate, on FXM3 (compressed, chunk-skipping) vs
/// FXM2 (raw, chunk-skipping) vs FXM1 (full decode). Each iteration
/// re-reads the files — the out-of-core serving shape, not a warm
/// in-memory scan. Notes carry the on-disk footprint so the storage
/// cost sits next to the serving latency it buys.
fn query_benches(records: &mut Vec<Record>) {
    let start: Timestamp = "2013-03-18".parse().expect("static date");
    let day15 =
        TimeRange::starting_at(start + Duration::days(14), Duration::days(1)).expect("1 day");
    let mut fxm2_bytes = 0_u64;
    for (codec, tag) in [
        (SeriesCodec::Binary, "fxm2"),
        (SeriesCodec::BinaryV1, "fxm1"),
        (SeriesCodec::BinaryV3, "fxm3"),
    ] {
        let dir = query_dataset(codec, tag);
        let disk = series_disk_bytes(&dir);
        if tag == "fxm2" {
            fxm2_bytes = disk;
        }
        let size_note = if tag == "fxm3" && fxm2_bytes > 0 {
            format!(
                "{disk} B on disk ({:.2}x smaller than fxm2)",
                fxm2_bytes as f64 / disk as f64
            )
        } else {
            format!("{disk} B on disk")
        };
        let ds = Dataset::open(&dir).expect("benchmark dataset opens");
        let iters = 30;
        let mean = measure_fn(3, iters, || {
            for c in 0..ds.len() {
                std::hint::black_box(ds.consumer_slice(c, day15).expect("slice reads"));
            }
        });
        records.push(Record {
            name: format!("query/time_slice_1d_of_30d/{tag}"),
            consumer_threads: 1,
            iters,
            mean_us: mean,
            note: Some(size_note.clone()),
        });
        let scan = Scan::new();
        let mean = measure_fn(3, iters, || {
            for c in 0..ds.len() {
                std::hint::black_box(ds.consumer_aggregates(c, &scan).expect("aggregates"));
            }
        });
        records.push(Record {
            name: format!("query/full_scan_agg/{tag}"),
            consumer_threads: 1,
            iters,
            mean_us: mean,
            note: Some(size_note),
        });
        // Print the pushdown audit once per codec so the skip ratio is
        // on record next to the timings.
        let (_, slice_report) = ds.consumer_slice(0, day15).expect("slice reads");
        let (_, agg_report) = ds.consumer_aggregates(0, &scan).expect("aggregates");
        println!(
            "query/{tag}: slice decoded {}/{} chunks, full-scan agg decoded {}/{} \
             (skip fractions {:.3} / {:.3})",
            slice_report.chunks_decoded,
            slice_report.chunks_total,
            agg_report.chunks_decoded,
            agg_report.chunks_total,
            slice_report.skip_fraction(),
            agg_report.skip_fraction(),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Cold-open a frame file the pre-read-ahead way: header, tail, footer
/// and every 32-byte chunk stat header through individual seek+read
/// pairs. This is the counterfactual `fxm::open_file` replaces — the
/// same stats-ready outcome, but 3 + chunk-count IO round-trips per
/// file instead of one sequential read.
fn cold_open_seek_per_chunk(path: &Path) -> (usize, u64) {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path).expect("bench frame opens");
    let mut header = [0u8; 28];
    f.read_exact(&mut header).expect("frame header");
    let len = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
    let chunk_len = u32::from_le_bytes(header[24..28].try_into().expect("4 bytes")) as usize;
    let chunks = len.div_ceil(chunk_len);
    let file_len = f.metadata().expect("metadata").len();
    let mut tail = [0u8; 12];
    f.seek(SeekFrom::Start(file_len - 12)).expect("seek tail");
    f.read_exact(&mut tail).expect("frame tail");
    let footer_off = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
    let mut offsets = vec![0u8; chunks * 8];
    f.seek(SeekFrom::Start(footer_off)).expect("seek footer");
    f.read_exact(&mut offsets).expect("footer offsets");
    let mut count_sum = 0_u64;
    let mut stat = [0u8; 32];
    for c in 0..chunks {
        let off = u64::from_le_bytes(offsets[c * 8..c * 8 + 8].try_into().expect("8 bytes"));
        f.seek(SeekFrom::Start(off)).expect("seek chunk");
        f.read_exact(&mut stat).expect("chunk stat header");
        count_sum += u64::from(u32::from_le_bytes(stat[0..4].try_into().expect("4 bytes")));
    }
    (chunks, count_sum)
}

/// The cold-open stages: opening a month of 1-min FXM3 files up to
/// stats-ready state via the single-read read-ahead path vs a seek per
/// chunk header. What's measured is IO round-trips, not decode work —
/// neither path touches a compressed payload byte.
fn cold_open_benches(records: &mut Vec<Record>) {
    let dir = query_dataset(SeriesCodec::BinaryV3, "cold_open");
    let files: Vec<PathBuf> = (0..4)
        .map(|c| dir.join(format!("consumer_{c}.fxm")))
        .collect();
    let chunks = cold_open_seek_per_chunk(&files[0]).0;
    let disk = series_disk_bytes(&dir);
    let iters = 30;

    let mean = measure_fn(3, iters, || {
        for f in &files {
            let frame = flextract_frame::fxm::open_file(f).expect("read-ahead open");
            std::hint::black_box(frame.chunks().len());
        }
    });
    records.push(Record {
        name: "cold_open/readahead_single_read/fxm3".into(),
        consumer_threads: 1,
        iters,
        mean_us: mean,
        note: Some(format!(
            "4 files, {chunks} chunks each, {disk} B total — one buffered read per file"
        )),
    });

    let mean = measure_fn(3, iters, || {
        for f in &files {
            std::hint::black_box(cold_open_seek_per_chunk(f));
        }
    });
    records.push(Record {
        name: "cold_open/seek_per_chunk/fxm3".into(),
        consumer_threads: 1,
        iters,
        mean_us: mean,
        note: Some(format!(
            "4 files, 3 + {chunks} seek+read round-trips per file"
        )),
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed-corpus storage stage: what the FXM3 flip actually
/// bought on the datasets shipped in this repository. Re-encodes the
/// committed 1-min measured series as FXM2 and compares footprints;
/// the timing is a full cold open + payload decode of all three files.
fn committed_storage_bench(records: &mut Vec<Record>) {
    let ds_dir = workspace_root().join("datasets/ds_household_1min");
    let files: Vec<PathBuf> = (0..3)
        .map(|c| ds_dir.join(format!("consumer_{c}.fxm")))
        .collect();
    let v3_bytes: u64 = files
        .iter()
        .map(|f| std::fs::metadata(f).expect("committed dataset file").len())
        .sum();
    let v2_bytes: u64 = files
        .iter()
        .map(|f| {
            let series = flextract_frame::fxm::open_file(f)
                .expect("committed frame opens")
                .into_measured()
                .expect("committed frame decodes");
            flextract_frame::fxm::encode(&series).len() as u64
        })
        .sum();
    let ratio = v2_bytes as f64 / v3_bytes as f64;
    assert!(
        ratio >= 2.0,
        "the committed 1-min dataset must compress at least 2x ({v3_bytes} B vs {v2_bytes} B)"
    );
    let iters = 30;
    let mean = measure_fn(3, iters, || {
        for f in &files {
            let series = flextract_frame::fxm::open_file(f)
                .expect("committed frame opens")
                .into_measured()
                .expect("committed frame decodes");
            std::hint::black_box(series.len());
        }
    });
    records.push(Record {
        name: "storage/committed_ds_household_1min/fxm3".into(),
        consumer_threads: 1,
        iters,
        mean_us: mean,
        note: Some(format!(
            "measured files {v3_bytes} B on disk vs {v2_bytes} B as fxm2 — {ratio:.2}x compression"
        )),
    });
}

/// The sharded-store stages: a large lightweight fleet (one day at
/// 15 min per consumer, `BENCH_SHARD_CONSUMERS` consumers, default
/// 100 000 — CI sets a small value) behind shard-level statistics.
/// Measures the three serving shapes the root index is for: a
/// time-sliced point query that routes to one shard, a fleet roll-up
/// that opens no shard at all, and a predicate scan whose statistics
/// prune every shard. Each iteration reopens the store cold, so the
/// cost of *not* touching 99+% of the manifests is what's measured.
fn shard_store_benches(records: &mut Vec<Record>) {
    let consumers: usize = std::env::var("BENCH_SHARD_CONSUMERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let capacity = 512;
    let intervals = 96;
    let start: Timestamp = "2013-03-18".parse().expect("static date");
    let dir = std::env::temp_dir().join(format!(
        "flextract_bench_sharded_{}_{}",
        consumers,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = ShardedWriter::create(
        &dir,
        "bench_sharded",
        "large lightweight fleet for shard-prune benchmarks",
        start,
        Resolution::MIN_15,
        intervals,
        SeriesCodec::Binary,
        capacity,
    )
    .expect("benchmark store dir is writable");
    for c in 0..consumers {
        let values: Vec<f64> = (0..intervals)
            .map(|i| 0.2 + ((i * 37 + c * 13) % 101) as f64 * 0.01)
            .collect();
        let m = MeasuredSeries::new(start, Resolution::MIN_15, values).expect("finite values");
        w.write_consumer(&c.to_string(), ConsumerKind::Household, &m, None, None)
            .expect("consumer writes");
    }
    let root = w.finish().expect("root commits");
    let shards = root.shards.len();
    println!("shard_store: {consumers} consumers in {shards} shards at capacity {capacity}");

    // 1. Time-sliced single-consumer query: the root index routes to
    //    the one shard owning the consumer; the other shards' manifests
    //    are never read, let alone their series files.
    let midday = TimeRange::starting_at(start + Duration::minutes(6 * 60), Duration::minutes(720))
        .expect("12 h slice");
    let target = consumers / 2;
    let scan = Scan::new().time_slice(midday);
    let iters = 20;
    let (_, point_report) = Dataset::open(&dir)
        .expect("store opens")
        .consumer_aggregates(target, &scan)
        .expect("point query");
    let mean = measure_fn(2, iters, || {
        let ds = Dataset::open(&dir).expect("store opens");
        std::hint::black_box(ds.consumer_aggregates(target, &scan).expect("point query"));
    });
    records.push(Record {
        name: format!("shard_store/point_query_sliced/{consumers}c"),
        consumer_threads: 1,
        iters,
        mean_us: mean,
        note: Some(format!(
            "opens 1/{shards} shard manifests ({:.1} % pruned); {} B read, {} B of payload decoded",
            100.0 * (shards - 1) as f64 / shards as f64,
            point_report.bytes_read,
            point_report.bytes_decoded
        )),
    });

    // 2. Fleet roll-up with no predicates: answered from the root's
    //    per-shard statistics alone — zero shards opened.
    let fleet_scan = Scan::new();
    let ds = Dataset::open(&dir).expect("store opens");
    let (_, report) = ds.fleet_aggregates(&fleet_scan).expect("fleet roll-up");
    assert_eq!(report.shards_opened(), 0, "stats-only fleet scan");
    assert_eq!(report.shards_stats_only, shards);
    let mean = measure_fn(2, iters, || {
        let ds = Dataset::open(&dir).expect("store opens");
        std::hint::black_box(ds.fleet_aggregates(&fleet_scan).expect("fleet roll-up"));
    });
    records.push(Record {
        name: format!("shard_store/fleet_stats_only/{consumers}c"),
        consumer_threads: 1,
        iters,
        mean_us: mean,
        note: Some(format!(
            "opens 0/{shards} shards (100.0 % answered from roll-ups); {} B read, {} B of payload decoded",
            report.bytes_read, report.bytes_decoded
        )),
    });

    // 3. A predicate no shard satisfies: the roll-ups prune everything.
    let prune_scan = Scan::new().with_predicate(Predicate::MaxAbove(1e9));
    let (_, report) = ds.fleet_aggregates(&prune_scan).expect("pruned scan");
    assert_eq!(report.shards_pruned, shards, "statistics prune every shard");
    let mean = measure_fn(2, iters, || {
        let ds = Dataset::open(&dir).expect("store opens");
        std::hint::black_box(ds.fleet_aggregates(&prune_scan).expect("pruned scan"));
    });
    records.push(Record {
        name: format!("shard_store/fleet_predicate_prune/{consumers}c"),
        consumer_threads: 1,
        iters,
        mean_us: mean,
        note: Some(format!(
            "prunes {shards}/{shards} shards (100.0 % pruned); {} B read, {} B of payload decoded",
            report.bytes_read, report.bytes_decoded
        )),
    });

    // 4. The resident warm path against the same store: the cold stage
    //    opens a fresh handle per query (full root parse — the serving
    //    shape the `shard_store/*` stages measure), the warm stages
    //    re-query one long-lived `ResidentStore` whose caches are
    //    primed, so only the fingerprint revalidation and the fold
    //    itself remain.
    let cold_mean = measure_fn(2, iters, || {
        let store = ResidentStore::open(&dir).expect("resident store opens");
        std::hint::black_box(
            store
                .consumer_aggregates(target, &scan)
                .expect("point query"),
        );
    });
    records.push(Record {
        name: format!("query_cache/cold/{consumers}c"),
        consumer_threads: 1,
        iters,
        mean_us: cold_mean,
        note: Some("fresh ResidentStore per query: full root.json parse, empty caches".into()),
    });

    let store = ResidentStore::open(&dir).expect("resident store opens");
    let _ = store
        .consumer_aggregates(target, &scan)
        .expect("priming query");
    let (_, warm_report) = store
        .consumer_aggregates(target, &scan)
        .expect("warm point query");
    assert!(warm_report.cache_hits > 0, "warm point query must hit");
    assert_eq!(warm_report.bytes_read, 0, "warm point query re-read bytes");
    let warm_iters = 1000;
    let warm_mean = measure_fn(100, warm_iters, || {
        std::hint::black_box(
            store
                .consumer_aggregates(target, &scan)
                .expect("warm query"),
        );
    });
    records.push(Record {
        name: format!("query_cache/warm/{consumers}c"),
        consumer_threads: 1,
        iters: warm_iters,
        mean_us: warm_mean,
        note: Some(format!(
            "resident frame + chunk pool: {} B saved per query; {:.0}x faster than cold ({:.1} ms)",
            warm_report.bytes_saved,
            cold_mean / warm_mean,
            cold_mean / 1e3
        )),
    });

    let _ = store
        .fleet_aggregates(&fleet_scan)
        .expect("priming roll-up");
    let (_, warm_fleet_report) = store.fleet_aggregates(&fleet_scan).expect("warm roll-up");
    assert_eq!(
        warm_fleet_report.bytes_read_index, 0,
        "warm fleet roll-up re-read the index"
    );
    let warm_fleet_mean = measure_fn(100, warm_iters, || {
        std::hint::black_box(store.fleet_aggregates(&fleet_scan).expect("warm roll-up"));
    });
    records.push(Record {
        name: format!("query_cache/warm_fleet/{consumers}c"),
        consumer_threads: 1,
        iters: warm_iters,
        mean_us: warm_fleet_mean,
        note: Some(format!(
            "resident roll-ups over {shards} shard summaries, 0 B re-read; {} B of index saved",
            warm_fleet_report.bytes_saved
        )),
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// The static-analysis stages: one cold `flextract analyze` pass over
/// the committed workspace (no cache file — every source is lexed and
/// item-parsed) against warm passes where the file-hash cache answers
/// every file and only the symbol table, call graph and reachability
/// walk re-run. The gap between the two is the incremental win a CI
/// rerun or a watch loop actually sees.
fn analyze_benches(records: &mut Vec<Record>) {
    let root = workspace_root();
    let allowlist = flextract_analyze::load_allowlist(&root).expect("analyze.toml parses");
    let cache = std::env::temp_dir().join(format!(
        "flextract_bench_analyze_cache_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    let opts = flextract_analyze::AnalyzeOptions {
        cache_path: Some(cache.clone()),
    };

    let t = Instant::now();
    let cold = flextract_analyze::analyze_tree_with(&root, &allowlist, &opts)
        .expect("the committed workspace scans");
    let cold_us = t.elapsed().as_secs_f64() * 1e6;
    records.push(Record {
        name: "analyze/cold".into(),
        consumer_threads: 1,
        iters: 1,
        mean_us: cold_us,
        note: Some(format!(
            "{} files scanned, {} re-parsed",
            cold.files_scanned, cold.files_reparsed
        )),
    });

    let iters = 5;
    let mean = measure_fn(1, iters, || {
        let a = flextract_analyze::analyze_tree_with(&root, &allowlist, &opts)
            .expect("the committed workspace scans");
        assert_eq!(a.files_reparsed, 0, "warm runs must hit the cache");
        std::hint::black_box(a);
    });
    records.push(Record {
        name: "analyze/warm".into(),
        consumer_threads: 1,
        iters,
        mean_us: mean,
        note: Some("file-hash cache hit on every file; semantic pass re-runs".into()),
    });
    let _ = std::fs::remove_file(&cache);
}

fn main() {
    let mid = fleet_scenario("bench_mid_fleet", 48);
    let stress = fleet_scenario("bench_stress_10k", 10_000);
    let ds_dir =
        std::env::temp_dir().join(format!("flextract_bench_dataset_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ds_dir);
    let ingest = ingest_scenario(&ds_dir);

    let mut records: Vec<Record> = Vec::new();
    for consumer_threads in [1_usize, 8] {
        let runner = ScenarioRunner::with_threads(1).with_consumer_threads(consumer_threads);
        let mean = measure(&runner, &mid, 1, 5);
        records.push(Record {
            name: "pipeline/mid_fleet_48hh_1d".into(),
            consumer_threads,
            iters: 5,
            mean_us: mean,
            note: None,
        });
        // The measured-data leg: ingest (load + gap-fill + anomaly
        // screen) → extract → evaluate, fidelity leg included.
        let mean = measure(&runner, &ingest, 1, 5);
        records.push(Record {
            name: "pipeline/ingest_clean_extract_48hh_1d".into(),
            consumer_threads,
            iters: 5,
            mean_us: mean,
            note: Some("dataset leg reads fxm3 (the default export codec)".into()),
        });
        // The stress fleet costs ~1 s per iteration in release: keep
        // the sample count low, skip the warm-up.
        let mean = measure(&runner, &stress, 0, 2);
        records.push(Record {
            name: "pipeline/stress_10k_households_1d".into(),
            consumer_threads,
            iters: 2,
            mean_us: mean,
            note: None,
        });
    }
    std::fs::remove_dir_all(&ds_dir).ok();
    query_benches(&mut records);
    cold_open_benches(&mut records);
    committed_storage_bench(&mut records);
    shard_store_benches(&mut records);
    analyze_benches(&mut records);

    let root = workspace_root();
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo bench -p flextract-bench --bench bench_pipeline\",\n",
    );
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev(&root)));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let note = r
            .note
            .as_ref()
            .map(|n| format!(", \"note\": \"{n}\""))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"consumer_threads\": {}, \"iters\": {}, \"mean_us\": {:.1}{note} }}{}\n",
            r.name,
            r.consumer_threads,
            r.iters,
            r.mean_us,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    for r in &records {
        println!(
            "{:<44} ct={} {:>14.1} µs/iter{}",
            r.name,
            r.consumer_threads,
            r.mean_us,
            r.note
                .as_ref()
                .map(|n| format!("  [{n}]"))
                .unwrap_or_default()
        );
    }
    let out = root.join("BENCH_pipeline.json");
    std::fs::write(&out, &json).expect("BENCH_pipeline.json is writable");
    println!("wrote {}", out.display());
}
