//! Aggregation and scheduling scalability versus flex-offer count —
//! the dimension that matters when MIRABEL scales to "thousands of
//! consumers" (§6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flextract_agg::{aggregate_offers, schedule_offers, AggregationConfig, ScheduleConfig};
use flextract_bench::epoch;
use flextract_flexoffer::{EnergyRange, FlexOffer};
use flextract_series::TimeSeries;
use flextract_time::{Duration, Resolution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A synthetic population of offers spread over one day with varied
/// windows and profiles, mimicking a fleet extraction.
fn offer_population(n: usize, seed: u64) -> Vec<FlexOffer> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let est = epoch() + Duration::minutes(rng.gen_range(0..80) * 15);
            let flex = Duration::minutes(rng.gen_range(2..28) * 15);
            let slices = rng.gen_range(2..8);
            let e = rng.gen_range(0.1..0.8);
            FlexOffer::builder(i as u64 + 1)
                .start_window(est, est + flex)
                .slices(
                    Resolution::MIN_15,
                    vec![EnergyRange::new(e * 0.8, e * 1.2).unwrap(); slices],
                )
                .build()
                .expect("generated windows are aligned")
        })
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg/aggregate");
    for n in [100_usize, 1000, 5000] {
        let offers = offer_population(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("grid_default", n), &offers, |b, o| {
            b.iter(|| aggregate_offers(black_box(o), &AggregationConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg/schedule");
    group.sample_size(10);
    let demand = TimeSeries::constant(epoch(), Resolution::MIN_15, 10.0, 2 * 96);
    let mut prod = vec![0.0; 2 * 96];
    for (i, v) in prod.iter_mut().enumerate() {
        *v = 12.0
            * (((i % 96) as f64 / 96.0) * std::f64::consts::TAU)
                .sin()
                .max(0.0);
    }
    let production = TimeSeries::new(epoch(), Resolution::MIN_15, prod).unwrap();
    for n in [50_usize, 200] {
        let offers = offer_population(n, 2);
        let aggregates = aggregate_offers(&offers, &AggregationConfig::default()).unwrap();
        let agg_offers: Vec<FlexOffer> = aggregates.iter().map(|a| a.offer.clone()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("greedy_plus_climb", n),
            &agg_offers,
            |b, o| {
                b.iter(|| {
                    schedule_offers(
                        black_box(o),
                        &demand,
                        &production,
                        &ScheduleConfig { iterations: 200 },
                        &mut StdRng::seed_from_u64(3),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation, bench_scheduling);
criterion_main!(benches);
