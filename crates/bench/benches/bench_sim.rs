//! Simulator throughput: single households, wind production, and fleet
//! parallelism (serial vs crossbeam workers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flextract_bench::horizon;
use flextract_sim::{
    simulate_fleet, simulate_household, simulate_wind_production, FleetConfig, HouseholdArchetype,
    HouseholdConfig, WindFarmConfig,
};
use flextract_time::Resolution;
use std::hint::black_box;

fn bench_household(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/household");
    for days in [7_i64, 28] {
        group.throughput(Throughput::Elements((days * 1440) as u64));
        for arch in [
            HouseholdArchetype::SingleResident,
            HouseholdArchetype::SuburbanWithEv,
        ] {
            let cfg = HouseholdConfig::new(31, arch);
            group.bench_with_input(BenchmarkId::new(format!("{arch}"), days), &days, |b, &d| {
                b.iter(|| simulate_household(black_box(&cfg), horizon(d)))
            });
        }
    }
    group.finish();
}

fn bench_wind(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/wind");
    let farm = WindFarmConfig::default();
    for days in [7_i64, 28] {
        group.throughput(Throughput::Elements((days * 96) as u64));
        group.bench_with_input(
            BenchmarkId::new("production_15min", days),
            &days,
            |b, &d| {
                b.iter(|| {
                    simulate_wind_production(black_box(&farm), horizon(d), Resolution::MIN_15)
                })
            },
        );
    }
    group.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/fleet");
    group.sample_size(10);
    for threads in [1_usize, 4] {
        let cfg = FleetConfig {
            households: 20,
            base_seed: 7,
            threads,
            ..FleetConfig::default()
        };
        group.throughput(Throughput::Elements(20));
        group.bench_with_input(
            BenchmarkId::new("households_20_week", threads),
            &cfg,
            |b, cfg| b.iter(|| simulate_fleet(black_box(cfg), horizon(7))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_household, bench_wind, bench_fleet);
criterion_main!(benches);
