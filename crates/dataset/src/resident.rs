//! The resident store: a long-lived, thread-safe dataset handle that
//! amortizes index parsing and payload decoding across queries.
//!
//! [`Dataset`] is deliberately stateless — every open re-reads
//! `root.json`/`manifest.json`, and every consumer query re-reads and
//! re-decodes its series file. That is the right contract for one-shot
//! tools, but a long-lived process (the serving loop the ROADMAP aims
//! at) pays the whole routing cost per query: the committed bench
//! baseline spends ~54 ms per sliced point query on a 100k-consumer
//! store to read 848 B, almost all of it re-parsing indexes.
//! [`ResidentStore`] keeps the parsed state resident:
//!
//! * the **dataset snapshot** — `root.json` parsed once, shard
//!   manifests parsed once each (via [`Dataset`]'s per-shard
//!   memoization) and the per-shard stat roll-ups with them, shared
//!   behind an [`Arc`];
//! * a **frame cache** — whole decoded consumer frames keyed by global
//!   consumer index, LRU under a byte budget;
//! * a **chunk buffer pool** — decoded chunk payloads keyed by
//!   `(file, chunk index)`, LRU under its own byte budget, consulted
//!   through the [`ChunkCache`] trait so the scan fold itself is the
//!   one implementation on both the cached and uncached paths.
//!
//! # Invalidation contract
//!
//! Both caches key off a **generation**. Every query entry point
//! revalidates the handle by fingerprinting the index file
//! (`root.json` length + mtime; `manifest.json` for legacy layouts).
//! The sharded writer's only commit point is the atomic rename of
//! `root.json` — kill points before it leave the old root byte-for-byte
//! in place (new shard directories and `root.json.tmp` are invisible to
//! the fingerprint), and the rename itself changes the fingerprint. A
//! changed fingerprint reopens the dataset, bumps the generation and
//! clears both caches **before** the new snapshot is served, so a query
//! either sees the old committed store in full or the new one in full —
//! never a torn mix, and stale reads are impossible by construction.
//!
//! # Determinism
//!
//! Cached answers are bit-identical to fresh-open answers because the
//! cache only replaces the decode step inside the one shared scan fold
//! (see [`ChunkCache`]). Both caches and the process-wide registry use
//! `BTreeMap` — nothing that feeds a report or an eviction decision
//! iterates a hash map.

use crate::store::MANIFEST_FILE;
use crate::{Dataset, DatasetError};
use flextract_frame::{Aggregates, ChunkCache, Frame, Scan, ScanReport};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::SystemTime;

/// Byte budgets for the resident caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentConfig {
    /// Budget for the chunk buffer pool (decoded payloads, 8 bytes per
    /// interval), in bytes. Entries above the budget are not cached.
    pub chunk_pool_bytes: usize,
    /// Budget for the frame cache (whole consumer files as opened),
    /// in bytes.
    pub frame_cache_bytes: usize,
}

impl Default for ResidentConfig {
    /// 32 MiB of decoded chunks + 64 MiB of frames — small against a
    /// serving process, large against per-consumer series files.
    fn default() -> Self {
        ResidentConfig {
            chunk_pool_bytes: 32 << 20,
            frame_cache_bytes: 64 << 20,
        }
    }
}

/// A point-in-time view of the resident caches, for tests and CLI
/// summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Snapshot generation (1 after open, +1 per revalidation reopen).
    pub generation: u64,
    /// Frames resident in the frame cache.
    pub frame_entries: usize,
    /// Bytes held by the frame cache.
    pub frame_bytes: usize,
    /// Decoded chunk payloads resident in the pool.
    pub chunk_entries: usize,
    /// Bytes held by the chunk pool.
    pub chunk_bytes: usize,
}

/// The index-file identity a snapshot was opened against: length +
/// mtime of `root.json` (sharded) or `manifest.json` (legacy). The
/// sharded commit point is an atomic rename onto `root.json`, which
/// changes both; uncommitted `.tmp` siblings change neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexFingerprint {
    len: u64,
    mtime: Option<SystemTime>,
}

/// The revalidated shared state: one open dataset per generation.
struct Snapshot {
    generation: u64,
    fingerprint: IndexFingerprint,
    dataset: Arc<Dataset>,
}

/// A deterministic LRU map: `BTreeMap` storage, recency tracked by a
/// monotonic tick, eviction pops the smallest tick until the byte
/// budget holds. No hash-map iteration anywhere near a report.
struct Lru<K: Ord + Clone, V: Clone> {
    budget: usize,
    bytes: usize,
    tick: u64,
    /// key → (value, bytes, last-use tick)
    entries: BTreeMap<K, (V, usize, u64)>,
    /// last-use tick → key (ticks are unique: one per touch)
    by_use: BTreeMap<u64, K>,
}

impl<K: Ord + Clone, V: Clone> Lru<K, V> {
    fn new(budget: usize) -> Self {
        Lru {
            budget,
            bytes: 0,
            tick: 0,
            entries: BTreeMap::new(),
            by_use: BTreeMap::new(),
        }
    }

    fn lookup(&mut self, key: &K) -> Option<V> {
        let (value, _, last_use) = self.entries.get_mut(key)?;
        let old = *last_use;
        self.tick += 1;
        *last_use = self.tick;
        let value = value.clone();
        self.by_use.remove(&old);
        self.by_use.insert(self.tick, key.clone());
        Some(value)
    }

    fn insert(&mut self, key: K, value: V, bytes: usize) {
        if bytes > self.budget {
            // An entry that alone busts the budget would only evict
            // everything else for nothing — decline it.
            return;
        }
        if let Some((_, old_bytes, old_tick)) = self.entries.remove(&key) {
            self.bytes -= old_bytes;
            self.by_use.remove(&old_tick);
        }
        self.tick += 1;
        self.by_use.insert(self.tick, key.clone());
        self.entries.insert(key, (value, bytes, self.tick));
        self.bytes += bytes;
        while self.bytes > self.budget {
            let Some((&oldest, _)) = self.by_use.iter().next() else {
                break;
            };
            let key = self.by_use.remove(&oldest).expect("tick just observed");
            if let Some((_, freed, _)) = self.entries.remove(&key) {
                self.bytes -= freed;
            }
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.by_use.clear();
        self.bytes = 0;
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes(&self) -> usize {
        self.bytes
    }
}

/// The chunk buffer pool: decoded chunk payloads keyed by
/// `(file, chunk_index)`, shared across every query on the handle.
type ChunkPool = Mutex<Lru<(String, usize), Arc<Vec<f64>>>>;

/// Per-call adapter handing the chunk pool to the scan fold: each
/// lookup/store takes the pool mutex briefly, so concurrent scans
/// interleave at chunk granularity instead of serializing whole
/// queries.
struct PoolHandle<'a> {
    pool: &'a ChunkPool,
}

impl ChunkCache for PoolHandle<'_> {
    fn lookup(&mut self, file: &str, chunk: usize) -> Option<Arc<Vec<f64>>> {
        self.pool.lock().lookup(&(file.to_string(), chunk))
    }

    fn store(&mut self, file: &str, chunk: usize, values: Arc<Vec<f64>>) {
        let bytes = values.len() * std::mem::size_of::<f64>();
        self.pool
            .lock()
            .insert((file.to_string(), chunk), values, bytes);
    }
}

/// A long-lived, thread-safe dataset handle with resident caches.
///
/// See the [module docs](self) for the cache and invalidation
/// contract. All methods take `&self`; the handle is `Sync` and meant
/// to be shared (wrap in an [`Arc`], or use [`ResidentStore::shared`]
/// for one process-wide handle per store directory).
pub struct ResidentStore {
    dir: PathBuf,
    config: ResidentConfig,
    state: RwLock<Snapshot>,
    frames: Mutex<Lru<usize, Arc<Frame>>>,
    pool: ChunkPool,
}

impl std::fmt::Debug for ResidentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentStore")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .field("generation", &self.state.read().generation)
            .finish_non_exhaustive()
    }
}

impl ResidentStore {
    /// Open `dir` with the default cache budgets.
    pub fn open(dir: impl AsRef<Path>) -> Result<ResidentStore, DatasetError> {
        Self::open_with(dir, ResidentConfig::default())
    }

    /// Open `dir` with explicit cache budgets. The open parses the
    /// index once; subsequent queries revalidate against the index
    /// fingerprint instead of re-reading it.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: ResidentConfig,
    ) -> Result<ResidentStore, DatasetError> {
        let dir = dir.as_ref().to_path_buf();
        // Fingerprint BEFORE opening: if a commit lands in between,
        // the stored fingerprint is older than the opened data and the
        // next revalidation reopens — the safe direction. The reverse
        // order could pin a new fingerprint to old data.
        let fingerprint = index_fingerprint(&dir)?;
        let dataset = Arc::new(Dataset::open(&dir)?);
        Ok(ResidentStore {
            dir,
            config,
            state: RwLock::new(Snapshot {
                generation: 1,
                fingerprint,
                dataset,
            }),
            frames: Mutex::new(Lru::new(config.frame_cache_bytes)),
            pool: Mutex::new(Lru::new(config.chunk_pool_bytes)),
        })
    }

    /// The process-wide shared handle for `dir` (keyed by canonical
    /// path, created with default budgets on first use) — what
    /// `flextract query` and the scenario runner use so repeated
    /// queries against one store share one set of caches.
    pub fn shared(dir: impl AsRef<Path>) -> Result<Arc<ResidentStore>, DatasetError> {
        static REGISTRY: OnceLock<Mutex<BTreeMap<PathBuf, Arc<ResidentStore>>>> = OnceLock::new();
        let dir = dir.as_ref();
        let key = std::fs::canonicalize(dir).unwrap_or_else(|_| dir.to_path_buf());
        let mut registry = REGISTRY.get_or_init(Mutex::default).lock();
        if let Some(store) = registry.get(&key) {
            return Ok(store.clone());
        }
        let store = Arc::new(ResidentStore::open(dir)?);
        registry.insert(key, store.clone());
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured cache budgets.
    pub fn config(&self) -> ResidentConfig {
        self.config
    }

    /// The current snapshot generation: 1 after open, +1 every time
    /// revalidation observed a committed change and reopened.
    pub fn generation(&self) -> u64 {
        self.state.read().generation
    }

    /// Cache occupancy, for tests and summaries.
    pub fn cache_stats(&self) -> CacheStats {
        let generation = self.state.read().generation;
        let (frame_entries, frame_bytes) = {
            let frames = self.frames.lock();
            (frames.len(), frames.bytes())
        };
        let (chunk_entries, chunk_bytes) = {
            let pool = self.pool.lock();
            (pool.len(), pool.bytes())
        };
        CacheStats {
            generation,
            frame_entries,
            frame_bytes,
            chunk_entries,
            chunk_bytes,
        }
    }

    /// The revalidated dataset snapshot. Returns the shared handle and
    /// whether this call had to reopen (`true` = the index fingerprint
    /// changed: the caches were cleared and the generation bumped).
    ///
    /// Hold the returned [`Arc`] for the duration of one logical query
    /// so every sub-read (every shard of a fleet scan) answers from
    /// one generation.
    pub fn snapshot(&self) -> Result<(Arc<Dataset>, bool), DatasetError> {
        let fingerprint = index_fingerprint(&self.dir)?;
        {
            let state = self.state.read();
            if state.fingerprint == fingerprint {
                return Ok((state.dataset.clone(), false));
            }
        }
        let mut state = self.state.write();
        // Another thread may have revalidated while we waited for the
        // write lock.
        if state.fingerprint == fingerprint {
            return Ok((state.dataset.clone(), false));
        }
        // Fingerprint again before the open (same safe order as
        // `open_with`), then clear the caches BEFORE publishing the
        // new snapshot: a concurrent reader either sees the old
        // generation with old cache entries or the new generation with
        // empty caches — never new data with stale entries.
        let fingerprint = index_fingerprint(&self.dir)?;
        let dataset = Arc::new(Dataset::open(&self.dir)?);
        self.frames.lock().clear();
        self.pool.lock().clear();
        state.generation += 1;
        state.fingerprint = fingerprint;
        state.dataset = dataset.clone();
        Ok((dataset, true))
    }

    /// The revalidated dataset snapshot (without the reopen flag).
    pub fn dataset(&self) -> Result<Arc<Dataset>, DatasetError> {
        self.snapshot().map(|(dataset, _)| dataset)
    }

    /// The grid-validated frame of consumer `idx`, from the frame
    /// cache when resident.
    pub fn consumer_frame(&self, idx: usize) -> Result<Arc<Frame>, DatasetError> {
        let (dataset, _) = self.snapshot()?;
        self.frame_entry(&dataset, idx).map(|(frame, _)| frame)
    }

    /// Execute `scan` against consumer `idx` through the resident
    /// caches. See [`ResidentStore::consumer_aggregates_with`].
    pub fn consumer_aggregates(
        &self,
        idx: usize,
        scan: &Scan,
    ) -> Result<(Aggregates, ScanReport), DatasetError> {
        self.consumer_aggregates_with(idx, scan, &mut Vec::new())
    }

    /// Execute `scan` against consumer `idx` through the resident
    /// caches: the frame comes from the frame cache when resident, and
    /// chunk decodes go through the chunk pool. The answer is
    /// bit-identical to [`Dataset::consumer_aggregates_with`] on a
    /// fresh open — the cache only substitutes the decode step inside
    /// the shared scan fold.
    ///
    /// Accounting: a warm query charges no `bytes_read_index` (the
    /// open — or the revalidation that reopened — paid the parse) and
    /// counts the index bytes it did not re-read as `bytes_saved`; a
    /// query that itself triggered a reopen charges them as read. A
    /// frame served from cache moves its `bytes_read` to `bytes_saved`
    /// and counts one extra `cache_hit`.
    pub fn consumer_aggregates_with(
        &self,
        idx: usize,
        scan: &Scan,
        scratch: &mut Vec<f64>,
    ) -> Result<(Aggregates, ScanReport), DatasetError> {
        let (dataset, reopened) = self.snapshot()?;
        let (frame, frame_hit) = self.frame_entry(&dataset, idx)?;
        let mut handle = PoolHandle { pool: &self.pool };
        let (agg, mut report) = scan.aggregates_cached(&frame, &mut handle, scratch)?;
        let index_bytes = dataset.consumer_index_bytes(idx)?;
        if reopened {
            report.bytes_read_index = index_bytes;
        } else {
            report.bytes_saved += index_bytes;
        }
        if frame_hit {
            report.cache_hits += 1;
            report.bytes_saved += report.bytes_read;
            report.bytes_read = 0;
        }
        Ok((agg, report))
    }

    /// Execute `scan` against the whole fleet on one revalidated
    /// snapshot, in the canonical fold order. Shard roll-ups answer
    /// stats-coverable queries without touching any file; on a warm
    /// handle the index bytes move from `bytes_read_index` to
    /// `bytes_saved` (they were parsed at open, not re-read here).
    pub fn fleet_aggregates(&self, scan: &Scan) -> Result<(Aggregates, ScanReport), DatasetError> {
        let (dataset, reopened) = self.snapshot()?;
        let (agg, mut report) = dataset.fleet_aggregates(scan)?;
        if !reopened {
            report.cache_hits += 1;
            report.bytes_saved += report.bytes_read_index;
            report.bytes_read_index = 0;
        }
        Ok((agg, report))
    }

    /// The frame of consumer `idx` from the cache, loading (and
    /// caching) on miss. The `bool` is `true` on a cache hit.
    fn frame_entry(
        &self,
        dataset: &Dataset,
        idx: usize,
    ) -> Result<(Arc<Frame>, bool), DatasetError> {
        if let Some(frame) = self.frames.lock().lookup(&idx) {
            return Ok((frame, true));
        }
        let frame = Arc::new(dataset.consumer_frame(idx)?);
        let bytes = frame.disk_bytes();
        self.frames.lock().insert(idx, frame.clone(), bytes);
        Ok((frame, false))
    }
}

/// Fingerprint the store's index file: `root.json` when present (the
/// sharded layout), else `manifest.json` — mirroring the layout sniff
/// in [`Dataset::open`].
fn index_fingerprint(dir: &Path) -> Result<IndexFingerprint, DatasetError> {
    let root = dir.join(crate::sharded::ROOT_FILE);
    let path = if root.is_file() {
        root
    } else {
        dir.join(MANIFEST_FILE)
    };
    let meta = std::fs::metadata(&path).map_err(|e| DatasetError::Io {
        path: path.display().to_string(),
        what: e.to_string(),
    })?;
    Ok(IndexFingerprint {
        len: meta.len(),
        mtime: meta.modified().ok(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ConsumerKind, DatasetWriter, SeriesCodec};
    use crate::{MeasuredSeries, ShardedWriter};
    use flextract_frame::Predicate;
    use flextract_time::{Resolution, TimeRange, Timestamp};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flextract_resident_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The deterministic series pattern shared with the sharded-store
    /// tests: `(i*37 + j*13) % 101`, scaled, with a gap at 100.
    fn series_for(i: usize, intervals: usize) -> MeasuredSeries {
        let values: Vec<f64> = (0..intervals)
            .map(|j| {
                let v = (i * 37 + j * 13) % 101;
                if v == 100 {
                    f64::NAN
                } else {
                    v as f64 * 0.01
                }
            })
            .collect();
        MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap()
    }

    fn export_sharded(dir: &Path, consumers: usize, capacity: usize) {
        let mut w = ShardedWriter::create(
            dir,
            "resident",
            "resident-store test fleet",
            ts("2013-03-18"),
            Resolution::MIN_15,
            96,
            SeriesCodec::BinaryV3,
            capacity,
        )
        .unwrap();
        for i in 0..consumers {
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &series_for(i, 96),
                None,
                None,
            )
            .unwrap();
        }
        w.finish().unwrap();
    }

    fn export_legacy(dir: &Path, consumers: usize, codec: SeriesCodec) {
        let mut w = DatasetWriter::create(
            dir,
            "resident",
            "resident-store legacy fleet",
            ts("2013-03-18"),
            Resolution::MIN_15,
            96,
            codec,
        )
        .unwrap();
        for i in 0..consumers {
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &series_for(i, 96),
                None,
                None,
            )
            .unwrap();
        }
        w.finish().unwrap();
    }

    fn agg_bits(a: &Aggregates) -> (usize, usize, usize, u64, Option<u64>, Option<u64>) {
        (
            a.intervals,
            a.observed,
            a.gaps,
            a.sum_kwh.to_bits(),
            a.min.map(f64::to_bits),
            a.max.map(f64::to_bits),
        )
    }

    #[test]
    fn lru_evicts_least_recent_under_budget_deterministically() {
        let mut lru: Lru<u32, Arc<Vec<f64>>> = Lru::new(100);
        let v = Arc::new(vec![0.0]);
        lru.insert(1, v.clone(), 40);
        lru.insert(2, v.clone(), 40);
        // Touch 1 so 2 is the LRU entry.
        assert!(lru.lookup(&1).is_some());
        lru.insert(3, v.clone(), 40);
        assert!(lru.lookup(&2).is_none(), "LRU entry evicted");
        assert!(lru.lookup(&1).is_some());
        assert!(lru.lookup(&3).is_some());
        assert_eq!(lru.bytes(), 80);
        // Re-inserting an existing key replaces, never double-counts.
        lru.insert(1, v.clone(), 60);
        assert_eq!(lru.bytes(), 40 + 60);
        // An entry above the whole budget is declined.
        lru.insert(9, v, 101);
        assert!(lru.lookup(&9).is_none());
        lru.clear();
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.bytes(), 0);
    }

    #[test]
    fn warm_queries_are_bit_identical_to_fresh_opens() {
        let dir = scratch("warm");
        export_sharded(&dir, 10, 4);
        let store = ResidentStore::open(&dir).unwrap();
        let slice = TimeRange::new(ts("2013-03-18 01:00"), ts("2013-03-18 07:00")).unwrap();
        let scans = [
            Scan::new(),
            Scan::new().time_slice(slice),
            Scan::new().with_predicate(Predicate::MaxAbove(0.5)),
        ];
        for scan in &scans {
            for idx in [0, 5, 9] {
                // Prime, then query warm; compare against a fresh open.
                let _ = store.consumer_aggregates(idx, scan).unwrap();
                let (warm, warm_rep) = store.consumer_aggregates(idx, scan).unwrap();
                let fresh_ds = Dataset::open(&dir).unwrap();
                let (fresh, _) = fresh_ds.consumer_aggregates(idx, scan).unwrap();
                assert_eq!(agg_bits(&warm), agg_bits(&fresh), "idx {idx}");
                assert!(warm_rep.cache_hits > 0, "warm pass must hit: {warm_rep:?}");
                assert_eq!(warm_rep.bytes_read, 0, "warm frame re-read: {warm_rep:?}");
                assert_eq!(warm_rep.bytes_read_index, 0, "{warm_rep:?}");
                assert!(warm_rep.bytes_saved > 0, "{warm_rep:?}");
            }
            let (warm_fleet, fleet_rep) = store.fleet_aggregates(scan).unwrap();
            let fresh_ds = Dataset::open(&dir).unwrap();
            let (fresh_fleet, _) = fresh_ds.fleet_aggregates(scan).unwrap();
            assert_eq!(agg_bits(&warm_fleet), agg_bits(&fresh_fleet));
            assert_eq!(fleet_rep.bytes_read_index, 0, "{fleet_rep:?}");
        }
        assert_eq!(store.generation(), 1, "no commit happened");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_append_bumps_the_generation_and_serves_new_data() {
        let dir = scratch("append");
        export_sharded(&dir, 6, 4);
        let store = ResidentStore::open(&dir).unwrap();
        let (before, _) = store.fleet_aggregates(&Scan::new()).unwrap();
        assert_eq!(store.generation(), 1);
        assert!(store.cache_stats().generation == 1);

        let mut w = ShardedWriter::append(&dir).unwrap();
        for i in 6..9 {
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &series_for(i, 96),
                None,
                None,
            )
            .unwrap();
        }
        w.finish().unwrap();

        let (after, _) = store.fleet_aggregates(&Scan::new()).unwrap();
        assert_eq!(store.generation(), 2, "rename-commit must revalidate");
        assert_eq!(after.intervals, 9 * 96);
        assert!(after.intervals > before.intervals);
        // The caches were cleared at the generation bump.
        let fresh = Dataset::open(&dir).unwrap();
        let (expect, _) = fresh.fleet_aggregates(&Scan::new()).unwrap();
        assert_eq!(agg_bits(&after), agg_bits(&expect));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_bumps_the_generation_once_committed() {
        let dir = scratch("compact");
        export_sharded(&dir, 3, 4);
        let mut w = ShardedWriter::append(&dir).unwrap();
        for i in 3..9 {
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &series_for(i, 96),
                None,
                None,
            )
            .unwrap();
        }
        w.finish().unwrap();

        let store = ResidentStore::open(&dir).unwrap();
        let (before, _) = store.fleet_aggregates(&Scan::new()).unwrap();
        let g = store.generation();
        crate::sharded::compact(&dir).unwrap();
        let (after, _) = store.fleet_aggregates(&Scan::new()).unwrap();
        assert!(store.generation() > g, "compaction commit must reopen");
        // Compaction rewrites the layout, never the data.
        assert_eq!(agg_bits(&after), agg_bits(&before));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_tmp_files_do_not_invalidate() {
        let dir = scratch("tmp");
        export_sharded(&dir, 6, 4);
        let store = ResidentStore::open(&dir).unwrap();
        let (before, _) = store.fleet_aggregates(&Scan::new()).unwrap();
        // A crashed writer leaves `root.json.tmp` and orphan shard
        // directories — none of it committed.
        std::fs::write(dir.join("root.json.tmp"), b"{ half-written").unwrap();
        std::fs::create_dir_all(dir.join("shards/0099")).unwrap();
        std::fs::write(dir.join("shards/0099/garbage.fxm"), b"junk").unwrap();
        let (after, _) = store.fleet_aggregates(&Scan::new()).unwrap();
        assert_eq!(store.generation(), 1, "no commit, no reopen");
        assert_eq!(agg_bits(&after), agg_bits(&before));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_layout_revalidates_on_manifest_rewrite() {
        let dir = scratch("legacy");
        export_legacy(&dir, 3, SeriesCodec::Binary);
        let store = ResidentStore::open(&dir).unwrap();
        let (a, first_rep) = store.consumer_aggregates(0, &Scan::new()).unwrap();
        let (_, warm_rep) = store.consumer_aggregates(0, &Scan::new()).unwrap();
        assert!(warm_rep.cache_hits >= first_rep.cache_hits);
        // Re-export with one more consumer: legacy writes are not
        // atomic, but the finished manifest has a new length.
        export_legacy(&dir, 4, SeriesCodec::Binary);
        let ds = store.dataset().unwrap();
        assert_eq!(ds.len(), 4);
        assert!(store.generation() >= 2);
        let (b, _) = store.consumer_aggregates(0, &Scan::new()).unwrap();
        assert_eq!(agg_bits(&a), agg_bits(&b), "consumer 0 unchanged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_pool_budget_is_enforced() {
        let dir = scratch("budget");
        export_legacy(&dir, 4, SeriesCodec::BinaryV1);
        // Budget fits exactly one 96-interval chunk payload (768 B):
        // scanning v1 frames (no stats → every chunk decodes) keeps at
        // most one payload resident.
        let store = ResidentStore::open_with(
            &dir,
            ResidentConfig {
                chunk_pool_bytes: 800,
                frame_cache_bytes: 1 << 20,
            },
        )
        .unwrap();
        for idx in 0..4 {
            let _ = store.consumer_aggregates(idx, &Scan::new()).unwrap();
        }
        let stats = store.cache_stats();
        assert!(stats.chunk_entries <= 1, "{stats:?}");
        assert!(stats.chunk_bytes <= 800, "{stats:?}");
        assert_eq!(stats.frame_entries, 4, "{stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_registry_returns_one_handle_per_directory() {
        let dir = scratch("sharedreg");
        export_legacy(&dir, 2, SeriesCodec::Binary);
        let a = ResidentStore::shared(&dir).unwrap();
        let b = ResidentStore::shared(&dir).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Priming through one alias is visible through the other.
        let _ = a.consumer_aggregates(0, &Scan::new()).unwrap();
        let (_, rep) = b.consumer_aggregates(0, &Scan::new()).unwrap();
        assert!(rep.cache_hits > 0, "{rep:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
