//! # flextract-dataset
//!
//! Metered-series ingestion for the flextract pipeline: a chunked,
//! memory-light columnar store for measured consumer series, the
//! degradation operators that turn simulated fleets into realistic
//! metered feeds, and the cleaning stage that makes measured data
//! extractable again.
//!
//! The paper's premise is extracting flexibilities **from electricity
//! time series** — recorded meter data — but real meter feeds are not
//! the pristine series a simulator emits: they arrive at coarse
//! granularity (the paper's own "only 15 min" caveat, §4), with holes
//! from meter and transmission outages, with spurious spikes, and with
//! measurement noise. This crate models that reality explicitly:
//!
//! * [`MeasuredSeries`] — a raw metered series in which gaps are
//!   first-class (`NaN` intervals), unlike
//!   [`TimeSeries`](flextract_series::TimeSeries) whose invariant is
//!   all-finite values (re-exported from
//!   [`flextract_frame`], which owns the columnar substrate);
//! * [`codec`] — the chunked binary formats (`FXM2` with per-chunk
//!   statistics, legacy `FXM1`) delegated to
//!   [`flextract_frame::fxm`], and the `interval_start,kwh` CSV format
//!   (an empty `kwh` field is a gap), all loss-free;
//! * [`degrade`] — seeded, deterministic degradation operators
//!   (downsampling, measurement noise, anomaly spikes, gap injection)
//!   applied when a simulated fleet is exported to the metered format;
//! * [`ingest`] — the cleaning stage: gap-fill then anomaly-screen,
//!   producing an extraction-ready `TimeSeries` plus a
//!   [`CleaningReport`] of what was repaired;
//! * [`store`] — the on-disk dataset: one `manifest.json` naming the
//!   fleet plus one series file per consumer (and, for exported
//!   datasets, the simulator ground truth), loadable consumer by
//!   consumer — wholly, or as **ranged reads** that decode only the
//!   chunks overlapping a time slice, or as streamed chunk-stat
//!   aggregates that may touch no payload at all;
//! * [`resident`] — the warm-path layer: a thread-safe
//!   [`ResidentStore`] handle that parses indexes once, caches decoded
//!   frames and chunk payloads under byte budgets, and invalidates by
//!   generation at the store's rename-commit point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod degrade;
pub mod ingest;
pub mod resident;
pub mod sharded;
pub mod store;

pub use degrade::Degradation;
pub use flextract_frame::{
    Aggregates, ChunkCache, ChunkStats, Frame, FrameError, MeasuredSeries, Predicate, Scan,
    ScanReport,
};
pub use ingest::{CleaningConfig, CleaningReport};
pub use resident::{CacheStats, ResidentConfig, ResidentStore};
pub use sharded::{
    compact, CompactionSummary, RootIndex, ShardSummary, ShardedWriter, DEFAULT_SHARD_CAPACITY,
    ROOT_FILE, SHARDS_DIR,
};
pub use store::{
    ConsumerEntry, ConsumerKind, Dataset, DatasetRecord, DatasetWriter, Manifest, SeriesCodec,
    MANIFEST_FILE,
};

use flextract_series::SeriesError;

/// Errors surfaced by dataset reading, writing, and cleaning.
///
/// Wherever a failure originates in a file, the error names the file —
/// and for row-shaped formats also the row and column — so a user can
/// fix the offending line rather than guess.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// A file or directory could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The underlying OS error.
        what: String,
    },
    /// `manifest.json` is missing, malformed, or inconsistent.
    Manifest {
        /// The manifest path.
        path: String,
        /// What is wrong with it.
        what: String,
    },
    /// A CSV series file has a malformed or misplaced row.
    Csv {
        /// The offending file.
        file: String,
        /// 1-based row number (counting every line, header included).
        row: usize,
        /// Which column is at fault (`interval_start` or `kwh`).
        column: &'static str,
        /// What is wrong with the value.
        what: String,
    },
    /// A binary series file failed to decode.
    Codec {
        /// The offending file.
        file: String,
        /// What is wrong with the buffer.
        what: String,
    },
    /// A series file decoded but violates the dataset's declared grid
    /// (start, resolution, interval count) or another invariant.
    Invalid {
        /// The offending file.
        file: String,
        /// Which invariant is violated.
        what: String,
    },
    /// A consumer index outside the dataset's consumer directory.
    OutOfRange {
        /// The requested index.
        index: usize,
        /// Number of consumers in the dataset.
        len: usize,
        /// The dataset directory, so the message names which store was
        /// addressed.
        dir: String,
    },
    /// A manifest entry references a series file that no longer exists
    /// on disk (renamed or deleted since export).
    MissingSeriesFile {
        /// The consumer id whose entry references the file.
        consumer: String,
        /// The expected path of the missing file.
        path: String,
    },
    /// A series-level operation failed during cleaning or degradation.
    Series(SeriesError),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Io { path, what } => write!(f, "cannot access {path}: {what}"),
            DatasetError::Manifest { path, what } => {
                write!(f, "invalid dataset manifest {path}: {what}")
            }
            DatasetError::Csv {
                file,
                row,
                column,
                what,
            } => write!(f, "{file}: row {row}, column `{column}`: {what}"),
            DatasetError::Codec { file, what } => write!(f, "{file}: codec error: {what}"),
            DatasetError::Invalid { file, what } => write!(f, "{file}: {what}"),
            DatasetError::OutOfRange { index, len, dir } => {
                write!(
                    f,
                    "consumer index {index} out of range for dataset {dir} \
                     (valid range 0..{len})"
                )
            }
            DatasetError::MissingSeriesFile { consumer, path } => {
                write!(
                    f,
                    "consumer `{consumer}` references missing series file {path} \
                     (renamed or deleted since export?)"
                )
            }
            DatasetError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<SeriesError> for DatasetError {
    fn from(e: SeriesError) -> Self {
        DatasetError::Series(e)
    }
}

impl From<FrameError> for DatasetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Codec { file, what } => DatasetError::Codec { file, what },
            // The typed trailing-bytes error keeps its offset in the
            // message; frame-level callers can still match the typed
            // variant directly.
            FrameError::TrailingBytes {
                file,
                offset,
                trailing,
            } => DatasetError::Codec {
                file,
                what: format!(
                    "{trailing} trailing byte(s) after the final chunk at byte offset {offset}"
                ),
            },
            FrameError::ShortRead {
                file,
                offset,
                needed,
                len,
            } => DatasetError::Codec {
                file,
                what: format!(
                    "need {needed} byte(s) at byte offset {offset}, but the buffer ends at {len}"
                ),
            },
            FrameError::ZeroChunkLen => DatasetError::Invalid {
                file: "<encode>".to_string(),
                what: "chunk length must be at least 1 (got 0)".to_string(),
            },
            FrameError::Scan { what } => DatasetError::Invalid {
                file: "<scan>".to_string(),
                what,
            },
            FrameError::Series(e) => DatasetError::Series(e),
        }
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_names_file_row_and_column() {
        let e = DatasetError::Csv {
            file: "datasets/x/consumer_0.csv".into(),
            row: 17,
            column: "kwh",
            what: "not a number: `abc`".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("consumer_0.csv"), "{msg}");
        assert!(msg.contains("row 17"), "{msg}");
        assert!(msg.contains("`kwh`"), "{msg}");
        assert!(msg.contains("abc"), "{msg}");

        let e = DatasetError::OutOfRange {
            index: 9,
            len: 3,
            dir: "datasets/x".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("index 9"), "{msg}");
        assert!(msg.contains("0..3"), "{msg}");
        assert!(msg.contains("datasets/x"), "{msg}");

        let e = DatasetError::MissingSeriesFile {
            consumer: "7".into(),
            path: "datasets/x/consumer_7.fxm".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("`7`"), "{msg}");
        assert!(msg.contains("consumer_7.fxm"), "{msg}");

        let e: DatasetError = SeriesError::Empty.into();
        assert!(e.to_string().contains("series"));
    }
}
