//! The sharded dataset layout: a million-consumer store that opens in
//! `O(shards)`, prunes whole shards from roll-up statistics, and grows
//! by crash-safe append and compaction.
//!
//! ```text
//! <dir>/
//!   root.json                — root index: grid + one summary per shard
//!   shards/
//!     0000/
//!       manifest.json        — an ordinary single-manifest dataset
//!       consumer_<id>.fxm    — series files, exactly the legacy layout
//!       ...
//!     0001/
//!       ...
//! ```
//!
//! Each shard directory **is** a legacy dataset, so every reader
//! primitive (ranged reads, stat pushdown, grid validation) is reused
//! unchanged one level down. What the root index adds is a per-shard
//! [`ShardSummary`] — consumer count, time coverage, and min/max/sum/gap
//! roll-ups folded from the FXM2 chunk statistics in the canonical
//! order — so a query can exclude a whole shard without opening its
//! manifest, the same statistics-only-exclude contract as chunk
//! pushdown, one level up.
//!
//! # Crash safety
//!
//! `root.json` is the **only** commit point, swapped by
//! write-temp-then-rename. Writers (export, append, compaction) only
//! ever create *new* shard directories that no committed root
//! references; a crash at any intermediate step leaves the previous
//! root — and every shard it references — byte-for-byte intact, with at
//! worst some orphaned files that the next successful commit sweeps
//! out. Shard ids are allocated from `next_shard_id`, which only
//! advances on commit: a committed id is never reused, while the
//! orphans of a crashed session are safely overwritten by the next one.
//!
//! # Append and compaction
//!
//! Every append session seals its consumers into fresh shard
//! directories (at most [`RootIndex::shard_capacity`] consumers each),
//! so repeated small appends accumulate small shards. [`compact`]
//! rewrites the store into canonical capacity-aligned shards — the same
//! grouping a fresh export produces — copying series files byte-for-byte
//! and recomputing roll-ups, then swaps the root and removes every
//! unreferenced shard directory. Legacy single-manifest directories
//! remain fully readable ([`crate::Dataset::open`] sniffs for
//! `root.json` first, like the codec sniffing that keeps
//! `SeriesCodec::BinaryV1` files loadable).

use crate::degrade::Degradation;
use crate::store::{
    frame_from_raw, read_file, ConsumerEntry, ConsumerKind, Dataset, DatasetWriter, SeriesCodec,
    FORMAT_VERSION,
};
use crate::{DatasetError, MeasuredSeries};
use flextract_frame::{Aggregates, ChunkStats, Predicate, Scan};
use flextract_time::{Resolution, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The root-index file name inside a sharded dataset directory.
pub const ROOT_FILE: &str = "root.json";

/// The sub-directory holding the shard directories.
pub const SHARDS_DIR: &str = "shards";

/// Default consumers per shard for sharded exports.
pub const DEFAULT_SHARD_CAPACITY: usize = 512;

/// One shard's entry in the root index: where it lives, how many
/// consumers it holds, and the statistics roll-up that lets queries
/// prune it without opening anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Shard id; the directory name is the id zero-padded to 4 digits.
    pub id: u64,
    /// Committed consumer count (authoritative over the shard
    /// manifest's own list).
    pub consumers: usize,
    /// How many of those consumers carry a ground-truth total series.
    pub with_truth: usize,
    /// Total missing intervals across the shard's measured series.
    pub gap_count: usize,
    /// Smallest observed value anywhere in the shard (kWh per
    /// interval); `None` when nothing is observed.
    pub min_kwh: Option<f64>,
    /// Largest observed value anywhere in the shard.
    pub max_kwh: Option<f64>,
    /// Sum of observed values, folded per chunk, then per consumer,
    /// then across consumers in index order.
    pub sum_kwh: f64,
    /// First instant covered by the shard's series.
    pub start: String,
    /// Interval count covered by the shard's series.
    pub intervals: usize,
}

impl ShardSummary {
    /// The shard's directory name under [`SHARDS_DIR`].
    pub fn dir_name(&self) -> String {
        format!("{:04}", self.id)
    }

    /// The roll-up as an [`Aggregates`] over every interval of every
    /// consumer in the shard — the statistics-only answer to a
    /// whole-shard, no-predicate scan.
    pub fn aggregates(&self) -> Aggregates {
        let intervals = self.consumers * self.intervals;
        Aggregates {
            intervals,
            observed: intervals.saturating_sub(self.gap_count),
            gaps: self.gap_count,
            sum_kwh: self.sum_kwh,
            min: self.min_kwh,
            max: self.max_kwh,
        }
    }

    /// `true` when the roll-up proves `predicate` cannot match any
    /// chunk of any consumer in the shard — the shard-level mirror of
    /// chunk-statistics exclusion (statistics only ever exclude).
    pub fn excludes(&self, predicate: &Predicate) -> bool {
        match predicate {
            Predicate::HasGaps => self.gap_count == 0,
            Predicate::MaxAbove(t) => self.max_kwh.is_none_or(|m| m <= *t),
            Predicate::MinBelow(t) => self.min_kwh.is_none_or(|m| m >= *t),
        }
    }

    /// The time range covered by the shard's series.
    pub fn coverage(&self, resolution: Resolution) -> Result<TimeRange, DatasetError> {
        let start: Timestamp = self.start.parse().map_err(|e| DatasetError::Manifest {
            path: ROOT_FILE.to_string(),
            what: format!("shard {} start `{}`: {e}", self.id, self.start),
        })?;
        TimeRange::starting_at(start, resolution.interval() * self.intervals as i64).map_err(|e| {
            DatasetError::Manifest {
                path: ROOT_FILE.to_string(),
                what: format!("shard {} coverage: {e}", self.id),
            }
        })
    }
}

/// The root index of a sharded dataset: the declared grid (shared by
/// every shard) plus one [`ShardSummary`] per shard in consumer-index
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootIndex {
    /// Format version (currently [`FORMAT_VERSION`], shared with the
    /// legacy manifest).
    pub format: u32,
    /// Dataset name.
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// First instant covered by every measured series.
    pub start: String,
    /// Resolution of every measured series, in minutes.
    pub resolution_min: i64,
    /// Interval count of every measured series.
    pub intervals: usize,
    /// How the series files are encoded.
    pub codec: SeriesCodec,
    /// Name of the scenario this dataset was exported from, if any.
    pub source_scenario: Option<String>,
    /// The degradation applied at export time, if any.
    pub degradation: Option<Degradation>,
    /// The export seed (degradation RNG base), if exported.
    pub seed: Option<u64>,
    /// Maximum consumers per shard (writers seal a shard when it
    /// fills).
    pub shard_capacity: usize,
    /// The next shard id a writer may allocate; only ever advances, so
    /// committed shard ids are never reused.
    pub next_shard_id: u64,
    /// The shards, in consumer-index order.
    pub shards: Vec<ShardSummary>,
}

impl RootIndex {
    /// The declared start timestamp, parsed.
    pub fn start_timestamp(&self) -> Result<Timestamp, DatasetError> {
        self.start.parse().map_err(|e| DatasetError::Manifest {
            path: ROOT_FILE.to_string(),
            what: format!("start `{}`: {e}", self.start),
        })
    }

    /// The declared resolution, parsed.
    pub fn resolution(&self) -> Result<Resolution, DatasetError> {
        Resolution::from_minutes(self.resolution_min).map_err(|e| DatasetError::Manifest {
            path: ROOT_FILE.to_string(),
            what: format!("resolution_min {}: {e}", self.resolution_min),
        })
    }

    /// Total consumers across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.consumers).sum()
    }

    /// `true` when the root lists no shards (never true once
    /// committed — writers refuse to commit an empty store).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

fn io_err(path: &Path, e: std::io::Error) -> DatasetError {
    DatasetError::Io {
        path: path.display().to_string(),
        what: e.to_string(),
    }
}

/// Write `bytes` to `path` atomically: write a `.tmp` sibling, then
/// rename over the destination. A crash between the two steps leaves
/// the previous file untouched.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DatasetError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Parse and validate `root.json` in `dir`.
pub(crate) fn read_root(dir: &Path) -> Result<RootIndex, DatasetError> {
    let path = dir.join(ROOT_FILE);
    let raw = read_file(&path)?;
    let text = String::from_utf8(raw).map_err(|_| DatasetError::Manifest {
        path: path.display().to_string(),
        what: "not valid UTF-8".to_string(),
    })?;
    let root: RootIndex = serde_json::from_str(&text).map_err(|e| DatasetError::Manifest {
        path: path.display().to_string(),
        what: e.to_string(),
    })?;
    let invalid = |what: String| DatasetError::Manifest {
        path: path.display().to_string(),
        what,
    };
    if root.format != FORMAT_VERSION {
        return Err(invalid(format!(
            "unsupported format version {} (this build reads {FORMAT_VERSION})",
            root.format
        )));
    }
    if root.shards.is_empty() {
        return Err(invalid("sharded dataset has no shards".to_string()));
    }
    if root.shard_capacity == 0 {
        return Err(invalid("shard_capacity must be at least 1".to_string()));
    }
    let start = root.start_timestamp()?;
    let res = root.resolution()?;
    if !start.is_aligned(res) {
        return Err(invalid(format!(
            "start {} is not aligned to the {}-min grid",
            root.start, root.resolution_min
        )));
    }
    let mut seen = std::collections::BTreeSet::new();
    for s in &root.shards {
        if !seen.insert(s.id) {
            return Err(invalid(format!("duplicate shard id {}", s.id)));
        }
        if s.consumers == 0 {
            return Err(invalid(format!("shard {} records no consumers", s.id)));
        }
        if s.id >= root.next_shard_id {
            return Err(invalid(format!(
                "shard id {} is not below next_shard_id {}",
                s.id, root.next_shard_id
            )));
        }
    }
    Ok(root)
}

/// Open shard `summary` of the sharded dataset at `dir` as an ordinary
/// single-manifest [`Dataset`], validating it against the root index:
/// same grid, same codec, and exactly the committed consumer count.
pub(crate) fn open_shard(
    dir: &Path,
    root: &RootIndex,
    summary: &ShardSummary,
) -> Result<Dataset, DatasetError> {
    let shard_dir = dir.join(SHARDS_DIR).join(summary.dir_name());
    let ds = Dataset::open_legacy(&shard_dir)?;
    let invalid = |what: String| DatasetError::Manifest {
        path: shard_dir.join(crate::MANIFEST_FILE).display().to_string(),
        what,
    };
    let m = ds.legacy_manifest()?;
    if m.consumers.len() != summary.consumers {
        return Err(invalid(format!(
            "shard manifest lists {} consumer(s) but the root index records {}",
            m.consumers.len(),
            summary.consumers
        )));
    }
    if m.start != root.start || m.resolution_min != root.resolution_min {
        return Err(invalid(format!(
            "shard grid ({} @ {} min) does not match the root grid ({} @ {} min)",
            m.start, m.resolution_min, root.start, root.resolution_min
        )));
    }
    if m.intervals != root.intervals {
        return Err(invalid(format!(
            "shard declares {} intervals but the root declares {}",
            m.intervals, root.intervals
        )));
    }
    if m.codec != root.codec {
        return Err(invalid(format!(
            "shard codec {} does not match the root codec {}",
            m.codec.label(),
            root.codec.label()
        )));
    }
    Ok(ds)
}

/// The open tail shard of a [`ShardedWriter`]: an ordinary
/// [`DatasetWriter`] plus the running roll-up.
#[derive(Debug)]
struct TailShard {
    id: u64,
    writer: DatasetWriter,
    consumers: usize,
    with_truth: usize,
    agg: Aggregates,
}

/// Writes (or appends to) a sharded dataset, consumer by consumer.
///
/// Consumers stream into shard directories of at most
/// [`RootIndex::shard_capacity`] each; every directory this writer
/// touches is new (unreferenced by the committed root), and nothing
/// becomes visible to readers until [`ShardedWriter::finish`] swaps
/// `root.json` atomically. Dropping the writer without calling
/// `finish` aborts the session: the committed store is untouched.
#[derive(Debug)]
pub struct ShardedWriter {
    dir: PathBuf,
    root: RootIndex,
    next_id: u64,
    tail: Option<TailShard>,
}

impl ShardedWriter {
    /// Create a fresh sharded dataset at `dir` (replacing any dataset
    /// committed there once `finish` runs). `shard_capacity` is the
    /// maximum number of consumers per shard.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        dir: impl AsRef<Path>,
        name: &str,
        description: &str,
        start: Timestamp,
        resolution: Resolution,
        intervals: usize,
        codec: SeriesCodec,
        shard_capacity: usize,
    ) -> Result<ShardedWriter, DatasetError> {
        let dir = dir.as_ref().to_path_buf();
        if shard_capacity == 0 {
            return Err(DatasetError::Invalid {
                file: dir.display().to_string(),
                what: "shard capacity must be at least 1".to_string(),
            });
        }
        if codec == SeriesCodec::Csv && intervals < 2 {
            return Err(DatasetError::Invalid {
                file: dir.display().to_string(),
                what: format!(
                    "the CSV codec needs at least 2 intervals (got {intervals}); \
                     use the binary codec for single-interval series"
                ),
            });
        }
        let shards_dir = dir.join(SHARDS_DIR);
        std::fs::create_dir_all(&shards_dir).map_err(|e| io_err(&shards_dir, e))?;
        // Re-exporting over a committed sharded store must not write
        // into directories its still-valid root references: resume id
        // allocation past the old root's high-water mark so a crash
        // mid-export leaves the old store fully intact.
        let next_id = if dir.join(ROOT_FILE).is_file() {
            read_root(&dir).map(|r| r.next_shard_id).unwrap_or(0)
        } else {
            0
        };
        Ok(ShardedWriter {
            dir,
            root: RootIndex {
                format: FORMAT_VERSION,
                name: name.to_string(),
                description: description.to_string(),
                start: start.to_string(),
                resolution_min: resolution.minutes(),
                intervals,
                codec,
                source_scenario: None,
                degradation: None,
                seed: None,
                shard_capacity,
                next_shard_id: next_id,
                shards: Vec::new(),
            },
            next_id,
            tail: None,
        })
    }

    /// Open the committed sharded dataset at `dir` for appending:
    /// existing shards are kept as-is, new consumers stream into fresh
    /// shard directories, and nothing is visible until `finish`
    /// commits. A session that crashes (or is dropped) leaves the
    /// committed store untouched.
    pub fn append(dir: impl AsRef<Path>) -> Result<ShardedWriter, DatasetError> {
        let dir = dir.as_ref().to_path_buf();
        let root = read_root(&dir)?;
        let next_id = root.next_shard_id;
        Ok(ShardedWriter {
            dir,
            root,
            next_id,
            tail: None,
        })
    }

    /// Record export provenance in the root index (and in every shard
    /// manifest sealed from now on).
    pub fn set_provenance(&mut self, source_scenario: &str, degradation: Degradation, seed: u64) {
        self.root.source_scenario = Some(source_scenario.to_string());
        self.root.degradation = Some(degradation);
        self.root.seed = Some(seed);
    }

    /// The declared grid, parsed from the root.
    fn grid(&self) -> Result<(Timestamp, Resolution), DatasetError> {
        Ok((self.root.start_timestamp()?, self.root.resolution()?))
    }

    /// Open a fresh tail shard under the next never-committed id.
    fn open_tail(&mut self) -> Result<(), DatasetError> {
        let (start, resolution) = self.grid()?;
        let id = self.next_id;
        self.next_id += 1;
        let shard_dir = self.dir.join(SHARDS_DIR).join(format!("{id:04}"));
        let writer = DatasetWriter::create(
            &shard_dir,
            &self.root.name,
            &self.root.description,
            start,
            resolution,
            self.root.intervals,
            self.root.codec,
        )?;
        self.tail = Some(TailShard {
            id,
            writer,
            consumers: 0,
            with_truth: 0,
            agg: Aggregates::default(),
        });
        Ok(())
    }

    /// Seal the open tail shard: write its manifest and fold its
    /// roll-up into the root (in memory — nothing is committed until
    /// `finish`).
    fn seal_tail(&mut self) -> Result<(), DatasetError> {
        let Some(mut tail) = self.tail.take() else {
            return Ok(());
        };
        if let (Some(scenario), Some(degradation), Some(seed)) = (
            self.root.source_scenario.as_deref(),
            self.root.degradation.clone(),
            self.root.seed,
        ) {
            tail.writer.set_provenance(scenario, degradation, seed);
        }
        tail.writer.finish()?;
        self.root.shards.push(ShardSummary {
            id: tail.id,
            consumers: tail.consumers,
            with_truth: tail.with_truth,
            gap_count: tail.agg.gaps,
            min_kwh: tail.agg.min,
            max_kwh: tail.agg.max,
            sum_kwh: tail.agg.sum_kwh,
            start: self.root.start.clone(),
            intervals: self.root.intervals,
        });
        Ok(())
    }

    /// Rotate to a fresh tail shard if the current one is missing or
    /// full, then hand it back.
    fn tail_for_write(&mut self) -> Result<&mut TailShard, DatasetError> {
        let full = self
            .tail
            .as_ref()
            .is_some_and(|t| t.consumers >= self.root.shard_capacity);
        if full {
            self.seal_tail()?;
        }
        if self.tail.is_none() {
            self.open_tail()?;
        }
        self.tail.as_mut().ok_or_else(|| DatasetError::Invalid {
            file: ROOT_FILE.to_string(),
            what: "internal: no open tail shard".to_string(),
        })
    }

    /// Append one consumer: the measured series plus optional ground
    /// truth, exactly like [`DatasetWriter::write_consumer`], routed
    /// into the current tail shard.
    pub fn write_consumer(
        &mut self,
        id: &str,
        kind: ConsumerKind,
        measured: &MeasuredSeries,
        truth_total: Option<&flextract_series::TimeSeries>,
        truth_flex: Option<&flextract_series::TimeSeries>,
    ) -> Result<(), DatasetError> {
        let tail = self.tail_for_write()?;
        tail.writer
            .write_consumer(id, kind, measured, truth_total, truth_flex)?;
        tail.agg.merge(&consumer_rollup(measured.values()));
        tail.consumers += 1;
        tail.with_truth += usize::from(truth_total.is_some());
        Ok(())
    }

    /// Adopt an already-encoded consumer byte-for-byte: write its raw
    /// series files into the tail shard and fold its roll-up from the
    /// stored statistics. The compaction primitive — no re-encoding, so
    /// the copied files are bit-identical to their source.
    fn adopt_consumer(
        &mut self,
        entry: &ConsumerEntry,
        files: &[(String, Vec<u8>)],
    ) -> Result<(), DatasetError> {
        let measured_agg = files
            .iter()
            .find(|(name, _)| *name == entry.measured)
            .map(|(name, raw)| {
                let frame = frame_from_raw(raw.clone(), name)?;
                Scan::new()
                    .aggregates(&frame)
                    .map(|(agg, _)| agg)
                    .map_err(DatasetError::from)
            })
            .transpose()?
            .ok_or_else(|| DatasetError::Invalid {
                file: entry.measured.clone(),
                what: "internal: adopted consumer carries no measured bytes".to_string(),
            })?;
        let tail = self.tail_for_write()?;
        tail.writer.adopt_consumer_raw(entry, files)?;
        tail.agg.merge(&measured_agg);
        tail.consumers += 1;
        tail.with_truth += usize::from(entry.truth_total.is_some());
        Ok(())
    }

    /// Seal the tail shard, commit the new `root.json` atomically, and
    /// sweep shard directories the committed root does not reference
    /// (orphans of crashed sessions, stale shards of a re-export).
    /// Returns the committed root index.
    pub fn finish(mut self) -> Result<RootIndex, DatasetError> {
        self.seal_tail()?;
        if self.root.shards.is_empty() {
            return Err(DatasetError::Invalid {
                file: self.dir.display().to_string(),
                what: "sharded dataset has no consumers".to_string(),
            });
        }
        self.root.next_shard_id = self.next_id;
        let path = self.dir.join(ROOT_FILE);
        let json =
            serde_json::to_string_pretty(&self.root).map_err(|e| DatasetError::Manifest {
                path: path.display().to_string(),
                what: format!("serialise: {e}"),
            })? + "\n";
        write_atomic(&path, json.as_bytes())?;
        sweep_unreferenced(&self.dir, &self.root)?;
        // A sharded store has no top-level manifest.json; remove one
        // left behind by a legacy dataset previously exported here.
        let legacy = self.dir.join(crate::MANIFEST_FILE);
        if legacy.is_file() {
            std::fs::remove_file(&legacy).map_err(|e| io_err(&legacy, e))?;
        }
        Ok(self.root)
    }
}

/// Remove every directory under `shards/` the root does not reference.
/// Runs only after a successful commit, so everything it deletes is
/// invisible to readers.
fn sweep_unreferenced(dir: &Path, root: &RootIndex) -> Result<(), DatasetError> {
    let referenced: std::collections::BTreeSet<String> =
        root.shards.iter().map(|s| s.dir_name()).collect();
    let shards_dir = dir.join(SHARDS_DIR);
    let entries = std::fs::read_dir(&shards_dir).map_err(|e| io_err(&shards_dir, e))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        if entry.path().is_dir() && !referenced.contains(&name) {
            std::fs::remove_dir_all(entry.path()).map_err(|e| io_err(&entry.path(), e))?;
        }
    }
    Ok(())
}

/// The per-consumer roll-up: chunk statistics folded in chunk order —
/// exactly the fold a full scan of the stored FXM2 file performs, so
/// the stored summary is bit-identical to what a scan would compute.
pub(crate) fn consumer_rollup(values: &[f64]) -> Aggregates {
    let mut agg = Aggregates::default();
    for chunk in values.chunks(crate::codec::DEFAULT_CHUNK_LEN) {
        agg.absorb(&ChunkStats::from_values(chunk), chunk.len());
    }
    agg
}

/// What [`compact`] did, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionSummary {
    /// Shards before compaction.
    pub shards_before: usize,
    /// Shards after compaction.
    pub shards_after: usize,
    /// Total consumers (unchanged by compaction).
    pub consumers: usize,
    /// The committed root index.
    pub root: RootIndex,
}

/// Rewrite the sharded dataset at `dir` into canonical capacity-aligned
/// shards: series files are copied byte-for-byte into fresh shard
/// directories grouped exactly as a fresh export would group them,
/// roll-ups are recomputed from the stored statistics, and the new root
/// is committed atomically — the old root (and every shard it
/// references) stays valid until the swap, after which unreferenced
/// directories are swept.
pub fn compact(dir: impl AsRef<Path>) -> Result<CompactionSummary, DatasetError> {
    let dir = dir.as_ref();
    let ds = Dataset::open(dir)?;
    let Some(root) = ds.root() else {
        return Err(DatasetError::Manifest {
            path: dir.join(crate::MANIFEST_FILE).display().to_string(),
            what: "not a sharded dataset (a single-manifest layout has nothing to compact)"
                .to_string(),
        });
    };
    let shards_before = root.shards.len();
    let consumers = ds.len();
    let mut writer = ShardedWriter {
        dir: dir.to_path_buf(),
        root: RootIndex {
            shards: Vec::new(),
            ..root.clone()
        },
        next_id: root.next_shard_id,
        tail: None,
    };
    for idx in 0..consumers {
        let (entry, raws) = ds.consumer_raw(idx)?;
        writer.adopt_consumer(&entry, &raws)?;
    }
    let root = writer.finish()?;
    Ok(CompactionSummary {
        shards_before,
        shards_after: root.shards.len(),
        consumers,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Manifest;
    use flextract_series::TimeSeries;
    use flextract_time::Duration;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flextract_dataset_sharded_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn series_for(i: usize, intervals: usize) -> MeasuredSeries {
        let values: Vec<f64> = (0..intervals)
            .map(|j| {
                let x = (i * 37 + j * 13) % 101;
                if x == 100 {
                    f64::NAN
                } else {
                    x as f64 * 0.01
                }
            })
            .collect();
        MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap()
    }

    /// Export `n` consumers into a sharded store with `capacity`
    /// consumers per shard.
    fn export_sharded(dir: &Path, n: usize, capacity: usize) -> RootIndex {
        let mut w = ShardedWriter::create(
            dir,
            "unit",
            "sharded unit dataset",
            ts("2013-03-18"),
            Resolution::MIN_15,
            96,
            SeriesCodec::Binary,
            capacity,
        )
        .unwrap();
        for i in 0..n {
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &series_for(i, 96),
                None,
                None,
            )
            .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn sharded_round_trip_routes_consumers_through_shards() {
        let dir = scratch("roundtrip");
        let root = export_sharded(&dir, 11, 4);
        assert_eq!(root.shards.len(), 3);
        assert_eq!(
            root.shards.iter().map(|s| s.consumers).collect::<Vec<_>>(),
            vec![4, 4, 3]
        );
        assert_eq!(root.next_shard_id, 3);

        let ds = Dataset::open(&dir).unwrap();
        assert!(ds.is_sharded());
        assert_eq!(ds.len(), 11);
        assert_eq!(ds.shard_count(), 3);
        for i in 0..11 {
            let rec = ds.consumer(i).unwrap();
            assert_eq!(rec.entry.id, i.to_string());
            let expect = series_for(i, 96);
            assert_eq!(rec.measured.gap_count(), expect.gap_count());
            for (a, b) in rec.measured.values().iter().zip(expect.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let err = ds.consumer(11).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("0..11"), "{msg}");
        assert!(msg.contains("index 11"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollups_match_a_forced_full_scan_bit_for_bit() {
        let dir = scratch("rollup");
        export_sharded(&dir, 10, 4);
        let ds = Dataset::open(&dir).unwrap();
        let root = ds.root().unwrap();
        // Recompute each shard's roll-up by scanning every consumer and
        // merging in the canonical order: bit-identical to the stored
        // summary.
        let mut idx = 0;
        for summary in &root.shards {
            let mut forced = Aggregates::default();
            for _ in 0..summary.consumers {
                let (agg, _) = ds.consumer_aggregates(idx, &Scan::new()).unwrap();
                forced.merge(&agg);
                idx += 1;
            }
            assert_eq!(forced.sum_kwh.to_bits(), summary.sum_kwh.to_bits());
            assert_eq!(forced.gaps, summary.gap_count);
            assert_eq!(forced.min, summary.min_kwh);
            assert_eq!(forced.max, summary.max_kwh);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_scan_answers_stats_only_and_matches_forced_decode() {
        let dir = scratch("fleet");
        export_sharded(&dir, 10, 4);
        let ds = Dataset::open(&dir).unwrap();
        let (agg, report) = ds.fleet_aggregates(&Scan::new()).unwrap();
        assert_eq!(report.shards_total, 3);
        assert_eq!(report.shards_stats_only, 3);
        assert_eq!(report.shards_opened(), 0);
        assert_eq!(agg.intervals, 960);
        // Forcing every shard open (a predicate no roll-up can exclude)
        // reaches the same aggregates for the matching chunks; compare
        // against the always-true exact path instead: brute-force merge
        // of per-consumer scans in the canonical nesting.
        let mut brute = Aggregates::default();
        let mut idx = 0;
        for summary in &ds.root().unwrap().shards {
            let mut sub = Aggregates::default();
            for _ in 0..summary.consumers {
                let (a, _) = ds.consumer_aggregates(idx, &Scan::new()).unwrap();
                sub.merge(&a);
                idx += 1;
            }
            brute.merge(&sub);
        }
        assert_eq!(agg.sum_kwh.to_bits(), brute.sum_kwh.to_bits());
        assert_eq!(agg, brute);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predicates_prune_whole_shards_from_rollups() {
        let dir = scratch("prune");
        // Shards of 2: consumers 0..2 quiet, 2..4 spiky, 4..6 gappy.
        let mut w = ShardedWriter::create(
            &dir,
            "unit",
            "prune test",
            ts("2013-03-18"),
            Resolution::MIN_15,
            8,
            SeriesCodec::Binary,
            2,
        )
        .unwrap();
        for i in 0..6 {
            let values: Vec<f64> = (0..8)
                .map(|j| match (i, j) {
                    (2..=3, 4) => 9.0,
                    (4..=5, 2) => f64::NAN,
                    _ => 0.5,
                })
                .collect();
            let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap();
            w.write_consumer(&i.to_string(), ConsumerKind::Household, &m, None, None)
                .unwrap();
        }
        w.finish().unwrap();
        let ds = Dataset::open(&dir).unwrap();

        let spikes = Scan::new().with_predicate(Predicate::MaxAbove(1.0));
        let (agg, report) = ds.fleet_aggregates(&spikes).unwrap();
        assert_eq!(report.shards_total, 3);
        assert_eq!(report.shards_pruned, 2, "{report:?}");
        assert_eq!(agg.max, Some(9.0));

        let gaps = Scan::new().with_predicate(Predicate::HasGaps);
        let (agg, report) = ds.fleet_aggregates(&gaps).unwrap();
        assert_eq!(report.shards_pruned, 2);
        assert_eq!(agg.gaps, 2);

        // A time slice outside the coverage prunes everything.
        let elsewhere = TimeRange::starting_at(ts("2014-01-01"), Duration::days(1)).unwrap();
        let (agg, report) = ds
            .fleet_aggregates(&Scan::new().time_slice(elsewhere))
            .unwrap();
        assert_eq!(report.shards_pruned, 3);
        assert_eq!(agg.intervals, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_sessions_accumulate_and_commit_atomically() {
        let dir = scratch("append");
        export_sharded(&dir, 5, 4); // shards: 4 + 1
        let mut w = ShardedWriter::append(&dir).unwrap();
        for i in 5..8 {
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &series_for(i, 96),
                None,
                None,
            )
            .unwrap();
        }
        let root = w.finish().unwrap();
        assert_eq!(root.len(), 8);
        // The append created a fresh shard; committed shards are never
        // reopened or rewritten.
        assert_eq!(
            root.shards.iter().map(|s| s.consumers).collect::<Vec<_>>(),
            vec![4, 1, 3]
        );
        assert_eq!(root.next_shard_id, 3);
        let ds = Dataset::open(&dir).unwrap();
        for i in 0..8 {
            assert_eq!(ds.consumer(i).unwrap().entry.id, i.to_string());
        }
        // A dropped (uncommitted) session leaves the store unchanged.
        let mut w = ShardedWriter::append(&dir).unwrap();
        w.write_consumer(
            "orphan",
            ConsumerKind::Household,
            &series_for(9, 96),
            None,
            None,
        )
        .unwrap();
        drop(w);
        let ds = Dataset::open(&dir).unwrap();
        assert_eq!(ds.len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_canonicalises_append_fragments() {
        let dir = scratch("compact");
        export_sharded(&dir, 5, 4);
        for batch in [5..6, 6..9] {
            let mut w = ShardedWriter::append(&dir).unwrap();
            for i in batch {
                w.write_consumer(
                    &i.to_string(),
                    ConsumerKind::Household,
                    &series_for(i, 96),
                    None,
                    None,
                )
                .unwrap();
            }
            w.finish().unwrap();
        }
        let before = Dataset::open(&dir).unwrap();
        assert_eq!(before.shard_count(), 4); // fragments: 4, 1, 1, 3
        let summary = compact(&dir).unwrap();
        assert_eq!(summary.consumers, 9);
        assert_eq!(summary.shards_after, 3); // 4 + 4 + 1
        let ds = Dataset::open(&dir).unwrap();
        assert_eq!(
            ds.root()
                .unwrap()
                .shards
                .iter()
                .map(|s| s.consumers)
                .collect::<Vec<_>>(),
            vec![4, 4, 1]
        );
        for i in 0..9 {
            let rec = ds.consumer(i).unwrap();
            assert_eq!(rec.entry.id, i.to_string());
            let expect = series_for(i, 96);
            for (a, b) in rec.measured.values().iter().zip(expect.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Compacting a compacted store is a no-op on the grouping.
        let again = compact(&dir).unwrap();
        assert_eq!(again.shards_after, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_output_matches_a_fresh_export_bit_for_bit() {
        // compact(append*(export(fleet))) must round-trip to exactly
        // what a single fresh export of the same fleet produces: same
        // shard grouping, same manifests, and byte-identical series
        // files (shard ids differ — they are generation counters — so
        // the comparison maps shard position, not directory name).
        let (frag_dir, fresh_dir) = (scratch("bitexact_frag"), scratch("bitexact_fresh"));
        export_sharded(&frag_dir, 3, 4);
        for i in 3..10 {
            let mut w = ShardedWriter::append(&frag_dir).unwrap();
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &series_for(i, 96),
                None,
                None,
            )
            .unwrap();
            w.finish().unwrap();
        }
        compact(&frag_dir).unwrap();
        export_sharded(&fresh_dir, 10, 4);

        let frag_root = read_root(&frag_dir).unwrap();
        let fresh_root = read_root(&fresh_dir).unwrap();
        assert_eq!(frag_root.shards.len(), fresh_root.shards.len());
        for (a, b) in frag_root.shards.iter().zip(&fresh_root.shards) {
            // Everything but the generation-dependent id matches.
            let mut a = a.clone();
            a.id = b.id;
            assert_eq!(&a, b);
        }
        for (a, b) in frag_root.shards.iter().zip(&fresh_root.shards) {
            let dir_a = frag_dir.join(SHARDS_DIR).join(a.dir_name());
            let dir_b = fresh_dir.join(SHARDS_DIR).join(b.dir_name());
            let mut names_a: Vec<String> = std::fs::read_dir(&dir_a)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
                .collect();
            let mut names_b: Vec<String> = std::fs::read_dir(&dir_b)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
                .collect();
            names_a.sort();
            names_b.sort();
            assert_eq!(names_a, names_b);
            for name in names_a {
                let bytes_a = std::fs::read(dir_a.join(&name)).unwrap();
                let bytes_b = std::fs::read(dir_b.join(&name)).unwrap();
                assert_eq!(bytes_a, bytes_b, "shard file {name} differs");
            }
        }
        std::fs::remove_dir_all(&frag_dir).ok();
        std::fs::remove_dir_all(&fresh_dir).ok();
    }

    #[test]
    fn missing_series_file_is_typed_at_first_access_for_shards() {
        let dir = scratch("missingfile");
        export_sharded(&dir, 3, 2);
        std::fs::remove_file(dir.join(SHARDS_DIR).join("0001").join("consumer_2.fxm")).unwrap();
        // The root opens fine — shard manifests load lazily.
        let ds = Dataset::open(&dir).unwrap();
        assert!(ds.consumer(0).is_ok());
        let err = ds.consumer(2).unwrap_err();
        assert!(
            matches!(err, DatasetError::MissingSeriesFile { .. }),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("consumer_2.fxm"), "{msg}");
        assert!(msg.contains("`2`"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_root_and_mismatched_shards_are_typed_errors() {
        let dir = scratch("torn");
        export_sharded(&dir, 4, 2);
        // A shard manifest disagreeing with the root count is reported
        // against the shard manifest, not a mid-scan io error.
        let shard_manifest = dir.join(SHARDS_DIR).join("0000").join(crate::MANIFEST_FILE);
        let text = std::fs::read_to_string(&shard_manifest).unwrap();
        let mut m: Manifest = serde_json::from_str(&text).unwrap();
        m.consumers.pop();
        std::fs::write(&shard_manifest, serde_json::to_string_pretty(&m).unwrap()).unwrap();
        let ds = Dataset::open(&dir).unwrap();
        let err = ds.consumer(0).unwrap_err();
        assert!(err.to_string().contains("root index records 2"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_have_truth_reads_the_rollup_not_the_shards() {
        let dir = scratch("truthy");
        let mut w = ShardedWriter::create(
            &dir,
            "unit",
            "truth rollup",
            ts("2013-03-18"),
            Resolution::MIN_15,
            4,
            SeriesCodec::Binary,
            2,
        )
        .unwrap();
        let truth = TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.5, 0.6, 0.7, 0.9],
        )
        .unwrap();
        for i in 0..3 {
            let m =
                MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5; 4]).unwrap();
            w.write_consumer(
                &i.to_string(),
                ConsumerKind::Household,
                &m,
                Some(&truth),
                Some(&truth),
            )
            .unwrap();
        }
        w.finish().unwrap();
        let ds = Dataset::open(&dir).unwrap();
        assert!(ds.all_have_truth());
        assert!(ds.consumer(1).unwrap().truth_total.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn copy_dir_recursive(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            let dst = to.join(entry.file_name());
            if entry.path().is_dir() {
                copy_dir_recursive(&entry.path(), &dst);
            } else {
                std::fs::copy(entry.path(), &dst).unwrap();
            }
        }
    }

    /// Every file under `dir`, keyed by relative path — the bit-exact
    /// fingerprint the kill-point tests compare store states with.
    fn fingerprint(dir: &Path) -> std::collections::BTreeMap<String, Vec<u8>> {
        fn walk(root: &Path, dir: &Path, out: &mut std::collections::BTreeMap<String, Vec<u8>>) {
            for entry in std::fs::read_dir(dir).unwrap() {
                let entry = entry.unwrap();
                if entry.path().is_dir() {
                    walk(root, &entry.path(), out);
                } else {
                    let rel = entry
                        .path()
                        .strip_prefix(root)
                        .unwrap()
                        .to_string_lossy()
                        .to_string();
                    out.insert(rel, std::fs::read(entry.path()).unwrap());
                }
            }
        }
        let mut out = std::collections::BTreeMap::new();
        walk(dir, dir, &mut out);
        out
    }

    /// What every consumer's measured bytes look like through the read
    /// path — the observable state a reader reopening the store sees.
    fn observed_values(dir: &Path) -> Vec<Vec<u64>> {
        let ds = Dataset::open(dir).unwrap();
        (0..ds.len())
            .map(|i| {
                ds.consumer(i)
                    .unwrap()
                    .measured
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    }

    /// Build a fragmented store (append sessions of 3+2+4 consumers at
    /// capacity 4) and a fully-compacted twin, so the kill-point tests
    /// can replay every intermediate disk state of the compaction in
    /// between the two.
    fn fragmented_store(dir: &Path) -> RootIndex {
        export_sharded(dir, 3, 4);
        for batch in [3..5, 5..9] {
            let mut w = ShardedWriter::append(dir).unwrap();
            for i in batch {
                w.write_consumer(
                    &i.to_string(),
                    ConsumerKind::Household,
                    &series_for(i, 96),
                    None,
                    None,
                )
                .unwrap();
            }
            w.finish().unwrap();
        }
        read_root(dir).unwrap()
    }

    /// Interrupt compaction after each write step it performs — new
    /// shard directories, the `root.json.tmp` staging file, the rename
    /// — and reopen. Before the rename the store must read back as the
    /// old state bit-for-bit; after it, as the new state. Never torn.
    #[test]
    fn compaction_interrupted_at_every_write_step_is_never_torn() {
        let before_dir = scratch("kill_before");
        let root = fragmented_store(&before_dir);
        assert_eq!(root.shards.len(), 3, "append fragments: 3+2+4 at cap 4");
        let before_files = fingerprint(&before_dir);
        let before_values = observed_values(&before_dir);

        // A completed compaction on a twin tells us exactly which
        // files each interrupted prefix would have written.
        let done_dir = scratch("kill_done");
        copy_dir_recursive(&before_dir, &done_dir);
        let summary = compact(&done_dir).unwrap();
        assert_eq!(summary.shards_after, 3, "9 consumers at cap 4: 4+4+1");
        let new_shard_dirs: Vec<String> =
            summary.root.shards.iter().map(|s| s.dir_name()).collect();
        assert!(
            new_shard_dirs.iter().all(|d| !before_files
                .keys()
                .any(|k| k.starts_with(&format!("{SHARDS_DIR}/{d}/")))),
            "compaction must write only never-referenced shard dirs"
        );

        // Kill points 1..=N: after each new shard dir lands (but before
        // the root swap), plus after the staged root.json.tmp lands.
        for kill_after in 1..=new_shard_dirs.len() + 1 {
            let work = scratch(&format!("kill_at_{kill_after}"));
            copy_dir_recursive(&before_dir, &work);
            for d in new_shard_dirs
                .iter()
                .take(kill_after.min(new_shard_dirs.len()))
            {
                copy_dir_recursive(
                    &done_dir.join(SHARDS_DIR).join(d),
                    &work.join(SHARDS_DIR).join(d),
                );
            }
            if kill_after > new_shard_dirs.len() {
                std::fs::copy(
                    done_dir.join(ROOT_FILE),
                    work.join(format!("{ROOT_FILE}.tmp")),
                )
                .unwrap();
            }
            // Reopen: the old root is still the committed one, so the
            // store reads back as the exact pre-compaction state.
            assert_eq!(observed_values(&work), before_values, "kill {kill_after}");
            let reread = read_root(&work).unwrap();
            assert_eq!(reread, root, "kill {kill_after}: old root still valid");
            // And a re-run of compaction from this state converges to a
            // store observably identical to the uninterrupted one.
            let resumed = compact(&work).unwrap();
            assert_eq!(resumed.shards_after, 3);
            assert_eq!(observed_values(&work), observed_values(&done_dir));
            let tmp = work.join(format!("{ROOT_FILE}.tmp"));
            assert!(!tmp.exists(), "recovery must not leave a staged root");
            std::fs::remove_dir_all(&work).ok();
        }

        // Final kill point: after the rename (commit) but before the
        // sweep. The new state is fully visible; the old fragment dirs
        // linger but are unreferenced, and the next writer sweeps them.
        let work = scratch("kill_post_commit");
        copy_dir_recursive(&before_dir, &work);
        for d in &new_shard_dirs {
            copy_dir_recursive(
                &done_dir.join(SHARDS_DIR).join(d),
                &work.join(SHARDS_DIR).join(d),
            );
        }
        std::fs::copy(done_dir.join(ROOT_FILE), work.join(ROOT_FILE)).unwrap();
        assert_eq!(observed_values(&work), observed_values(&done_dir));
        let old_dirs: Vec<String> = root.shards.iter().map(|s| s.dir_name()).collect();
        assert!(work.join(SHARDS_DIR).join(&old_dirs[0]).is_dir());
        let again = compact(&work).unwrap();
        assert_eq!(again.consumers, 9);
        for d in &old_dirs {
            assert!(
                !work.join(SHARDS_DIR).join(d).is_dir(),
                "post-commit recovery sweeps stale shard dir {d}"
            );
        }
        assert_eq!(observed_values(&work), observed_values(&done_dir));

        for d in [&before_dir, &done_dir, &work] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}
