//! The on-disk dataset: a manifest plus one series file per consumer.
//!
//! A dataset is a directory:
//!
//! ```text
//! <dir>/
//!   manifest.json          — fleet metadata + consumer directory
//!   consumer_<id>.csv|.fxm — measured series, one file per consumer
//!   truth_<id>.csv|.fxm    — (exported datasets) undegraded total
//!   flex_<id>.csv|.fxm     — (exported datasets) true flexible series
//! ```
//!
//! The layout is columnar twice over: each consumer's series is its
//! own contiguous column file (loading consumer `i` touches
//! `O(intervals)` bytes regardless of fleet size), and each file is a
//! chunked [`Frame`] — FXM2 files carry per-chunk statistics and a
//! footer index, so **ranged reads** ([`Dataset::consumer_in`],
//! [`Dataset::consumer_slice`]) decode only the chunks overlapping a
//! time slice and stat queries ([`Dataset::consumer_aggregates`]) may
//! decode no payload at all. The scenario runner's sharded workers
//! pull consumers by index concurrently through a shared [`Dataset`]
//! handle (`&self` loads — no interior mutability, no cache).
//! Ground-truth files ride along only when the dataset was exported
//! from the simulator; real metered feeds simply do not have them.

use crate::codec;
use crate::degrade::Degradation;
use crate::{DatasetError, MeasuredSeries};
use bytes::Bytes;
use flextract_frame::{Aggregates, Frame, Scan, ScanReport};
use flextract_time::{Resolution, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Current manifest format version.
pub const FORMAT_VERSION: u32 = 1;

/// The manifest file name inside a dataset directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// How the series files of a dataset are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesCodec {
    /// `interval_start,kwh` text rows; an empty `kwh` field is a gap.
    Csv,
    /// The chunked `FXM2` binary format: per-chunk statistics plus a
    /// footer chunk index, enabling ranged reads and stat pushdown.
    Binary,
    /// The legacy chunked `FXM1` binary format (no statistics; readers
    /// fall back to full decodes). Kept as an export escape hatch and
    /// for reading pre-FXM2 datasets — the read path sniffs the magic,
    /// so any binary flavour loads regardless of the manifest's
    /// declared codec.
    BinaryV1,
    /// The chunked `FXM3` binary format: the same per-chunk statistics
    /// and footer index as `FXM2`, with payloads XOR-compressed
    /// losslessly and gaps carried in a per-chunk bitmap. The export
    /// default.
    BinaryV3,
}

impl SeriesCodec {
    /// The file extension used by this codec.
    pub fn extension(self) -> &'static str {
        match self {
            SeriesCodec::Csv => "csv",
            SeriesCodec::Binary | SeriesCodec::BinaryV1 | SeriesCodec::BinaryV3 => "fxm",
        }
    }

    /// Human-readable label (matches the CLI `--codec` values).
    pub fn label(self) -> &'static str {
        match self {
            SeriesCodec::Csv => "csv",
            SeriesCodec::Binary => "fxm2",
            SeriesCodec::BinaryV1 => "fxm1",
            SeriesCodec::BinaryV3 => "fxm3",
        }
    }
}

/// What kind of consumer a series belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsumerKind {
    /// A residential household.
    Household,
    /// An industrial site.
    Industrial,
}

/// One consumer's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerEntry {
    /// Stable identifier (also the file stem suffix).
    pub id: String,
    /// Household or industrial site.
    pub kind: ConsumerKind,
    /// Measured-series file name, relative to the dataset directory.
    pub measured: String,
    /// Undegraded ground-truth total series file (exported datasets).
    pub truth_total: Option<String>,
    /// Ground-truth flexible series file (exported datasets).
    pub truth_flex: Option<String>,
    /// Missing intervals in the measured series (denormalised from the
    /// file so `inspect` can summarise without decoding everything).
    pub gap_count: usize,
}

/// A series file carried as raw bytes: relative file name + contents.
/// The unit of compaction — files move between shards byte-for-byte,
/// never re-encoded.
pub(crate) type RawFile = (String, Vec<u8>);

/// Dataset-level metadata plus the consumer directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version (currently [`FORMAT_VERSION`]).
    pub format: u32,
    /// Dataset name.
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// First instant covered by every measured series, `YYYY-MM-DD
    /// [HH:MM]`.
    pub start: String,
    /// Resolution of every measured series, in minutes.
    pub resolution_min: i64,
    /// Interval count of every measured series.
    pub intervals: usize,
    /// How the series files are encoded.
    pub codec: SeriesCodec,
    /// Name of the scenario this dataset was exported from, if any.
    pub source_scenario: Option<String>,
    /// The degradation applied at export time, if any.
    pub degradation: Option<Degradation>,
    /// The export seed (degradation RNG base), if exported.
    pub seed: Option<u64>,
    /// The consumers, in index order.
    pub consumers: Vec<ConsumerEntry>,
}

impl Manifest {
    /// The declared start timestamp, parsed.
    pub fn start_timestamp(&self) -> Result<Timestamp, DatasetError> {
        self.start.parse().map_err(|e| DatasetError::Manifest {
            path: MANIFEST_FILE.to_string(),
            what: format!("start `{}`: {e}", self.start),
        })
    }

    /// The declared resolution, parsed.
    pub fn resolution(&self) -> Result<Resolution, DatasetError> {
        Resolution::from_minutes(self.resolution_min).map_err(|e| DatasetError::Manifest {
            path: MANIFEST_FILE.to_string(),
            what: format!("resolution_min {}: {e}", self.resolution_min),
        })
    }
}

/// One consumer loaded from a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRecord {
    /// The manifest entry this record was loaded from.
    pub entry: ConsumerEntry,
    /// The measured series (gaps as `NaN`).
    pub measured: MeasuredSeries,
    /// Undegraded ground-truth total, when the dataset carries it.
    pub truth_total: Option<flextract_series::TimeSeries>,
    /// Ground-truth flexible series, when the dataset carries it.
    pub truth_flex: Option<flextract_series::TimeSeries>,
}

/// A dataset opened for reading. Loading is per consumer and takes
/// `&self`, so one handle can be shared across shard workers.
///
/// Two on-disk layouts open through the same handle, sniffed like the
/// series codecs: a directory holding a [`ROOT_FILE`](crate::ROOT_FILE)
/// is a **sharded** store (a root index over `shards/NNNN/` directories,
/// each an ordinary single-manifest dataset, opened lazily on first
/// access), anything else is the **legacy** single-manifest layout.
/// Consumer indices are global either way: a sharded store routes index
/// `i` to the shard holding it via the root's per-shard counts, without
/// opening any other shard.
#[derive(Debug)]
pub struct Dataset {
    dir: PathBuf,
    layout: Layout,
    /// On-disk size of the index parsed at open (`root.json` or
    /// `manifest.json`) — what [`ScanReport::bytes_read_index`]
    /// accounts for cold opens.
    index_bytes: usize,
}

#[derive(Debug)]
enum Layout {
    /// One `manifest.json` naming every consumer.
    Legacy(LegacyLayout),
    /// A root index over lazily-opened shard datasets. Each slot caches
    /// the outcome of the first open (errors included), so repeated
    /// access neither re-reads nor flip-flops.
    Sharded {
        root: crate::sharded::RootIndex,
        shards: Vec<std::sync::OnceLock<Result<Dataset, DatasetError>>>,
    },
}

/// A legacy single-manifest layout with its grid parsed **once** at
/// open. Per-consumer validation and loads reuse the parsed start and
/// resolution instead of re-parsing the manifest's strings on every
/// access — open already parsed them to validate alignment, so keeping
/// them is free and the per-consumer paths stop paying a string parse
/// per file touched.
#[derive(Debug)]
struct LegacyLayout {
    manifest: Manifest,
    start: Timestamp,
    resolution: Resolution,
}

pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, DatasetError> {
    std::fs::read(path).map_err(|e| DatasetError::Io {
        path: path.display().to_string(),
        what: e.to_string(),
    })
}

/// Decode raw series-file bytes into a chunk-addressable [`Frame`]:
/// binary formats are sniffed by magic (FXM2/FXM3 open lazily, FXM1
/// with one decode pass); anything else parses as CSV and is chunked
/// virtually on the same partitioning.
pub(crate) fn frame_from_raw(raw: Vec<u8>, display: &str) -> Result<Frame, DatasetError> {
    if codec::sniff(&raw).is_some() {
        Frame::from_fxm_bytes(Bytes::from(raw), display).map_err(Into::into)
    } else {
        let text = String::from_utf8(raw).map_err(|_| DatasetError::Invalid {
            file: display.to_string(),
            what: "not valid UTF-8 (and not FXM binary)".to_string(),
        })?;
        let measured = codec::from_csv(&text, display)?;
        Frame::from_measured(measured, codec::DEFAULT_CHUNK_LEN, display).map_err(Into::into)
    }
}

impl Dataset {
    /// Open `dir`, sniffing the layout: a directory carrying
    /// `root.json` opens as a sharded store (shard manifests load
    /// lazily on first access), anything else as a legacy
    /// single-manifest dataset — the migration contract that keeps
    /// pre-sharding directories readable, like `SeriesCodec::BinaryV1`
    /// files staying loadable by magic.
    pub fn open(dir: impl AsRef<Path>) -> Result<Dataset, DatasetError> {
        let dir = dir.as_ref().to_path_buf();
        let root_path = dir.join(crate::sharded::ROOT_FILE);
        if root_path.is_file() {
            let index_bytes = std::fs::metadata(&root_path)
                .map(|m| m.len() as usize)
                .unwrap_or(0);
            let root = crate::sharded::read_root(&dir)?;
            let shards = root.shards.iter().map(|_| Default::default()).collect();
            Ok(Dataset {
                dir,
                layout: Layout::Sharded { root, shards },
                index_bytes,
            })
        } else {
            Self::open_legacy(&dir)
        }
    }

    /// Open `dir` as a legacy single-manifest dataset, parse and
    /// validate its manifest.
    pub(crate) fn open_legacy(dir: &Path) -> Result<Dataset, DatasetError> {
        let dir = dir.to_path_buf();
        let manifest_path = dir.join(MANIFEST_FILE);
        let raw = read_file(&manifest_path)?;
        let index_bytes = raw.len();
        let text = String::from_utf8(raw).map_err(|_| DatasetError::Manifest {
            path: manifest_path.display().to_string(),
            what: "not valid UTF-8".to_string(),
        })?;
        let manifest: Manifest =
            serde_json::from_str(&text).map_err(|e| DatasetError::Manifest {
                path: manifest_path.display().to_string(),
                what: e.to_string(),
            })?;
        let invalid = |what: String| DatasetError::Manifest {
            path: manifest_path.display().to_string(),
            what,
        };
        if manifest.format != FORMAT_VERSION {
            return Err(invalid(format!(
                "unsupported format version {} (this build reads {FORMAT_VERSION})",
                manifest.format
            )));
        }
        if manifest.consumers.is_empty() {
            return Err(invalid("dataset has no consumers".to_string()));
        }
        let start = manifest.start_timestamp()?;
        let res = manifest.resolution()?;
        if !start.is_aligned(res) {
            return Err(invalid(format!(
                "start {} is not aligned to the {}-min grid",
                manifest.start, manifest.resolution_min
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for entry in &manifest.consumers {
            if !seen.insert(entry.id.clone()) {
                return Err(invalid(format!("duplicate consumer id `{}`", entry.id)));
            }
            for file in [Some(&entry.measured), entry.truth_total.as_ref()]
                .into_iter()
                .flatten()
                .chain(entry.truth_flex.as_ref())
            {
                if !dir.join(file).is_file() {
                    // Typed, not a generic io error mid-scan: the entry
                    // and the expected path are named at open time.
                    return Err(DatasetError::MissingSeriesFile {
                        consumer: entry.id.clone(),
                        path: dir.join(file).display().to_string(),
                    });
                }
            }
        }
        Ok(Dataset {
            dir,
            layout: Layout::Legacy(LegacyLayout {
                manifest,
                start,
                resolution: res,
            }),
            index_bytes,
        })
    }

    /// The parsed manifest of a legacy single-manifest dataset; `None`
    /// for a sharded store (whose metadata lives in
    /// [`Dataset::root`] and the layout-independent accessors).
    pub fn manifest(&self) -> Option<&Manifest> {
        match &self.layout {
            Layout::Legacy(l) => Some(&l.manifest),
            Layout::Sharded { .. } => None,
        }
    }

    /// The root index of a sharded store; `None` for a legacy dataset.
    pub fn root(&self) -> Option<&crate::sharded::RootIndex> {
        match &self.layout {
            Layout::Legacy(_) => None,
            Layout::Sharded { root, .. } => Some(root),
        }
    }

    /// `true` when this dataset uses the sharded layout.
    pub fn is_sharded(&self) -> bool {
        matches!(self.layout, Layout::Sharded { .. })
    }

    /// Number of shards: 1 for a legacy dataset (the whole directory is
    /// one implicit shard), the root's shard count for a sharded store.
    pub fn shard_count(&self) -> usize {
        match &self.layout {
            Layout::Legacy(_) => 1,
            Layout::Sharded { root, .. } => root.shards.len(),
        }
    }

    /// The dataset directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of consumers (across every shard for a sharded store).
    pub fn len(&self) -> usize {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.consumers.len(),
            Layout::Sharded { root, .. } => root.len(),
        }
    }

    /// `true` if the dataset has no consumers (never true for an opened
    /// dataset — `open` rejects empty manifests and empty roots).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        match &self.layout {
            Layout::Legacy(l) => &l.manifest.name,
            Layout::Sharded { root, .. } => &root.name,
        }
    }

    /// One-line human description.
    pub fn description(&self) -> &str {
        match &self.layout {
            Layout::Legacy(l) => &l.manifest.description,
            Layout::Sharded { root, .. } => &root.description,
        }
    }

    /// The declared start, as stored (`YYYY-MM-DD [HH:MM]`).
    pub fn start_str(&self) -> &str {
        match &self.layout {
            Layout::Legacy(l) => &l.manifest.start,
            Layout::Sharded { root, .. } => &root.start,
        }
    }

    /// The declared start timestamp, parsed.
    pub fn start_timestamp(&self) -> Result<Timestamp, DatasetError> {
        match &self.layout {
            Layout::Legacy(l) => Ok(l.start),
            Layout::Sharded { root, .. } => root.start_timestamp(),
        }
    }

    /// The declared resolution, in minutes.
    pub fn resolution_min(&self) -> i64 {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.resolution_min,
            Layout::Sharded { root, .. } => root.resolution_min,
        }
    }

    /// The declared resolution, parsed.
    pub fn resolution(&self) -> Result<Resolution, DatasetError> {
        match &self.layout {
            Layout::Legacy(l) => Ok(l.resolution),
            Layout::Sharded { root, .. } => root.resolution(),
        }
    }

    /// Interval count of every measured series.
    pub fn intervals(&self) -> usize {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.intervals,
            Layout::Sharded { root, .. } => root.intervals,
        }
    }

    /// How the series files are encoded.
    pub fn codec(&self) -> SeriesCodec {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.codec,
            Layout::Sharded { root, .. } => root.codec,
        }
    }

    /// Name of the scenario this dataset was exported from, if any.
    pub fn source_scenario(&self) -> Option<&str> {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.source_scenario.as_deref(),
            Layout::Sharded { root, .. } => root.source_scenario.as_deref(),
        }
    }

    /// The degradation applied at export time, if any.
    pub fn degradation(&self) -> Option<&Degradation> {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.degradation.as_ref(),
            Layout::Sharded { root, .. } => root.degradation.as_ref(),
        }
    }

    /// The export seed, if exported.
    pub fn seed(&self) -> Option<u64> {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.seed,
            Layout::Sharded { root, .. } => root.seed,
        }
    }

    /// `true` when every consumer carries a ground-truth total series.
    /// A sharded store answers from the root roll-up without opening
    /// any shard.
    pub fn all_have_truth(&self) -> bool {
        match &self.layout {
            Layout::Legacy(l) => l.manifest.consumers.iter().all(|c| c.truth_total.is_some()),
            Layout::Sharded { root, .. } => root.shards.iter().all(|s| s.with_truth == s.consumers),
        }
    }

    /// The [`DatasetError::OutOfRange`] for `index` against this
    /// dataset, naming the valid range and the directory.
    fn out_of_range(&self, index: usize) -> DatasetError {
        DatasetError::OutOfRange {
            index,
            len: self.len(),
            dir: self.dir.display().to_string(),
        }
    }

    /// The manifest when this is a legacy dataset; a typed internal
    /// error otherwise (routing always lands consumer access on a
    /// legacy handle, so hitting this on a sharded one is a bug, but a
    /// reportable one rather than a panic).
    fn legacy(&self) -> Result<&Manifest, DatasetError> {
        self.legacy_layout().map(|l| &l.manifest)
    }

    /// The legacy layout (manifest plus the grid parsed at open); same
    /// contract as [`Dataset::legacy`].
    fn legacy_layout(&self) -> Result<&LegacyLayout, DatasetError> {
        match &self.layout {
            Layout::Legacy(l) => Ok(l),
            Layout::Sharded { .. } => Err(DatasetError::Invalid {
                file: self.dir.display().to_string(),
                what: "internal: expected a single-manifest dataset handle".to_string(),
            }),
        }
    }

    /// Crate-internal accessor for shard validation.
    pub(crate) fn legacy_manifest(&self) -> Result<&Manifest, DatasetError> {
        self.legacy()
    }

    /// Open (or fetch the cached handle of) shard `k`. The first open
    /// reads and validates the shard manifest against the root; the
    /// outcome — success or error — is cached in the slot.
    fn shard(&self, k: usize) -> Result<&Dataset, DatasetError> {
        let Layout::Sharded { root, shards } = &self.layout else {
            return Err(DatasetError::Invalid {
                file: self.dir.display().to_string(),
                what: "internal: shard access on a single-manifest dataset".to_string(),
            });
        };
        let Some((summary, slot)) = root.shards.get(k).zip(shards.get(k)) else {
            return Err(DatasetError::Invalid {
                file: self.dir.display().to_string(),
                what: format!(
                    "internal: shard index {k} out of range for {} shard(s)",
                    root.shards.len()
                ),
            });
        };
        slot.get_or_init(|| crate::sharded::open_shard(&self.dir, root, summary))
            .as_ref()
            .map_err(|e| e.clone())
    }

    /// Route a global consumer index to the dataset handle holding it:
    /// `(self, idx)` for a legacy dataset, `(shard, local_idx)` for a
    /// sharded one — found from the root's per-shard counts, opening
    /// only that shard.
    fn locate(&self, idx: usize) -> Result<(&Dataset, usize), DatasetError> {
        match &self.layout {
            Layout::Legacy(l) => {
                if idx < l.manifest.consumers.len() {
                    Ok((self, idx))
                } else {
                    Err(self.out_of_range(idx))
                }
            }
            Layout::Sharded { root, .. } => {
                let mut rel = idx;
                for (k, summary) in root.shards.iter().enumerate() {
                    if rel < summary.consumers {
                        return Ok((self.shard(k)?, rel));
                    }
                    rel -= summary.consumers;
                }
                Err(self.out_of_range(idx))
            }
        }
    }

    /// Open `file` as a chunk-addressable [`Frame`]: binary formats
    /// open lazily (FXM2/FXM3) or with one decode pass (FXM1); CSV
    /// parses and is chunked virtually. Cold opens are one buffered
    /// sequential read of the whole file — never per-chunk-header
    /// seeks — which is what [`ScanReport::bytes_read`] accounts.
    fn load_frame(&self, file: &str) -> Result<Frame, DatasetError> {
        let path = self.dir.join(file);
        let raw = read_file(&path)?;
        frame_from_raw(raw, &path.display().to_string())
    }

    /// Materialize a frame, whole or sliced to `range` (a ranged read:
    /// only the chunks overlapping the slice decode).
    fn materialize(frame: Frame, range: Option<TimeRange>) -> Result<MeasuredSeries, DatasetError> {
        match range {
            // Whole-series read: already-materialized frames (FXM1,
            // CSV) move their values instead of copying.
            None => frame.into_measured().map_err(Into::into),
            Some(r) => Scan::new()
                .time_slice(r)
                .materialize(&frame)
                .map(|(series, _)| series)
                .map_err(Into::into),
        }
    }

    /// Load a ground-truth file and validate it against the manifest:
    /// gap-free, same start, and covering the same horizon as the
    /// measured grid (truth may be finer — it is the undegraded series
    /// at its native resolution — but a short or shifted truth file
    /// would silently corrupt the fidelity numbers). With a `range`,
    /// only the overlapping part is materialized.
    fn load_truth_file(
        &self,
        file: &str,
        start: Timestamp,
        range: Option<TimeRange>,
    ) -> Result<flextract_series::TimeSeries, DatasetError> {
        let manifest = self.legacy()?;
        let frame = self.load_frame(file)?;
        let header = *frame.header();
        let display = || self.dir.join(file).display().to_string();
        if header.start != start {
            return Err(DatasetError::Invalid {
                file: display(),
                what: format!(
                    "ground-truth series starts at {} but the manifest declares {}",
                    header.start, manifest.start
                ),
            });
        }
        let covered = header.len as i64 * header.resolution.minutes();
        let declared = manifest.intervals as i64 * manifest.resolution_min;
        if covered != declared {
            return Err(DatasetError::Invalid {
                file: display(),
                what: format!(
                    "ground-truth series covers {covered} min but the manifest grid \
                     covers {declared} min"
                ),
            });
        }
        let measured = Self::materialize(frame, range)?;
        if measured.is_empty() {
            // Distinguish a non-overlapping range from file corruption:
            // an empty slice is a caller problem, not a gap problem.
            return Err(DatasetError::Invalid {
                file: display(),
                what: match range {
                    Some(range) => {
                        format!("requested range {range} does not overlap the stored series")
                    }
                    // A whole-series read only comes back empty if the
                    // file itself holds an empty grid.
                    None => "the stored series is empty".to_string(),
                },
            });
        }
        let gaps = measured.gap_count();
        measured.into_series().map_err(|_| DatasetError::Invalid {
            file: display(),
            what: format!("ground-truth series has {gaps} gap(s); truth files must be gap-free"),
        })
    }

    /// Load consumer `idx` (measured series plus any ground truth),
    /// validating it against the manifest's declared grid. Indices are
    /// global: a sharded store routes to the holding shard.
    pub fn consumer(&self, idx: usize) -> Result<DatasetRecord, DatasetError> {
        let (ds, rel) = self.locate(idx)?;
        ds.load_consumer(rel, true, None)
    }

    /// Like [`Dataset::consumer`], but skip loading the ground-truth
    /// *total* series (`truth_total` comes back `None` even when the
    /// manifest names it). `truth_flex` still loads — it is the
    /// scoring reference. For callers that will not run a fidelity
    /// comparison, this avoids reading and decoding one file per
    /// consumer for nothing.
    pub fn consumer_without_truth_total(&self, idx: usize) -> Result<DatasetRecord, DatasetError> {
        let (ds, rel) = self.locate(idx)?;
        ds.load_consumer(rel, false, None)
    }

    /// Ranged consumer read: like [`Dataset::consumer`] /
    /// [`Dataset::consumer_without_truth_total`], but every series
    /// (measured and ground truth) is materialized only over `range` —
    /// for FXM2 files, chunks outside the range are never decoded.
    /// The file's declared grid is still validated against the
    /// manifest in full (a header check, no decode).
    pub fn consumer_in(
        &self,
        idx: usize,
        range: TimeRange,
        with_truth_total: bool,
    ) -> Result<DatasetRecord, DatasetError> {
        let (ds, rel) = self.locate(idx)?;
        ds.load_consumer(rel, with_truth_total, Some(range))
    }

    /// The grid-validated lazy frame of consumer `idx`'s measured
    /// series — the entry point for scans and pushdown queries.
    pub fn consumer_frame(&self, idx: usize) -> Result<Frame, DatasetError> {
        let (ds, rel) = self.locate(idx)?;
        ds.frame_local(rel)
    }

    /// The grid-validated frame at a **local** (shard-relative) index —
    /// the shared open step behind every consumer-level query path.
    fn frame_local(&self, rel: usize) -> Result<Frame, DatasetError> {
        let entry = self.entry_local(rel)?;
        let frame = self.load_frame(&entry.measured)?;
        self.validate_grid(&frame, &entry.measured)?;
        Ok(frame)
    }

    /// Index bytes a cold open consults to answer a query for consumer
    /// `idx`: the top-level index (`root.json` or `manifest.json`) plus,
    /// for a sharded store, the holding shard's own manifest.
    pub fn consumer_index_bytes(&self, idx: usize) -> Result<usize, DatasetError> {
        let (ds, _) = self.locate(idx)?;
        Ok(self.index_bytes + if self.is_sharded() { ds.index_bytes } else { 0 })
    }

    /// On-disk size of the index this handle parsed at open:
    /// `root.json` for a sharded store, `manifest.json` for a legacy
    /// dataset — the fixed routing cost every cold query pays before
    /// touching a series file, accounted by
    /// [`ScanReport::bytes_read_index`].
    pub fn index_bytes(&self) -> usize {
        self.index_bytes
    }

    /// Consumer `idx`'s manifest entry. For a sharded store this opens
    /// (at most) the holding shard.
    pub fn consumer_entry(&self, idx: usize) -> Result<ConsumerEntry, DatasetError> {
        let (ds, rel) = self.locate(idx)?;
        ds.entry_local(rel).cloned()
    }

    /// The local (shard-relative) manifest entry at `idx`.
    fn entry_local(&self, idx: usize) -> Result<&ConsumerEntry, DatasetError> {
        let manifest = self.legacy()?;
        manifest
            .consumers
            .get(idx)
            .ok_or_else(|| self.out_of_range(idx))
    }

    /// Ranged read of consumer `idx`'s measured series: decode only
    /// the chunks overlapping `range`, returning the slice and the
    /// scan report (how many chunks were skipped vs decoded).
    pub fn consumer_slice(
        &self,
        idx: usize,
        range: TimeRange,
    ) -> Result<(MeasuredSeries, ScanReport), DatasetError> {
        let frame = self.consumer_frame(idx)?;
        Scan::new()
            .time_slice(range)
            .materialize(&frame)
            .map_err(Into::into)
    }

    /// Execute `scan` against consumer `idx`'s measured series,
    /// returning aggregates plus the pushdown report. FXM2 files
    /// answer stat-coverable queries without decoding any payload.
    pub fn consumer_aggregates(
        &self,
        idx: usize,
        scan: &Scan,
    ) -> Result<(Aggregates, ScanReport), DatasetError> {
        self.consumer_aggregates_with(idx, scan, &mut Vec::new())
    }

    /// Like [`Dataset::consumer_aggregates`], but decoding through a
    /// caller-owned scratch buffer so a multi-consumer sweep reuses one
    /// allocation instead of allocating per chunk per consumer.
    ///
    /// `bytes_read_index` charges the index bytes this query consulted
    /// (top-level index + holding shard manifest) — single-consumer
    /// queries pay the full routing cost; fleet sweeps charge each
    /// index once instead (see [`Dataset::fleet_aggregates`]).
    pub fn consumer_aggregates_with(
        &self,
        idx: usize,
        scan: &Scan,
        scratch: &mut Vec<f64>,
    ) -> Result<(Aggregates, ScanReport), DatasetError> {
        let (ds, rel) = self.locate(idx)?;
        let frame = ds.frame_local(rel)?;
        let (agg, mut report) = scan.aggregates_with(&frame, scratch)?;
        report.bytes_read_index =
            self.index_bytes + if self.is_sharded() { ds.index_bytes } else { 0 };
        Ok((agg, report))
    }

    /// Execute `scan` against every consumer of shard `k`, pruning the
    /// whole shard from its roll-up when the statistics allow it:
    ///
    /// * any predicate excluded by the roll-up, or a time slice
    ///   disjoint from the shard's coverage ⇒ **pruned** — neither the
    ///   shard manifest nor any series file is opened;
    /// * no predicates and the slice covers the whole shard ⇒
    ///   **stats-only** — answered from the roll-up alone (built with
    ///   the same fold association as a full scan, so the answer is
    ///   bit-identical);
    /// * otherwise every consumer is scanned and merged in consumer
    ///   order, reusing `scratch` across decodes.
    ///
    /// The report counts this shard under `shards_*`; per-chunk
    /// counters accumulate only when files actually open. Legacy
    /// datasets have no shards — use [`Dataset::fleet_aggregates`].
    pub fn shard_aggregates(
        &self,
        k: usize,
        scan: &Scan,
        scratch: &mut Vec<f64>,
    ) -> Result<(Aggregates, ScanReport), DatasetError> {
        let Layout::Sharded { root, .. } = &self.layout else {
            return Err(DatasetError::Invalid {
                file: self.dir.display().to_string(),
                what: "internal: shard_aggregates on a single-manifest dataset".to_string(),
            });
        };
        let Some(summary) = root.shards.get(k) else {
            return Err(DatasetError::Invalid {
                file: self.dir.display().to_string(),
                what: format!(
                    "internal: shard index {k} out of range for {} shard(s)",
                    root.shards.len()
                ),
            });
        };
        let mut report = ScanReport {
            shards_total: 1,
            ..ScanReport::default()
        };
        let coverage = summary.coverage(root.resolution()?)?;
        let disjoint = scan.slice().is_some_and(|s| !s.overlaps(coverage));
        let excluded = scan.predicates().iter().any(|p| summary.excludes(p));
        if disjoint || excluded {
            report.shards_pruned = 1;
            return Ok((Aggregates::default(), report));
        }
        let covers_all = scan.slice().is_none_or(|s| s.contains_range(coverage));
        if scan.predicates().is_empty() && covers_all {
            let agg = summary.aggregates();
            report.shards_stats_only = 1;
            report.intervals_selected = agg.intervals;
            return Ok((agg, report));
        }
        let shard = self.shard(k)?;
        // The shard's manifest is consulted once for the whole sweep —
        // charge it once, not per consumer (the caller adds the root).
        report.bytes_read_index = shard.index_bytes;
        let mut agg = Aggregates::default();
        for rel in 0..summary.consumers {
            let frame = shard.frame_local(rel)?;
            let (a, r) = scan.aggregates_with(&frame, scratch)?;
            agg.merge(&a);
            report.absorb(&r);
        }
        Ok((agg, report))
    }

    /// Execute `scan` against every consumer in the store, in the
    /// canonical fold order (chunk → consumer → shard → fleet), with
    /// shard-level pruning for sharded stores. A legacy dataset counts
    /// as one implicit shard that always opens.
    pub fn fleet_aggregates(&self, scan: &Scan) -> Result<(Aggregates, ScanReport), DatasetError> {
        let mut scratch = Vec::new();
        match &self.layout {
            Layout::Legacy(l) => {
                let mut report = ScanReport {
                    shards_total: 1,
                    // One manifest parse serves the whole sweep.
                    bytes_read_index: self.index_bytes,
                    ..ScanReport::default()
                };
                let mut sub = Aggregates::default();
                for rel in 0..l.manifest.consumers.len() {
                    let frame = self.frame_local(rel)?;
                    let (a, r) = scan.aggregates_with(&frame, &mut scratch)?;
                    sub.merge(&a);
                    report.absorb(&r);
                }
                let mut agg = Aggregates::default();
                agg.merge(&sub);
                Ok((agg, report))
            }
            Layout::Sharded { root, .. } => {
                let mut agg = Aggregates::default();
                let mut report = ScanReport {
                    // The root index is parsed once for the whole
                    // fleet; opened shard manifests accumulate from
                    // the per-shard reports.
                    bytes_read_index: self.index_bytes,
                    ..ScanReport::default()
                };
                for k in 0..root.shards.len() {
                    let (a, r) = self.shard_aggregates(k, scan, &mut scratch)?;
                    agg.merge(&a);
                    report.absorb(&r);
                }
                Ok((agg, report))
            }
        }
    }

    /// Consumer `idx`'s manifest entry plus the raw bytes of every file
    /// it references — the compaction primitive (files are copied
    /// byte-for-byte, never re-encoded).
    pub(crate) fn consumer_raw(
        &self,
        idx: usize,
    ) -> Result<(ConsumerEntry, Vec<RawFile>), DatasetError> {
        let (ds, rel) = self.locate(idx)?;
        let entry = ds.entry_local(rel)?.clone();
        let mut files = Vec::new();
        for file in [Some(&entry.measured), entry.truth_total.as_ref()]
            .into_iter()
            .flatten()
            .chain(entry.truth_flex.as_ref())
        {
            files.push((file.clone(), read_file(&ds.dir.join(file))?));
        }
        Ok((entry, files))
    }

    /// Check a frame's header against the manifest's declared grid —
    /// a constant-time check that decodes nothing.
    fn validate_grid(&self, frame: &Frame, file: &str) -> Result<(), DatasetError> {
        // The grid was parsed once at open — per-consumer validation
        // compares against the parsed form instead of re-parsing the
        // manifest's strings on every file touched.
        let layout = self.legacy_layout()?;
        let manifest = &layout.manifest;
        let header = frame.header();
        let file = self.dir.join(file).display().to_string();
        let start = layout.start;
        let res = layout.resolution;
        if header.start != start {
            return Err(DatasetError::Invalid {
                file,
                what: format!(
                    "series starts at {} but the manifest declares {}",
                    header.start, manifest.start
                ),
            });
        }
        if header.resolution != res {
            return Err(DatasetError::Invalid {
                file,
                what: format!(
                    "series resolution is {} but the manifest declares {} min",
                    header.resolution, manifest.resolution_min
                ),
            });
        }
        if header.len != manifest.intervals {
            return Err(DatasetError::Invalid {
                file,
                what: format!(
                    "series has {} intervals but the manifest declares {}",
                    header.len, manifest.intervals
                ),
            });
        }
        Ok(())
    }

    /// Local (shard-relative) consumer load; public callers route
    /// through [`Dataset::locate`] first.
    fn load_consumer(
        &self,
        idx: usize,
        with_truth_total: bool,
        range: Option<TimeRange>,
    ) -> Result<DatasetRecord, DatasetError> {
        let entry = self.entry_local(idx)?;
        let frame = self.load_frame(&entry.measured)?;
        self.validate_grid(&frame, &entry.measured)?;
        let measured = Self::materialize(frame, range)?;
        let start = self.legacy_layout()?.start;
        let truth_total = if with_truth_total {
            entry
                .truth_total
                .as_ref()
                .map(|f| self.load_truth_file(f, start, range))
                .transpose()?
        } else {
            None
        };
        let truth_flex = entry
            .truth_flex
            .as_ref()
            .map(|f| self.load_truth_file(f, start, range))
            .transpose()?;
        Ok(DatasetRecord {
            entry: entry.clone(),
            measured,
            truth_total,
            truth_flex,
        })
    }
}

/// Writes a dataset directory consumer by consumer, then the manifest.
///
/// The writer holds only the manifest in memory; each consumer's series
/// goes straight to disk, so exporting a large fleet stays memory-light.
#[derive(Debug)]
pub struct DatasetWriter {
    dir: PathBuf,
    manifest: Manifest,
}

impl DatasetWriter {
    /// Create the dataset directory (and parents) and an empty
    /// manifest. `start`, `resolution` and `intervals` declare the grid
    /// every measured series must share.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        dir: impl AsRef<Path>,
        name: &str,
        description: &str,
        start: Timestamp,
        resolution: Resolution,
        intervals: usize,
        codec: SeriesCodec,
    ) -> Result<DatasetWriter, DatasetError> {
        let dir = dir.as_ref().to_path_buf();
        // A 1-row CSV cannot be read back (the parser infers the
        // resolution from row spacing), so refuse to write one.
        if codec == SeriesCodec::Csv && intervals < 2 {
            return Err(DatasetError::Invalid {
                file: dir.display().to_string(),
                what: format!(
                    "the CSV codec needs at least 2 intervals (got {intervals}); \
                     use the binary codec for single-interval series"
                ),
            });
        }
        std::fs::create_dir_all(&dir).map_err(|e| DatasetError::Io {
            path: dir.display().to_string(),
            what: e.to_string(),
        })?;
        Ok(DatasetWriter {
            dir,
            manifest: Manifest {
                format: FORMAT_VERSION,
                name: name.to_string(),
                description: description.to_string(),
                start: start.to_string(),
                resolution_min: resolution.minutes(),
                intervals,
                codec,
                source_scenario: None,
                degradation: None,
                seed: None,
                consumers: Vec::new(),
            },
        })
    }

    /// Record export provenance in the manifest.
    pub fn set_provenance(&mut self, source_scenario: &str, degradation: Degradation, seed: u64) {
        self.manifest.source_scenario = Some(source_scenario.to_string());
        self.manifest.degradation = Some(degradation);
        self.manifest.seed = Some(seed);
    }

    fn write_series_file(&self, file: &str, series: &MeasuredSeries) -> Result<(), DatasetError> {
        let path = self.dir.join(file);
        let bytes = match self.manifest.codec {
            SeriesCodec::Csv => codec::to_csv(series).into_bytes(),
            SeriesCodec::Binary => codec::encode(series).to_vec(),
            SeriesCodec::BinaryV1 => codec::encode_v1(series).to_vec(),
            SeriesCodec::BinaryV3 => codec::encode_v3(series).to_vec(),
        };
        std::fs::write(&path, bytes).map_err(|e| DatasetError::Io {
            path: path.display().to_string(),
            what: e.to_string(),
        })
    }

    /// Append one consumer: the measured series plus optional ground
    /// truth. The measured series must sit on the declared grid.
    pub fn write_consumer(
        &mut self,
        id: &str,
        kind: ConsumerKind,
        measured: &MeasuredSeries,
        truth_total: Option<&flextract_series::TimeSeries>,
        truth_flex: Option<&flextract_series::TimeSeries>,
    ) -> Result<(), DatasetError> {
        let declared = |what: String| DatasetError::Invalid {
            file: format!("consumer `{id}`"),
            what,
        };
        if measured.start().to_string() != self.manifest.start {
            return Err(declared(format!(
                "starts at {} but the dataset declares {}",
                measured.start(),
                self.manifest.start
            )));
        }
        if measured.resolution().minutes() != self.manifest.resolution_min {
            return Err(declared(format!(
                "resolution {} does not match the declared {} min",
                measured.resolution(),
                self.manifest.resolution_min
            )));
        }
        if measured.len() != self.manifest.intervals {
            return Err(declared(format!(
                "{} intervals but the dataset declares {}",
                measured.len(),
                self.manifest.intervals
            )));
        }
        let ext = self.manifest.codec.extension();
        let measured_file = format!("consumer_{id}.{ext}");
        self.write_series_file(&measured_file, measured)?;
        let truth_total_file = truth_total
            .map(|s| {
                let file = format!("truth_{id}.{ext}");
                self.write_series_file(&file, &MeasuredSeries::from_series(s))
                    .map(|()| file)
            })
            .transpose()?;
        let truth_flex_file = truth_flex
            .map(|s| {
                let file = format!("flex_{id}.{ext}");
                self.write_series_file(&file, &MeasuredSeries::from_series(s))
                    .map(|()| file)
            })
            .transpose()?;
        self.manifest.consumers.push(ConsumerEntry {
            id: id.to_string(),
            kind,
            measured: measured_file,
            truth_total: truth_total_file,
            truth_flex: truth_flex_file,
            gap_count: measured.gap_count(),
        });
        Ok(())
    }

    /// Adopt an already-encoded consumer byte-for-byte: write its raw
    /// series files and push its entry unchanged. The compaction
    /// primitive — no re-encoding, no grid re-validation (the bytes
    /// came from a validated store and are copied, not interpreted).
    pub(crate) fn adopt_consumer_raw(
        &mut self,
        entry: &ConsumerEntry,
        files: &[RawFile],
    ) -> Result<(), DatasetError> {
        for (name, raw) in files {
            let path = self.dir.join(name);
            std::fs::write(&path, raw).map_err(|e| DatasetError::Io {
                path: path.display().to_string(),
                what: e.to_string(),
            })?;
        }
        self.manifest.consumers.push(entry.clone());
        Ok(())
    }

    /// Write `manifest.json` and finish. Returns the manifest.
    ///
    /// Also removes series files from previous writes into the same
    /// directory that this manifest no longer references (a re-export
    /// with fewer consumers or a different codec must not leave orphans
    /// beside the manifest). Only files matching the writer's own
    /// naming scheme are touched.
    pub fn finish(self) -> Result<Manifest, DatasetError> {
        let path = self.dir.join(MANIFEST_FILE);
        let json =
            serde_json::to_string_pretty(&self.manifest).map_err(|e| DatasetError::Manifest {
                path: path.display().to_string(),
                what: format!("serialise: {e}"),
            })? + "\n";
        std::fs::write(&path, json).map_err(|e| DatasetError::Io {
            path: path.display().to_string(),
            what: e.to_string(),
        })?;
        let referenced: std::collections::BTreeSet<&str> = self
            .manifest
            .consumers
            .iter()
            .flat_map(|c| {
                [Some(c.measured.as_str()), c.truth_total.as_deref()]
                    .into_iter()
                    .flatten()
                    .chain(c.truth_flex.as_deref())
            })
            .collect();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                let ours = ["consumer_", "truth_", "flex_"]
                    .iter()
                    .any(|p| name.starts_with(p))
                    && [".csv", ".fxm"].iter().any(|e| name.ends_with(e));
                if ours && !referenced.contains(name.as_str()) {
                    std::fs::remove_file(entry.path()).map_err(|e| DatasetError::Io {
                        path: entry.path().display().to_string(),
                        what: format!("removing stale series file: {e}"),
                    })?;
                }
            }
        }
        // A single-manifest export over a previously sharded directory
        // must remove the stale root index (layout sniffing prefers
        // `root.json`) and the shard directories it referenced.
        let stale_root = self.dir.join(crate::sharded::ROOT_FILE);
        if stale_root.is_file() {
            std::fs::remove_file(&stale_root).map_err(|e| DatasetError::Io {
                path: stale_root.display().to_string(),
                what: format!("removing stale root index: {e}"),
            })?;
            let stale_shards = self.dir.join(crate::sharded::SHARDS_DIR);
            if stale_shards.is_dir() {
                std::fs::remove_dir_all(&stale_shards).map_err(|e| DatasetError::Io {
                    path: stale_shards.display().to_string(),
                    what: format!("removing stale shard directories: {e}"),
                })?;
            }
        }
        Ok(self.manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_series::TimeSeries;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flextract_dataset_store_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_measured() -> MeasuredSeries {
        MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.5, f64::NAN, 0.7, 0.9],
        )
        .unwrap()
    }

    fn write_sample(dir: &Path, codec: SeriesCodec) -> Manifest {
        let mut w = DatasetWriter::create(
            dir,
            "unit",
            "unit-test dataset",
            ts("2013-03-18"),
            Resolution::MIN_15,
            4,
            codec,
        )
        .unwrap();
        let truth = TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.5, 0.6, 0.7, 0.9],
        )
        .unwrap();
        let flex = TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.1, 0.0, 0.2, 0.0],
        )
        .unwrap();
        w.write_consumer(
            "0",
            ConsumerKind::Household,
            &sample_measured(),
            Some(&truth),
            Some(&flex),
        )
        .unwrap();
        w.write_consumer(
            "1",
            ConsumerKind::Industrial,
            &sample_measured(),
            None,
            None,
        )
        .unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_csv_and_binary() {
        for codec in [SeriesCodec::Csv, SeriesCodec::Binary, SeriesCodec::BinaryV3] {
            let dir = scratch(codec.label());
            let manifest = write_sample(&dir, codec);
            assert_eq!(manifest.consumers.len(), 2);
            assert_eq!(manifest.consumers[0].gap_count, 1);

            let ds = Dataset::open(&dir).unwrap();
            assert_eq!(ds.len(), 2);
            let rec = ds.consumer(0).unwrap();
            assert_eq!(rec.measured.gap_count(), 1);
            assert_eq!(rec.entry.kind, ConsumerKind::Household);
            let truth = rec.truth_total.unwrap();
            assert_eq!(truth.values(), &[0.5, 0.6, 0.7, 0.9]);
            assert!(rec.truth_flex.is_some());
            let rec1 = ds.consumer(1).unwrap();
            assert!(rec1.truth_total.is_none());
            assert_eq!(rec1.entry.kind, ConsumerKind::Industrial);
            assert!(matches!(
                ds.consumer(2),
                Err(DatasetError::OutOfRange {
                    index: 2,
                    len: 2,
                    ..
                })
            ));
            // The out-of-range message names the dataset directory and
            // the valid range.
            let msg = ds.consumer(2).unwrap_err().to_string();
            assert!(msg.contains("0..2"), "{msg}");
            assert!(msg.contains(&dir.display().to_string()), "{msg}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn open_rejects_missing_and_malformed_manifests() {
        let dir = scratch("missing");
        assert!(matches!(Dataset::open(&dir), Err(DatasetError::Io { .. })));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), "{ not json").unwrap();
        let err = Dataset::open(&dir).unwrap_err();
        assert!(err.to_string().contains("manifest.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_manifest_naming_missing_files() {
        let dir = scratch("dangling");
        write_sample(&dir, SeriesCodec::Csv);
        std::fs::remove_file(dir.join("consumer_1.csv")).unwrap();
        let err = Dataset::open(&dir).unwrap_err();
        assert!(
            matches!(err, DatasetError::MissingSeriesFile { .. }),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("consumer_1.csv"), "{msg}");
        assert!(msg.contains("`1`"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consumer_grid_must_match_manifest() {
        let dir = scratch("grid");
        write_sample(&dir, SeriesCodec::Csv);
        // Rewrite consumer 1 with a wrong interval count.
        let short =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5, 0.6]).unwrap();
        std::fs::write(dir.join("consumer_1.csv"), codec::to_csv(&short)).unwrap();
        let ds = Dataset::open(&dir).unwrap();
        let err = ds.consumer(1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("consumer_1.csv"), "{msg}");
        assert!(msg.contains("2 intervals"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truth_files_must_match_the_manifest_horizon() {
        let dir = scratch("truthgrid");
        write_sample(&dir, SeriesCodec::Csv);
        // Truncate the truth series to half the horizon: loading must
        // fail instead of silently feeding the fidelity leg bad data.
        let short =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5, 0.6]).unwrap();
        std::fs::write(dir.join("truth_0.csv"), codec::to_csv(&short)).unwrap();
        let ds = Dataset::open(&dir).unwrap();
        let err = ds.consumer(0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truth_0.csv"), "{msg}");
        assert!(msg.contains("covers 30 min"), "{msg}");
        // A shifted start is rejected too.
        let shifted = MeasuredSeries::new(
            ts("2013-03-19"),
            Resolution::MIN_15,
            vec![0.5, 0.6, 0.7, 0.9],
        )
        .unwrap();
        std::fs::write(dir.join("truth_0.csv"), codec::to_csv(&shifted)).unwrap();
        let err = ds.consumer(0).unwrap_err();
        assert!(err.to_string().contains("starts at"), "{err}");
        // A finer-resolution truth covering the same horizon is fine
        // (exports write truth at the simulator's native resolution).
        let fine = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_5, vec![0.1; 12]).unwrap();
        std::fs::write(dir.join("truth_0.csv"), codec::to_csv(&fine)).unwrap();
        assert!(ds.consumer(0).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_removes_stale_series_files_from_previous_exports() {
        let dir = scratch("restale");
        write_sample(&dir, SeriesCodec::Csv); // 2 consumers + truth files
        let mut w = DatasetWriter::create(
            &dir,
            "unit",
            "d",
            ts("2013-03-18"),
            Resolution::MIN_15,
            4,
            SeriesCodec::Binary,
        )
        .unwrap();
        w.write_consumer("0", ConsumerKind::Household, &sample_measured(), None, None)
            .unwrap();
        w.finish().unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
            .collect();
        assert!(
            !names.iter().any(|n| n.ends_with(".csv")),
            "stale CSV files survived the re-export: {names:?}"
        );
        assert_eq!(
            names.iter().filter(|n| n.ends_with(".fxm")).count(),
            1,
            "{names:?}"
        );
        let ds = Dataset::open(&dir).unwrap();
        assert_eq!(ds.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truth_files_must_be_gap_free() {
        let dir = scratch("truthgap");
        write_sample(&dir, SeriesCodec::Csv);
        std::fs::write(dir.join("truth_0.csv"), codec::to_csv(&sample_measured())).unwrap();
        let ds = Dataset::open(&dir).unwrap();
        let err = ds.consumer(0).unwrap_err();
        assert!(err.to_string().contains("gap-free"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_rejects_off_grid_consumers() {
        let dir = scratch("offgrid");
        let mut w = DatasetWriter::create(
            &dir,
            "unit",
            "d",
            ts("2013-03-18"),
            Resolution::MIN_15,
            4,
            SeriesCodec::Csv,
        )
        .unwrap();
        let wrong_len =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0; 5]).unwrap();
        assert!(w
            .write_consumer("x", ConsumerKind::Household, &wrong_len, None, None)
            .is_err());
        let wrong_res =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::HOUR_1, vec![1.0; 4]).unwrap();
        assert!(w
            .write_consumer("x", ConsumerKind::Household, &wrong_res, None, None)
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_writer_rejects_single_interval_grids() {
        let dir = scratch("csv1row");
        let err = DatasetWriter::create(
            &dir,
            "unit",
            "d",
            ts("2013-03-18"),
            Resolution::MIN_15,
            1,
            SeriesCodec::Csv,
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least 2 intervals"), "{err}");
        // The binary codec handles single-interval series fine.
        let mut w = DatasetWriter::create(
            &dir,
            "unit",
            "d",
            ts("2013-03-18"),
            Resolution::MIN_15,
            1,
            SeriesCodec::Binary,
        )
        .unwrap();
        let one = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![0.5]).unwrap();
        w.write_consumer("0", ConsumerKind::Household, &one, None, None)
            .unwrap();
        w.finish().unwrap();
        let ds = Dataset::open(&dir).unwrap();
        assert_eq!(ds.consumer(0).unwrap().measured.values(), &[0.5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ranged_reads_slice_without_decoding_everything() {
        use flextract_time::Duration;
        // Two days of 15-min data in FXM2: 192 intervals, 2 chunks of
        // 96 — a one-day slice must decode exactly one chunk.
        let dir = scratch("ranged");
        let mut w = DatasetWriter::create(
            &dir,
            "unit",
            "ranged-read dataset",
            ts("2013-03-18"),
            Resolution::MIN_15,
            192,
            SeriesCodec::Binary,
        )
        .unwrap();
        let values: Vec<f64> = (0..192)
            .map(|i| if i == 100 { f64::NAN } else { i as f64 * 0.01 })
            .collect();
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap();
        let truth = TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            (0..192).map(|i| i as f64 * 0.01).collect(),
        )
        .unwrap();
        w.write_consumer("0", ConsumerKind::Household, &m, Some(&truth), Some(&truth))
            .unwrap();
        w.finish().unwrap();

        let ds = Dataset::open(&dir).unwrap();
        let day2 = TimeRange::starting_at(ts("2013-03-19"), Duration::days(1)).unwrap();
        let (slice, report) = ds.consumer_slice(0, day2).unwrap();
        assert_eq!(slice.start(), ts("2013-03-19"));
        assert_eq!(slice.len(), 96);
        assert_eq!(report.chunks_decoded, 1, "{report:?}");
        assert_eq!(report.chunks_skipped_slice, 1);
        for (j, v) in slice.values().iter().enumerate() {
            let orig = m.values()[96 + j];
            assert!(v.is_nan() == orig.is_nan());
            if !v.is_nan() {
                assert_eq!(v.to_bits(), orig.to_bits());
            }
        }

        // The ranged record slices measured AND truth to the range.
        let record = ds.consumer_in(0, day2, true).unwrap();
        assert_eq!(record.measured.len(), 96);
        assert_eq!(record.measured.gap_count(), 1);
        let truth_slice = record.truth_total.unwrap();
        assert_eq!(truth_slice.start(), ts("2013-03-19"));
        assert_eq!(truth_slice.len(), 96);
        assert_eq!(truth_slice.values()[0], 0.96);

        // Aggregates over the whole series answer from stats alone.
        let (agg, report) = ds.consumer_aggregates(0, &Scan::new()).unwrap();
        assert_eq!(report.chunks_decoded, 0);
        assert_eq!(report.chunks_stats_only, 2);
        assert_eq!(agg.gaps, 1);
        assert_eq!(agg.observed, 191);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_v1_datasets_write_and_read_back() {
        let dir = scratch("binv1");
        let mut w = DatasetWriter::create(
            &dir,
            "unit",
            "legacy-codec dataset",
            ts("2013-03-18"),
            Resolution::MIN_15,
            4,
            SeriesCodec::BinaryV1,
        )
        .unwrap();
        w.write_consumer("0", ConsumerKind::Household, &sample_measured(), None, None)
            .unwrap();
        w.finish().unwrap();
        // The file carries the FXM1 magic and the read path sniffs it.
        let raw = std::fs::read(dir.join("consumer_0.fxm")).unwrap();
        assert_eq!(codec::sniff(&raw), Some(codec::FxmVersion::V1));
        let ds = Dataset::open(&dir).unwrap();
        assert_eq!(ds.manifest().unwrap().codec, SeriesCodec::BinaryV1);
        assert_eq!(ds.codec(), SeriesCodec::BinaryV1);
        assert!(!ds.is_sharded());
        let rec = ds.consumer(0).unwrap();
        assert_eq!(rec.measured.gap_count(), 1);
        // Frames over v1 files carry no stats: scans degrade to full
        // decodes but still answer.
        let frame = ds.consumer_frame(0).unwrap();
        assert!(frame.chunks().iter().all(|c| c.stats.is_none()));
        let (agg, report) = ds.consumer_aggregates(0, &Scan::new()).unwrap();
        assert_eq!(agg.gaps, 1);
        assert_eq!(report.chunks_stats_only, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_ids_are_rejected_on_open() {
        let dir = scratch("dup");
        let mut manifest = write_sample(&dir, SeriesCodec::Csv);
        manifest.consumers[1].id = manifest.consumers[0].id.clone();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            serde_json::to_string_pretty(&manifest).unwrap(),
        )
        .unwrap();
        let err = Dataset::open(&dir).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
