//! Loss-free codecs for measured series: chunked `FXM1` binary and
//! `interval_start,kwh` CSV.
//!
//! Both formats carry gaps explicitly (a canonical `NaN` payload in the
//! binary format, an empty `kwh` field in CSV) and round-trip exactly:
//! the binary format stores raw IEEE-754 bits, and the CSV writer uses
//! Rust's shortest round-trip float rendering, so
//! `decode(encode(m)) == m` byte for byte in both directions.
//!
//! ## `FXM1` layout (all little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"FXM1"` |
//! | 4      | 8    | start (i64 minutes since flextract epoch) |
//! | 12     | 4    | resolution (u32 minutes) |
//! | 16     | 8    | total length (u64 interval count) |
//! | 24     | 4    | chunk length (u32 intervals per chunk) |
//! | 28     | …    | chunk frames |
//!
//! Each chunk frame is `[u32 count][count × f64]`, with `count` equal
//! to the chunk length except for the final chunk. Chunk framing lets
//! a reader process one chunk at a time ([`for_each_chunk`]) without
//! materialising the whole value vector — available for streaming
//! consumers, though the bundled tooling currently decodes whole
//! series (`inspect` summarises from the manifest alone).

use crate::{DatasetError, MeasuredSeries};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use flextract_series::SeriesError;
use flextract_time::{Resolution, Timestamp};

/// Format magic: "FXM" (flextract measured) + version 1.
pub const MAGIC: [u8; 4] = *b"FXM1";

/// Size in bytes of the fixed header.
pub const HEADER_LEN: usize = 28;

/// Default intervals per chunk: one 15-min day. Chosen so a chunk is a
/// few KiB — small enough to stream, large enough that framing
/// overhead (4 bytes per chunk) is noise.
pub const DEFAULT_CHUNK_LEN: usize = 96;

/// The canonical gap payload: every `NaN` is normalised to this bit
/// pattern on encode, so encoding is a pure function of the series
/// (two equal series always encode to identical bytes).
const GAP_BITS: u64 = 0x7FF8_0000_0000_0000;

/// Encode a measured series into a freshly allocated buffer using
/// [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode(series: &MeasuredSeries) -> Bytes {
    encode_chunked(series, DEFAULT_CHUNK_LEN)
}

/// Encode with an explicit chunk length (≥ 1; clamped from 0).
pub fn encode_chunked(series: &MeasuredSeries, chunk_len: usize) -> Bytes {
    let chunk_len = chunk_len.max(1);
    let n = series.len();
    let chunks = n.div_ceil(chunk_len);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 4 * chunks + 8 * n);
    buf.put_slice(&MAGIC);
    buf.put_i64_le(series.start().as_minutes());
    buf.put_u32_le(series.resolution().minutes() as u32);
    buf.put_u64_le(n as u64);
    buf.put_u32_le(chunk_len as u32);
    for chunk in series.values().chunks(chunk_len) {
        buf.put_u32_le(chunk.len() as u32);
        for &v in chunk {
            buf.put_u64_le(if v.is_nan() { GAP_BITS } else { v.to_bits() });
        }
    }
    buf.freeze()
}

/// Parsed `FXM1` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// First instant covered by the series.
    pub start: Timestamp,
    /// Interval width.
    pub resolution: Resolution,
    /// Total interval count across all chunks.
    pub len: usize,
    /// Intervals per chunk (the final chunk may be shorter).
    pub chunk_len: usize,
}

fn codec_err(file: &str, what: &'static str) -> DatasetError {
    DatasetError::Codec {
        file: file.to_string(),
        what: what.to_string(),
    }
}

/// Decode just the header of an `FXM1` buffer. `file` names the source
/// in errors.
pub fn decode_header(buf: &mut impl Buf, file: &str) -> Result<Header, DatasetError> {
    if buf.remaining() < HEADER_LEN {
        return Err(codec_err(file, "buffer shorter than header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(codec_err(file, "bad magic (expected FXM1)"));
    }
    let start = Timestamp::from_minutes(buf.get_i64_le());
    let resolution = Resolution::from_minutes(buf.get_u32_le() as i64)
        .map_err(|_| codec_err(file, "invalid resolution"))?;
    if !start.is_aligned(resolution) {
        return Err(codec_err(file, "unaligned start"));
    }
    let len = buf.get_u64_le();
    if len > (usize::MAX / 8) as u64 {
        return Err(codec_err(file, "length overflow"));
    }
    let chunk_len = buf.get_u32_le() as usize;
    if chunk_len == 0 {
        return Err(codec_err(file, "zero chunk length"));
    }
    Ok(Header {
        start,
        resolution,
        len: len as usize,
        chunk_len,
    })
}

/// Stream the chunks of an `FXM1` buffer through `visit` without ever
/// holding more than one chunk of decoded values. Returns the header.
///
/// `visit` receives the index of the first interval in the chunk and
/// the chunk's values (gaps as `NaN`).
pub fn for_each_chunk(
    mut buf: impl Buf,
    file: &str,
    mut visit: impl FnMut(usize, &[f64]),
) -> Result<Header, DatasetError> {
    let header = decode_header(&mut buf, file)?;
    // The header's chunk_len is attacker-controlled; cap the upfront
    // allocation by what the remaining buffer could actually hold so a
    // corrupt file yields a codec error, not a huge allocation.
    let cap = header.chunk_len.min(header.len).min(buf.remaining() / 8);
    let mut chunk = Vec::with_capacity(cap);
    let mut offset = 0usize;
    while offset < header.len {
        let expected = header.chunk_len.min(header.len - offset);
        if buf.remaining() < 4 {
            return Err(codec_err(file, "truncated chunk frame"));
        }
        let count = buf.get_u32_le() as usize;
        if count != expected {
            return Err(codec_err(file, "chunk count disagrees with header"));
        }
        if buf.remaining() < count * 8 {
            return Err(codec_err(file, "truncated chunk payload"));
        }
        chunk.clear();
        for _ in 0..count {
            let v = f64::from_bits(buf.get_u64_le());
            if v.is_infinite() {
                return Err(codec_err(file, "infinite value in chunk payload"));
            }
            chunk.push(v);
        }
        visit(offset, &chunk);
        offset += count;
    }
    if buf.remaining() > 0 {
        return Err(codec_err(file, "trailing bytes after final chunk"));
    }
    Ok(header)
}

/// Decode a full measured series from an `FXM1` buffer. `file` names
/// the source in errors.
pub fn decode(buf: impl Buf, file: &str) -> Result<MeasuredSeries, DatasetError> {
    let mut values = Vec::new();
    let header = for_each_chunk(buf, file, |_, chunk| values.extend_from_slice(chunk))?;
    MeasuredSeries::new(header.start, header.resolution, values).map_err(|e| match e {
        SeriesError::UnalignedStart => codec_err(file, "unaligned start"),
        other => DatasetError::Series(other),
    })
}

/// Render a measured series as `interval_start,kwh` CSV; a gap is an
/// empty `kwh` field. Values use Rust's shortest round-trip float
/// rendering, so parsing the output reproduces the series exactly.
pub fn to_csv(series: &MeasuredSeries) -> String {
    let mut out = String::with_capacity(series.len() * 28 + 20);
    out.push_str("interval_start,kwh\n");
    for (i, &v) in series.values().iter().enumerate() {
        let t = series.timestamp_of(i);
        if v.is_nan() {
            out.push_str(&format!("{t},\n"));
        } else {
            out.push_str(&format!("{t},{v}\n"));
        }
    }
    out
}

/// Parse `interval_start,kwh` CSV into a measured series.
///
/// Every row's timestamp must land exactly on the grid implied by the
/// first two rows (same spacing, no missing rows — a missing *value* is
/// an empty `kwh` field, not an absent line). Errors name `file`, the
/// 1-based row, and the offending column.
pub fn from_csv(text: &str, file: &str) -> Result<MeasuredSeries, DatasetError> {
    let mut rows: Vec<(usize, Timestamp, f64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let row = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with("interval_start") {
            continue;
        }
        let Some((ts_part, kwh_part)) = line.rsplit_once(',') else {
            return Err(DatasetError::Csv {
                file: file.to_string(),
                row,
                column: "interval_start",
                what: "expected `timestamp,kwh`".to_string(),
            });
        };
        let t: Timestamp = ts_part.trim().parse().map_err(|e| DatasetError::Csv {
            file: file.to_string(),
            row,
            column: "interval_start",
            what: format!("bad timestamp `{}`: {e}", ts_part.trim()),
        })?;
        let kwh_part = kwh_part.trim();
        let v: f64 = if kwh_part.is_empty() {
            f64::NAN
        } else {
            let parsed: f64 = kwh_part.parse().map_err(|_| DatasetError::Csv {
                file: file.to_string(),
                row,
                column: "kwh",
                what: format!("not a number: `{kwh_part}`"),
            })?;
            if parsed.is_infinite() || parsed.is_nan() {
                return Err(DatasetError::Csv {
                    file: file.to_string(),
                    row,
                    column: "kwh",
                    what: format!("non-finite value `{kwh_part}` (use an empty field for a gap)"),
                });
            }
            parsed
        };
        rows.push((row, t, v));
    }
    if rows.len() < 2 {
        return Err(DatasetError::Invalid {
            file: file.to_string(),
            what: "CSV needs at least two data rows".to_string(),
        });
    }
    let step = (rows[1].1 - rows[0].1).as_minutes();
    let resolution = Resolution::from_minutes(step).map_err(|_| DatasetError::Csv {
        file: file.to_string(),
        row: rows[1].0,
        column: "interval_start",
        what: format!("rows are {step} min apart, which does not divide a day"),
    })?;
    let start = rows[0].1;
    for (i, &(row, t, _)) in rows.iter().enumerate() {
        let expected = start + resolution.interval() * i as i64;
        if t != expected {
            return Err(DatasetError::Csv {
                file: file.to_string(),
                row,
                column: "interval_start",
                what: format!("timestamp {t} is off-grid (expected {expected})"),
            });
        }
    }
    MeasuredSeries::new(
        start,
        resolution,
        rows.into_iter().map(|(_, _, v)| v).collect(),
    )
    .map_err(|e| match e {
        SeriesError::UnalignedStart => DatasetError::Csv {
            file: file.to_string(),
            row: 2,
            column: "interval_start",
            what: "series start is not aligned to the resolution grid".to_string(),
        },
        other => DatasetError::Series(other),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn sample() -> MeasuredSeries {
        MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.25, f64::NAN, 0.75, 1.0, f64::NAN],
        )
        .unwrap()
    }

    #[test]
    fn binary_round_trip_preserves_gaps() {
        let m = sample();
        let bytes = encode(&m);
        let back = decode(bytes, "test.fxm").unwrap();
        assert_eq!(back.start(), m.start());
        assert_eq!(back.resolution(), m.resolution());
        assert_eq!(back.gap_count(), 2);
        for (a, b) in back.values().iter().zip(m.values()) {
            assert!(a.is_nan() == b.is_nan());
            if !a.is_nan() {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn encoding_is_deterministic_across_nan_payloads() {
        // A NaN produced by arithmetic may carry a different bit
        // pattern than f64::NAN; encoding canonicalises them.
        let quiet = f64::NAN;
        let arithmetic = f64::from_bits(0x7FF8_0000_0000_0001);
        assert!(arithmetic.is_nan());
        let a =
            MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0, quiet]).unwrap();
        let b = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, vec![1.0, arithmetic])
            .unwrap();
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn chunk_framing_is_respected() {
        let values: Vec<f64> = (0..250).map(|i| i as f64 * 0.01).collect();
        let m = MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_1, values).unwrap();
        let bytes = encode_chunked(&m, 96);
        let mut offsets = Vec::new();
        let header = for_each_chunk(bytes.clone(), "t.fxm", |off, chunk| {
            offsets.push((off, chunk.len()));
        })
        .unwrap();
        assert_eq!(header.len, 250);
        assert_eq!(header.chunk_len, 96);
        assert_eq!(offsets, vec![(0, 96), (96, 96), (192, 58)]);
        let back = decode(bytes, "t.fxm").unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_malformed_buffers() {
        let raw = encode(&sample());
        assert!(matches!(
            decode(raw.slice(..10), "t.fxm"),
            Err(DatasetError::Codec { .. })
        ));
        let mut bad_magic = raw.to_vec();
        bad_magic[0] = b'X';
        let err = decode(Bytes::from(bad_magic), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Truncated payload.
        assert!(matches!(
            decode(raw.slice(..raw.len() - 4), "t.fxm"),
            Err(DatasetError::Codec { .. })
        ));
        // Trailing junk.
        let mut long = raw.to_vec();
        long.push(0);
        let err = decode(Bytes::from(long), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // Infinity in the payload.
        let mut inf = raw.to_vec();
        let val_at = HEADER_LEN + 4; // first chunk frame count, then first value
        inf[val_at..val_at + 8].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        let err = decode(Bytes::from(inf), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("infinite"), "{err}");
    }

    #[test]
    fn huge_declared_lengths_fail_without_allocating() {
        // A header claiming u32::MAX-interval chunks with no payload
        // must produce a codec error, not a multi-GiB allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_i64_le(0); // aligned start
        buf.put_u32_le(15);
        buf.put_u64_le(u64::from(u32::MAX));
        buf.put_u32_le(u32::MAX);
        let err = decode(buf.freeze(), "t.fxm").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let m = MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.1 + 0.2, f64::NAN, 1.0 / 3.0, 9.079835455161108],
        )
        .unwrap();
        let csv = to_csv(&m);
        let back = from_csv(&csv, "t.csv").unwrap();
        assert_eq!(back.start(), m.start());
        for (a, b) in back.values().iter().zip(m.values()) {
            assert!(a.is_nan() == b.is_nan());
            if !a.is_nan() {
                assert_eq!(a.to_bits(), b.to_bits(), "shortest-float must round-trip");
            }
        }
        // And the re-render is byte-identical.
        assert_eq!(to_csv(&back), csv);
    }

    #[test]
    fn csv_errors_name_file_row_and_column() {
        let bad_value = "interval_start,kwh\n2013-03-18 00:00,1.0\n2013-03-18 00:15,abc\n";
        let err = from_csv(bad_value, "bad.csv").unwrap_err();
        assert_eq!(
            err,
            DatasetError::Csv {
                file: "bad.csv".into(),
                row: 3,
                column: "kwh",
                what: "not a number: `abc`".into(),
            }
        );

        let bad_ts = "interval_start,kwh\nnot-a-time,1.0\n2013-03-18 00:15,1.0\n";
        let err = from_csv(bad_ts, "bad.csv").unwrap_err();
        assert!(matches!(
            err,
            DatasetError::Csv {
                row: 2,
                column: "interval_start",
                ..
            }
        ));

        // Off-grid timestamp (a skipped row) is named precisely.
        let skipped =
            "interval_start,kwh\n2013-03-18 00:00,1.0\n2013-03-18 00:15,1.0\n2013-03-18 01:00,1.0\n";
        let err = from_csv(skipped, "bad.csv").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 4"), "{msg}");
        assert!(msg.contains("off-grid"), "{msg}");

        // Explicit NaN text is rejected — gaps are empty fields.
        let nan_text = "interval_start,kwh\n2013-03-18 00:00,NaN\n2013-03-18 00:15,1.0\n";
        let err = from_csv(nan_text, "bad.csv").unwrap_err();
        assert!(err.to_string().contains("empty field"), "{err}");

        // Too few rows.
        let err = from_csv("interval_start,kwh\n2013-03-18 00:00,1.0\n", "bad.csv").unwrap_err();
        assert!(matches!(err, DatasetError::Invalid { .. }));
    }

    #[test]
    fn gap_only_fields_parse_as_gaps() {
        let csv = "interval_start,kwh\n2013-03-18 00:00,\n2013-03-18 00:15,0.5\n";
        let m = from_csv(csv, "t.csv").unwrap();
        assert_eq!(m.gap_count(), 1);
        assert!(m.values()[0].is_nan());
        assert_eq!(m.values()[1], 0.5);
    }
}
