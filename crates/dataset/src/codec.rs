//! Loss-free codecs for measured series: the chunked binary frame
//! formats (compressed `FXM3`, stat-carrying `FXM2` and legacy `FXM1`,
//! all owned by [`flextract_frame::fxm`]) and `interval_start,kwh` CSV.
//!
//! All formats carry gaps explicitly (a gap bitmap in `FXM3`, a
//! canonical `NaN` payload in the older binary formats, an empty `kwh`
//! field in CSV) and round-trip exactly: the binary formats preserve
//! raw IEEE-754 bits (`FXM3` compresses them losslessly), and the CSV
//! writer uses Rust's shortest round-trip float rendering, so
//! `decode(encode(m)) == m` byte for byte in both directions.
//!
//! The binary layouts (including the `FXM2` per-chunk statistics and
//! footer chunk index) are documented on [`flextract_frame::fxm`];
//! this module adapts them to [`DatasetError`] and keeps the CSV
//! format, which is row-shaped and needs row/column error context the
//! frame layer has no concept of.

use crate::{DatasetError, MeasuredSeries};
use bytes::Bytes;
use flextract_frame::fxm;
use flextract_series::SeriesError;
use flextract_time::{Resolution, Timestamp};

pub use flextract_frame::fxm::{sniff, FxmVersion, DEFAULT_CHUNK_LEN};

/// Encode a measured series as `FXM2` (per-chunk statistics + footer
/// chunk index) using [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode(series: &MeasuredSeries) -> Bytes {
    fxm::encode(series)
}

/// Encode as `FXM2` with an explicit chunk length. Errors on
/// `chunk_len == 0` (never silently clamped).
pub fn encode_chunked(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, DatasetError> {
    fxm::encode_chunked(series, chunk_len).map_err(Into::into)
}

/// Encode as legacy `FXM1` (no statistics — readers fall back to full
/// decodes) using [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode_v1(series: &MeasuredSeries) -> Bytes {
    fxm::encode_v1(series)
}

/// Encode as legacy `FXM1` with an explicit chunk length (same
/// zero-chunk-length contract as [`encode_chunked`]).
pub fn encode_chunked_v1(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, DatasetError> {
    fxm::encode_chunked_v1(series, chunk_len).map_err(Into::into)
}

/// Encode as `FXM3` (per-chunk statistics + XOR-compressed payloads)
/// using [`DEFAULT_CHUNK_LEN`]-interval chunks.
pub fn encode_v3(series: &MeasuredSeries) -> Bytes {
    fxm::encode_v3(series)
}

/// Encode as `FXM3` with an explicit chunk length (same
/// zero-chunk-length contract as [`encode_chunked`]).
pub fn encode_chunked_v3(series: &MeasuredSeries, chunk_len: usize) -> Result<Bytes, DatasetError> {
    fxm::encode_chunked_v3(series, chunk_len).map_err(Into::into)
}

/// Decode a full measured series from a binary frame buffer (either
/// version, sniffed by magic). `file` names the source in errors.
pub fn decode(buf: &[u8], file: &str) -> Result<MeasuredSeries, DatasetError> {
    fxm::decode(buf, file).map_err(Into::into)
}

/// Render a measured series as `interval_start,kwh` CSV; a gap is an
/// empty `kwh` field. Values use Rust's shortest round-trip float
/// rendering, so parsing the output reproduces the series exactly.
pub fn to_csv(series: &MeasuredSeries) -> String {
    let mut out = String::with_capacity(series.len() * 28 + 20);
    out.push_str("interval_start,kwh\n");
    for (i, &v) in series.values().iter().enumerate() {
        let t = series.timestamp_of(i);
        if v.is_nan() {
            out.push_str(&format!("{t},\n"));
        } else {
            out.push_str(&format!("{t},{v}\n"));
        }
    }
    out
}

/// Parse `interval_start,kwh` CSV into a measured series.
///
/// Every row's timestamp must land exactly on the grid implied by the
/// first two rows (same spacing, no missing rows — a missing *value* is
/// an empty `kwh` field, not an absent line). Errors name `file`, the
/// 1-based row, and the offending column.
pub fn from_csv(text: &str, file: &str) -> Result<MeasuredSeries, DatasetError> {
    let mut rows: Vec<(usize, Timestamp, f64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let row = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with("interval_start") {
            continue;
        }
        let Some((ts_part, kwh_part)) = line.rsplit_once(',') else {
            return Err(DatasetError::Csv {
                file: file.to_string(),
                row,
                column: "interval_start",
                what: "expected `timestamp,kwh`".to_string(),
            });
        };
        let t: Timestamp = ts_part.trim().parse().map_err(|e| DatasetError::Csv {
            file: file.to_string(),
            row,
            column: "interval_start",
            what: format!("bad timestamp `{}`: {e}", ts_part.trim()),
        })?;
        let kwh_part = kwh_part.trim();
        let v: f64 = if kwh_part.is_empty() {
            f64::NAN
        } else {
            let parsed: f64 = kwh_part.parse().map_err(|_| DatasetError::Csv {
                file: file.to_string(),
                row,
                column: "kwh",
                what: format!("not a number: `{kwh_part}`"),
            })?;
            if parsed.is_infinite() || parsed.is_nan() {
                return Err(DatasetError::Csv {
                    file: file.to_string(),
                    row,
                    column: "kwh",
                    what: format!("non-finite value `{kwh_part}` (use an empty field for a gap)"),
                });
            }
            parsed
        };
        rows.push((row, t, v));
    }
    let (Some(&(_, start, _)), Some(&(second_row, second_t, _))) = (rows.first(), rows.get(1))
    else {
        return Err(DatasetError::Invalid {
            file: file.to_string(),
            what: "CSV needs at least two data rows".to_string(),
        });
    };
    let step = (second_t - start).as_minutes();
    let resolution = Resolution::from_minutes(step).map_err(|_| DatasetError::Csv {
        file: file.to_string(),
        row: second_row,
        column: "interval_start",
        what: format!("rows are {step} min apart, which does not divide a day"),
    })?;
    for (i, &(row, t, _)) in rows.iter().enumerate() {
        let expected = start + resolution.interval() * i as i64;
        if t != expected {
            return Err(DatasetError::Csv {
                file: file.to_string(),
                row,
                column: "interval_start",
                what: format!("timestamp {t} is off-grid (expected {expected})"),
            });
        }
    }
    MeasuredSeries::new(
        start,
        resolution,
        rows.into_iter().map(|(_, _, v)| v).collect(),
    )
    .map_err(|e| match e {
        SeriesError::UnalignedStart => DatasetError::Csv {
            file: file.to_string(),
            row: 2,
            column: "interval_start",
            what: "series start is not aligned to the resolution grid".to_string(),
        },
        other => DatasetError::Series(other),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn sample() -> MeasuredSeries {
        MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.25, f64::NAN, 0.75, 1.0, f64::NAN],
        )
        .unwrap()
    }

    #[test]
    fn all_binary_versions_round_trip_through_the_dataset_layer() {
        let m = sample();
        for bytes in [encode(&m), encode_v1(&m), encode_v3(&m)] {
            let back = decode(&bytes, "test.fxm").unwrap();
            assert_eq!(back.start(), m.start());
            assert_eq!(back.resolution(), m.resolution());
            assert_eq!(back.gap_count(), 2);
            for (a, b) in back.values().iter().zip(m.values()) {
                assert!(a.is_nan() == b.is_nan());
                if !a.is_nan() {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        assert_eq!(sniff(&encode(&m)), Some(FxmVersion::V2));
        assert_eq!(sniff(&encode_v1(&m)), Some(FxmVersion::V1));
        assert_eq!(sniff(&encode_v3(&m)), Some(FxmVersion::V3));
    }

    #[test]
    fn frame_errors_convert_to_dataset_errors() {
        let m = sample();
        // Zero chunk length surfaces as an Invalid error, not a clamp.
        let err = encode_chunked(&m, 0).unwrap_err();
        assert!(matches!(err, DatasetError::Invalid { .. }));
        assert!(err.to_string().contains("at least 1"), "{err}");
        let err = encode_chunked_v1(&m, 0).unwrap_err();
        assert!(matches!(err, DatasetError::Invalid { .. }));
        let err = encode_chunked_v3(&m, 0).unwrap_err();
        assert!(matches!(err, DatasetError::Invalid { .. }));
        // Trailing garbage keeps the byte offset in the message.
        let raw = encode_v1(&m);
        let clean_len = raw.len();
        let mut long = raw.to_vec();
        long.push(0);
        let err = decode(&long, "t.fxm").unwrap_err();
        assert!(matches!(err, DatasetError::Codec { .. }));
        let msg = err.to_string();
        assert!(msg.contains("trailing"), "{msg}");
        assert!(msg.contains(&format!("offset {clean_len}")), "{msg}");
        // Malformed headers stay codec errors.
        assert!(matches!(
            decode(&raw[..10], "t.fxm"),
            Err(DatasetError::Codec { .. })
        ));
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let m = MeasuredSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            vec![0.1 + 0.2, f64::NAN, 1.0 / 3.0, 9.079835455161108],
        )
        .unwrap();
        let csv = to_csv(&m);
        let back = from_csv(&csv, "t.csv").unwrap();
        assert_eq!(back.start(), m.start());
        for (a, b) in back.values().iter().zip(m.values()) {
            assert!(a.is_nan() == b.is_nan());
            if !a.is_nan() {
                assert_eq!(a.to_bits(), b.to_bits(), "shortest-float must round-trip");
            }
        }
        // And the re-render is byte-identical.
        assert_eq!(to_csv(&back), csv);
    }

    #[test]
    fn csv_errors_name_file_row_and_column() {
        let bad_value = "interval_start,kwh\n2013-03-18 00:00,1.0\n2013-03-18 00:15,abc\n";
        let err = from_csv(bad_value, "bad.csv").unwrap_err();
        assert_eq!(
            err,
            DatasetError::Csv {
                file: "bad.csv".into(),
                row: 3,
                column: "kwh",
                what: "not a number: `abc`".into(),
            }
        );

        let bad_ts = "interval_start,kwh\nnot-a-time,1.0\n2013-03-18 00:15,1.0\n";
        let err = from_csv(bad_ts, "bad.csv").unwrap_err();
        assert!(matches!(
            err,
            DatasetError::Csv {
                row: 2,
                column: "interval_start",
                ..
            }
        ));

        // Off-grid timestamp (a skipped row) is named precisely.
        let skipped =
            "interval_start,kwh\n2013-03-18 00:00,1.0\n2013-03-18 00:15,1.0\n2013-03-18 01:00,1.0\n";
        let err = from_csv(skipped, "bad.csv").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 4"), "{msg}");
        assert!(msg.contains("off-grid"), "{msg}");

        // Explicit NaN text is rejected — gaps are empty fields.
        let nan_text = "interval_start,kwh\n2013-03-18 00:00,NaN\n2013-03-18 00:15,1.0\n";
        let err = from_csv(nan_text, "bad.csv").unwrap_err();
        assert!(err.to_string().contains("empty field"), "{err}");

        // Too few rows.
        let err = from_csv("interval_start,kwh\n2013-03-18 00:00,1.0\n", "bad.csv").unwrap_err();
        assert!(matches!(err, DatasetError::Invalid { .. }));
    }

    #[test]
    fn gap_only_fields_parse_as_gaps() {
        let csv = "interval_start,kwh\n2013-03-18 00:00,\n2013-03-18 00:15,0.5\n";
        let m = from_csv(csv, "t.csv").unwrap();
        assert_eq!(m.gap_count(), 1);
        assert!(m.values()[0].is_nan());
        assert_eq!(m.values()[1], 0.5);
    }
}
