//! Seeded degradation operators: simulated fleet → realistic meter feed.
//!
//! Exporting a simulated fleet to the metered format runs each
//! consumer's pristine series through a [`Degradation`], which models
//! the four ways real metering data differs from a simulator's output:
//!
//! 1. **Granularity** — meters report coarse intervals (the paper's
//!    "only 15 min" caveat): exact energy-conserving downsampling.
//! 2. **Measurement noise** — multiplicative Gaussian error per
//!    interval.
//! 3. **Anomalies** — spurious spikes/dropouts (a stuck register, a
//!    neighbour's feed crossing over): short runs scaled by a factor.
//! 4. **Gaps** — meter or transmission outages: runs of missing
//!    intervals with a geometric length distribution.
//! 5. **Register quantization** — meters report whole register steps
//!    (a 1000 imp/kWh meter resolves 1 Wh), so read-outs snap to a
//!    grid instead of carrying the simulator's full float precision.
//!
//! Every operator draws from one caller-provided RNG in a fixed order
//! (noise, then anomalies, then gaps; quantization is deterministic
//! and draws nothing), so a degradation is a pure function of
//! `(series, seed)` — exported datasets are reproducible byte for
//! byte, which is what lets the committed corpus datasets be CI-gated
//! like golden files.

use crate::{DatasetError, MeasuredSeries};
use flextract_series::{resample, TimeSeries};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the export-time degradation operators.
///
/// The default is the identity: no resampling, no noise, no anomalies,
/// no gaps — `apply` then reproduces the input values exactly, which is
/// what the round-trip property test pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// Downsample to this resolution before anything else (`None` keeps
    /// the source resolution). Must be a whole multiple of the source
    /// resolution and at most one day.
    pub resolution_min: Option<i64>,
    /// Standard deviation of multiplicative measurement noise, as a
    /// fraction of each interval's value (0 = no noise). A noisy value
    /// is clamped at zero — meters do not report negative consumption.
    pub noise_std: f64,
    /// Per-interval probability that an anomaly run starts (0 = none).
    pub anomaly_rate: f64,
    /// Multiplier applied during an anomaly run (e.g. 4.0 for spikes,
    /// 0.0 for dropouts).
    pub anomaly_factor: f64,
    /// Anomaly run length in intervals (fixed, ≥ 1).
    pub anomaly_len: usize,
    /// Per-interval probability that a gap run starts (0 = none).
    pub gap_rate: f64,
    /// Mean gap run length in intervals (geometric distribution, ≥ 1).
    pub mean_gap_len: f64,
    /// Meter register resolution in kWh (0 = full float precision).
    /// Observed read-outs are rounded to the nearest multiple — a
    /// standard 1000 imp/kWh household meter is `0.001`. Quantized
    /// feeds are also what makes the `FXM3` XOR codec earn its keep:
    /// repeated register values compress to one bit per interval.
    /// Absent in manifests written before this field existed, so it
    /// defaults to 0 on deserialization.
    #[serde(default)]
    pub quantize_kwh: f64,
}

impl Default for Degradation {
    fn default() -> Self {
        Degradation {
            resolution_min: None,
            noise_std: 0.0,
            anomaly_rate: 0.0,
            anomaly_factor: 4.0,
            anomaly_len: 2,
            gap_rate: 0.0,
            mean_gap_len: 4.0,
            quantize_kwh: 0.0,
        }
    }
}

impl Degradation {
    /// `true` when applying this degradation reproduces the input
    /// exactly (no resampling, noise, anomalies, or gaps).
    pub fn is_identity(&self) -> bool {
        self.resolution_min.is_none()
            && self.noise_std == 0.0
            && self.anomaly_rate == 0.0
            && self.gap_rate == 0.0
            && self.quantize_kwh == 0.0
    }

    /// Check every field's domain.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(res) = self.resolution_min {
            if !(1..=24 * 60).contains(&res) {
                return Err(format!("resolution_min must be in [1, 1440], got {res}"));
            }
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err("noise_std must be finite and non-negative".into());
        }
        for (name, rate) in [
            ("anomaly_rate", self.anomaly_rate),
            ("gap_rate", self.gap_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if !self.anomaly_factor.is_finite() || self.anomaly_factor < 0.0 {
            return Err("anomaly_factor must be finite and non-negative".into());
        }
        if self.anomaly_len == 0 {
            return Err("anomaly_len must be at least 1".into());
        }
        if !self.mean_gap_len.is_finite() || self.mean_gap_len < 1.0 {
            return Err("mean_gap_len must be at least 1".into());
        }
        if !self.quantize_kwh.is_finite() || self.quantize_kwh < 0.0 {
            return Err("quantize_kwh must be finite and non-negative".into());
        }
        Ok(())
    }

    /// Run `series` through the degradation pipeline with `rng`.
    ///
    /// Operator order is fixed (downsample → noise → anomalies → gaps)
    /// and each operator makes exactly one pass over the intervals, so
    /// the output is a deterministic function of the input and the RNG
    /// state. Gaps are injected last: an interval a meter never
    /// reported cannot also carry noise.
    pub fn apply(
        &self,
        series: &TimeSeries,
        rng: &mut StdRng,
    ) -> Result<MeasuredSeries, DatasetError> {
        self.validate().map_err(|what| DatasetError::Invalid {
            file: "<degradation>".to_string(),
            what,
        })?;
        let coarse = match self.resolution_min {
            None => series.clone(),
            Some(min) => {
                // Downsample only: a finer target would *fabricate*
                // measurements (uniform smearing), which is not a
                // degradation a real meter can produce.
                let source_min = series.resolution().minutes();
                if min < source_min || min % source_min != 0 {
                    return Err(DatasetError::Invalid {
                        file: "<degradation>".to_string(),
                        what: format!(
                            "resolution_min {min} must be a whole multiple of the source \
                             resolution ({source_min} min); upsampling would fabricate data"
                        ),
                    });
                }
                let target = flextract_time::Resolution::from_minutes(min).map_err(|e| {
                    DatasetError::Invalid {
                        file: "<degradation>".to_string(),
                        what: format!("resolution_min {min}: {e}"),
                    }
                })?;
                resample::to_resolution(series, target)?
            }
        };
        let mut values = coarse.values().to_vec();
        if self.noise_std > 0.0 {
            for v in values.iter_mut() {
                *v = (*v * (1.0 + self.noise_std * standard_normal(rng))).max(0.0);
            }
        }
        if self.anomaly_rate > 0.0 {
            let mut i = 0;
            while i < values.len() {
                if rng.gen_bool(self.anomaly_rate) {
                    let end = (i + self.anomaly_len).min(values.len());
                    for v in values.iter_mut().take(end).skip(i) {
                        *v *= self.anomaly_factor;
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
        }
        if self.gap_rate > 0.0 {
            let mut i = 0;
            while i < values.len() {
                if rng.gen_bool(self.gap_rate) {
                    let len = geometric_len(rng, self.mean_gap_len, values.len() - i);
                    for v in values.iter_mut().take(i + len).skip(i) {
                        *v = f64::NAN;
                    }
                    i += len;
                } else {
                    i += 1;
                }
            }
        }
        if self.quantize_kwh > 0.0 {
            // The register read-out is the meter's last step, after
            // every error source; gaps stay NaN (an interval that was
            // never reported has no register delta to round). This
            // draws no randomness, so it cannot shift the RNG stream
            // of the seeded operators above.
            for v in values.iter_mut().filter(|v| !v.is_nan()) {
                *v = (*v / self.quantize_kwh).round() * self.quantize_kwh;
            }
        }
        MeasuredSeries::new(coarse.start(), coarse.resolution(), values).map_err(Into::into)
    }
}

/// A standard-normal draw via the Box–Muller transform (the vendored
/// `rand` has no `rand_distr`; this mirrors `flextract_sim::randomness`
/// without pulling the simulator into the dataset layer).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A geometric run length with the given mean, capped at `max`.
fn geometric_len(rng: &mut StdRng, mean: f64, max: usize) -> usize {
    let stop = 1.0 / mean.max(1.0);
    let mut len = 1;
    while len < max && !rng.gen_bool(stop) {
        len += 1;
    }
    len.min(max.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::{Resolution, Timestamp};
    use rand::SeedableRng;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn day() -> TimeSeries {
        TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_1,
            (0..1440).map(|i| 0.01 + (i % 60) as f64 * 1e-4).collect(),
        )
        .unwrap()
    }

    #[test]
    fn identity_degradation_is_exact() {
        let d = Degradation::default();
        assert!(d.is_identity());
        let s = day();
        let m = d.apply(&s, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(m.gap_count(), 0);
        assert_eq!(m.values(), s.values());
        assert_eq!(m.resolution(), s.resolution());
    }

    #[test]
    fn downsample_conserves_energy() {
        let d = Degradation {
            resolution_min: Some(15),
            ..Degradation::default()
        };
        let s = day();
        let m = d.apply(&s, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(m.resolution(), Resolution::MIN_15);
        assert_eq!(m.len(), 96);
        assert!((m.observed_energy() - s.total_energy()).abs() < 1e-9);
    }

    #[test]
    fn degradation_is_deterministic_per_seed() {
        let d = Degradation {
            resolution_min: Some(15),
            noise_std: 0.05,
            anomaly_rate: 0.01,
            gap_rate: 0.02,
            ..Degradation::default()
        };
        let s = day();
        let a = d.apply(&s, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = d.apply(&s, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(crate::codec::encode(&a), crate::codec::encode(&b));
        let c = d.apply(&s, &mut StdRng::seed_from_u64(10)).unwrap();
        assert_ne!(crate::codec::encode(&a), crate::codec::encode(&c));
    }

    #[test]
    fn gaps_are_injected_and_noise_stays_non_negative() {
        let d = Degradation {
            gap_rate: 0.1,
            noise_std: 2.0, // huge noise to provoke negative draws
            ..Degradation::default()
        };
        let m = d.apply(&day(), &mut StdRng::seed_from_u64(3)).unwrap();
        assert!(m.gap_count() > 0, "expected gaps at 10 % rate");
        assert!(m.values().iter().all(|v| v.is_nan() || *v >= 0.0));
    }

    #[test]
    fn quantization_snaps_to_the_register_grid_and_skips_gaps() {
        let d = Degradation {
            gap_rate: 0.05,
            noise_std: 0.1,
            quantize_kwh: 0.001,
            ..Degradation::default()
        };
        assert!(!d.is_identity());
        let m = d.apply(&day(), &mut StdRng::seed_from_u64(7)).unwrap();
        assert!(m.gap_count() > 0, "expected gaps at 5 % rate");
        for &v in m.values().iter().filter(|v| !v.is_nan()) {
            let steps = v / 0.001;
            assert!(
                (steps - steps.round()).abs() < 1e-9,
                "{v} is off the 1 Wh register grid"
            );
        }
        // Quantization draws no randomness: the gap pattern matches the
        // same degradation without it, seed for seed.
        let plain = Degradation {
            quantize_kwh: 0.0,
            ..d.clone()
        };
        let p = plain.apply(&day(), &mut StdRng::seed_from_u64(7)).unwrap();
        let gaps =
            |s: &MeasuredSeries| s.values().iter().map(|v| v.is_nan()).collect::<Vec<bool>>();
        assert_eq!(gaps(&m), gaps(&p));
    }

    #[test]
    fn anomalies_scale_runs() {
        let d = Degradation {
            anomaly_rate: 0.05,
            anomaly_factor: 10.0,
            anomaly_len: 3,
            ..Degradation::default()
        };
        let s = day();
        let m = d.apply(&s, &mut StdRng::seed_from_u64(4)).unwrap();
        let spiked = m
            .values()
            .iter()
            .zip(s.values())
            .filter(|(a, b)| **a > **b * 5.0)
            .count();
        assert!(spiked > 0, "expected spiked intervals");
    }

    #[test]
    fn domains_are_validated() {
        for bad in [
            Degradation {
                noise_std: -0.1,
                ..Degradation::default()
            },
            Degradation {
                gap_rate: 1.5,
                ..Degradation::default()
            },
            Degradation {
                anomaly_len: 0,
                ..Degradation::default()
            },
            Degradation {
                mean_gap_len: 0.5,
                ..Degradation::default()
            },
            Degradation {
                resolution_min: Some(0),
                ..Degradation::default()
            },
            Degradation {
                quantize_kwh: f64::NAN,
                ..Degradation::default()
            },
            Degradation {
                quantize_kwh: -0.001,
                ..Degradation::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
            assert!(bad.apply(&day(), &mut StdRng::seed_from_u64(0)).is_err());
        }
    }

    #[test]
    fn upsampling_is_rejected() {
        let fifteen = TimeSeries::new(
            ts("2013-03-18"),
            Resolution::MIN_15,
            (0..96).map(|i| 0.1 + i as f64 * 1e-3).collect(),
        )
        .unwrap();
        for bad in [5, 10, 40] {
            let d = Degradation {
                resolution_min: Some(bad),
                ..Degradation::default()
            };
            let err = d
                .apply(&fifteen, &mut StdRng::seed_from_u64(0))
                .unwrap_err();
            assert!(err.to_string().contains("whole multiple"), "{err}");
        }
        // Equal and coarser multiples are fine.
        for good in [15, 30, 60] {
            let d = Degradation {
                resolution_min: Some(good),
                ..Degradation::default()
            };
            assert!(d.apply(&fifteen, &mut StdRng::seed_from_u64(0)).is_ok());
        }
    }

    #[test]
    fn serde_round_trip() {
        let d = Degradation {
            resolution_min: Some(15),
            noise_std: 0.02,
            gap_rate: 0.01,
            ..Degradation::default()
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Degradation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
