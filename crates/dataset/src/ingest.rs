//! The cleaning stage: measured series → extraction-ready series.
//!
//! Ingestion runs two deterministic repairs in a fixed order:
//!
//! 1. **Gap fill** — missing intervals are filled with the configured
//!    [`FillStrategy`] (see [`flextract_series::missing::fill_gaps`]
//!    for per-strategy edge behavior and the energy bound);
//! 2. **Anomaly screen** (optional) — runs deviating from a rolling
//!    baseline beyond a z-threshold are masked back into gaps
//!    ([`flextract_series::anomaly::mask_anomalies`]) and re-filled
//!    with the same strategy, so a stuck register or a spurious spike
//!    is replaced by plausible signal instead of poisoning extraction.
//!
//! Both repairs are pure functions of the input, so a cleaned dataset
//! consumer is as deterministic as a simulated one — which is what lets
//! dataset-backed scenarios live in the golden-file corpus.
//!
//! Cleaning is **chunk-windowed**: its input is a scan window
//! (typically the scenario horizon materialized through
//! [`crate::Dataset::consumer_in`], which assembles only the chunks
//! overlapping the window), never the whole stored series — so
//! gap-fill and the rolling-z screen cost `O(window)`, not `O(file)`,
//! when a scenario reads one day of a month-long feed.

use crate::{DatasetError, MeasuredSeries};
use flextract_series::{anomaly, missing, FillStrategy, TimeSeries};
use serde::{Deserialize, Serialize};

/// Configuration of the cleaning stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CleaningConfig {
    /// Gap-fill strategy (also used to re-fill screened anomalies).
    pub fill: FillStrategy,
    /// Whether to run the anomaly screen after gap filling.
    pub screen_anomalies: bool,
    /// Rolling-baseline window for the anomaly screen, in intervals;
    /// `0` means one day at the series resolution.
    pub anomaly_window: usize,
    /// z-threshold for the anomaly screen (deviations beyond
    /// `z · rolling std` are screened).
    pub anomaly_z: f64,
    /// Absolute deviation floor (kWh) below which nothing is screened,
    /// whatever the z-score — keeps flat series from flagging noise.
    pub noise_floor_kwh: f64,
}

impl Default for CleaningConfig {
    fn default() -> Self {
        CleaningConfig {
            fill: FillStrategy::Linear,
            screen_anomalies: false,
            anomaly_window: 0,
            anomaly_z: 4.0,
            noise_floor_kwh: 0.05,
        }
    }
}

impl CleaningConfig {
    /// Check every field's domain.
    pub fn validate(&self) -> Result<(), String> {
        if !self.anomaly_z.is_finite() || self.anomaly_z <= 0.0 {
            return Err("anomaly_z must be finite and positive".into());
        }
        if !self.noise_floor_kwh.is_finite() || self.noise_floor_kwh < 0.0 {
            return Err("noise_floor_kwh must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// What the cleaning stage repaired, for one consumer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Missing intervals filled by the gap-fill pass.
    pub gaps_filled: usize,
    /// Anomalous runs screened (0 when screening is off).
    pub anomalies_screened: usize,
    /// Intervals covered by those runs.
    pub anomalous_intervals: usize,
    /// Total absolute energy adjustment of the screen (kWh): how much
    /// the screened intervals changed between detection and re-fill.
    pub screened_kwh: f64,
}

impl CleaningReport {
    /// Merge another consumer's report into this fleet-level tally.
    pub fn absorb(&mut self, other: &CleaningReport) {
        self.gaps_filled += other.gaps_filled;
        self.anomalies_screened += other.anomalies_screened;
        self.anomalous_intervals += other.anomalous_intervals;
        self.screened_kwh += other.screened_kwh;
    }
}

/// Run the cleaning stage on one measured series.
///
/// Returns the extraction-ready series and the repair tally. Errors if
/// the series is all-gaps under a non-[`FillStrategy::Zero`] strategy
/// (nothing to anchor a fill), or if the config is out of domain.
pub fn clean(
    measured: MeasuredSeries,
    cfg: &CleaningConfig,
) -> Result<(TimeSeries, CleaningReport), DatasetError> {
    cfg.validate().map_err(|what| DatasetError::Invalid {
        file: "<cleaning>".to_string(),
        what,
    })?;
    let mut report = CleaningReport::default();
    let (mut series, gaps_filled) = measured.fill(cfg.fill)?;
    report.gaps_filled = gaps_filled;
    if cfg.screen_anomalies && !series.is_empty() {
        let window = if cfg.anomaly_window == 0 {
            series.resolution().intervals_per_day()
        } else {
            cfg.anomaly_window
        };
        let anomalies =
            anomaly::rolling_anomalies(&series, window, cfg.anomaly_z, cfg.noise_floor_kwh);
        if !anomalies.is_empty() {
            report.anomalies_screened = anomalies.len();
            report.anomalous_intervals = anomalies.iter().map(|a| a.intervals).sum();
            let mut values = anomaly::mask_anomalies(&series, &anomalies);
            missing::fill_gaps(
                &mut values,
                cfg.fill,
                series.resolution().intervals_per_day(),
            )?;
            let screened = TimeSeries::new(series.start(), series.resolution(), values)?;
            report.screened_kwh = screened
                .values()
                .iter()
                .zip(series.values())
                .map(|(a, b)| (a - b).abs())
                .sum();
            series = screened;
        }
    }
    Ok((series, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::{Resolution, Timestamp};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn measured(values: Vec<f64>) -> MeasuredSeries {
        MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap()
    }

    #[test]
    fn clean_fills_gaps_and_reports_them() {
        let m = measured(vec![1.0, f64::NAN, 3.0, f64::NAN, 5.0]);
        let (series, report) = clean(m, &CleaningConfig::default()).unwrap();
        assert_eq!(report.gaps_filled, 2);
        assert_eq!(report.anomalies_screened, 0);
        assert_eq!(series.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn screen_neutralises_a_spike() {
        // Flat 0.5 with one 2-interval spike far from the warm-up.
        let mut values = vec![0.5; 300];
        values[200] = 6.0;
        values[201] = 6.0;
        let cfg = CleaningConfig {
            screen_anomalies: true,
            anomaly_window: 24,
            anomaly_z: 3.0,
            ..CleaningConfig::default()
        };
        let (series, report) = clean(measured(values), &cfg).unwrap();
        assert_eq!(report.anomalies_screened, 1);
        assert_eq!(report.anomalous_intervals, 2);
        assert!(report.screened_kwh > 10.0, "{}", report.screened_kwh);
        assert!((series.values()[200] - 0.5).abs() < 1e-9);
        assert!((series.values()[201] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn screening_off_leaves_spikes_alone() {
        let mut values = vec![0.5; 300];
        values[200] = 6.0;
        let (series, report) = clean(measured(values), &CleaningConfig::default()).unwrap();
        assert_eq!(report.anomalies_screened, 0);
        assert_eq!(series.values()[200], 6.0);
    }

    #[test]
    fn all_gap_series_errors_except_zero_fill() {
        let m = measured(vec![f64::NAN; 8]);
        assert!(clean(m.clone(), &CleaningConfig::default()).is_err());
        let cfg = CleaningConfig {
            fill: FillStrategy::Zero,
            ..CleaningConfig::default()
        };
        let (series, report) = clean(m, &cfg).unwrap();
        assert_eq!(report.gaps_filled, 8);
        assert_eq!(series.total_energy(), 0.0);
    }

    #[test]
    fn config_domains_are_validated() {
        for cfg in [
            CleaningConfig {
                anomaly_z: 0.0,
                ..CleaningConfig::default()
            },
            CleaningConfig {
                noise_floor_kwh: -1.0,
                ..CleaningConfig::default()
            },
        ] {
            assert!(cfg.validate().is_err());
            assert!(clean(measured(vec![1.0, 2.0]), &cfg).is_err());
        }
    }

    #[test]
    fn cleaning_report_absorbs() {
        let mut fleet = CleaningReport::default();
        fleet.absorb(&CleaningReport {
            gaps_filled: 3,
            anomalies_screened: 1,
            anomalous_intervals: 2,
            screened_kwh: 1.5,
        });
        fleet.absorb(&CleaningReport {
            gaps_filled: 1,
            anomalies_screened: 0,
            anomalous_intervals: 0,
            screened_kwh: 0.0,
        });
        assert_eq!(fleet.gaps_filled, 4);
        assert_eq!(fleet.anomalies_screened, 1);
        assert_eq!(fleet.anomalous_intervals, 2);
        assert!((fleet.screened_kwh - 1.5).abs() < 1e-12);
    }
}
