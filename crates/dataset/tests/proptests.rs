//! Property tests for the dataset layer.
//!
//! 1. **Codec round-trips** — CSV and chunked `FXM1` reproduce a
//!    measured series exactly, gaps included, for any chunk length.
//! 2. **Gap-fill energy bound** — `fill_gaps` stays within the bound
//!    documented on [`flextract_series::missing::fill_gaps`]: every
//!    anchored strategy adds between `gaps·min` and `gaps·max` of the
//!    finite values, and `Zero` adds exactly nothing.
//! 3. **Degradation determinism** — equal seeds produce byte-identical
//!    measured series.

use flextract_dataset::{codec, Degradation, MeasuredSeries};
use flextract_series::{missing, FillStrategy, TimeSeries};
use flextract_time::{Resolution, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn start() -> Timestamp {
    "2013-03-18".parse().unwrap()
}

/// A raw metered vector: finite non-negative values with gaps mixed in,
/// never all-gaps.
fn arb_metered(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0.0_f64..5.0,
            1 => Just(f64::NAN),
        ],
        2..max_len,
    )
    .prop_map(|mut v| {
        if v.iter().all(|x| x.is_nan()) {
            v[0] = 1.0;
        }
        v
    })
}

fn arb_fill() -> impl Strategy<Value = FillStrategy> {
    prop_oneof![
        Just(FillStrategy::Linear),
        Just(FillStrategy::Previous),
        Just(FillStrategy::SeasonalDaily),
        Just(FillStrategy::Zero),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_codec_round_trips_any_series(values in arb_metered(300), chunk_len in 1_usize..64) {
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, values).unwrap();
        // Both binary flavours: FXM2 (stats + footer) and legacy FXM1.
        for bytes in [
            codec::encode_chunked(&m, chunk_len).unwrap(),
            codec::encode_chunked_v1(&m, chunk_len).unwrap(),
        ] {
            let back = codec::decode(&bytes, "prop.fxm").unwrap();
            prop_assert_eq!(back.len(), m.len());
            prop_assert_eq!(back.gap_count(), m.gap_count());
            for (a, b) in back.values().iter().zip(m.values()) {
                prop_assert!(a.is_nan() == b.is_nan());
                if !a.is_nan() {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn csv_codec_round_trips_any_series(values in arb_metered(120)) {
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, values).unwrap();
        let text = codec::to_csv(&m);
        let back = codec::from_csv(&text, "prop.csv").unwrap();
        prop_assert_eq!(back.len(), m.len());
        for (a, b) in back.values().iter().zip(m.values()) {
            prop_assert!(a.is_nan() == b.is_nan());
            if !a.is_nan() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "shortest-float must round-trip");
            }
        }
    }

    #[test]
    fn fill_gaps_respects_the_documented_energy_bound(
        values in arb_metered(200),
        strategy in arb_fill(),
    ) {
        let gaps = missing::gap_count(&values);
        let finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let observed: f64 = finite.iter().sum();
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut filled = values.clone();
        let n = missing::fill_gaps(&mut filled, strategy, 96).unwrap();
        prop_assert_eq!(n, gaps);
        prop_assert!(filled.iter().all(|v| v.is_finite()));
        let total: f64 = filled.iter().sum();
        match strategy {
            FillStrategy::Zero => {
                prop_assert!((total - observed).abs() < 1e-9, "Zero adds no energy");
            }
            _ => {
                prop_assert!(
                    total >= observed + gaps as f64 * lo - 1e-9,
                    "{strategy:?}: total {total} below bound (observed {observed}, {gaps} gaps, min {lo})"
                );
                prop_assert!(
                    total <= observed + gaps as f64 * hi + 1e-9,
                    "{strategy:?}: total {total} above bound (observed {observed}, {gaps} gaps, max {hi})"
                );
            }
        }
    }

    #[test]
    fn degradation_is_a_pure_function_of_seed(
        seed in any::<u64>(),
        gap_rate in 0.0_f64..0.2,
        noise in 0.0_f64..0.1,
    ) {
        let series = TimeSeries::new(
            start(),
            Resolution::MIN_15,
            (0..192).map(|i| 0.2 + (i % 7) as f64 * 0.05).collect(),
        )
        .unwrap();
        let d = Degradation {
            noise_std: noise,
            gap_rate,
            ..Degradation::default()
        };
        let a = d.apply(&series, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = d.apply(&series, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(codec::encode(&a), codec::encode(&b));
    }
}
