//! Property tests for the dataset layer.
//!
//! 1. **Codec round-trips** — CSV and chunked `FXM1` reproduce a
//!    measured series exactly, gaps included, for any chunk length.
//! 2. **Gap-fill energy bound** — `fill_gaps` stays within the bound
//!    documented on [`flextract_series::missing::fill_gaps`]: every
//!    anchored strategy adds between `gaps·min` and `gaps·max` of the
//!    finite values, and `Zero` adds exactly nothing.
//! 3. **Degradation determinism** — equal seeds produce byte-identical
//!    measured series.

use flextract_dataset::{
    codec, ConsumerKind, Dataset, DatasetWriter, Degradation, MeasuredSeries, Predicate,
    ResidentStore, Scan, SeriesCodec, ShardedWriter,
};
use flextract_series::{missing, FillStrategy, TimeSeries};
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn start() -> Timestamp {
    "2013-03-18".parse().unwrap()
}

/// A raw metered vector: finite non-negative values with gaps mixed in,
/// never all-gaps.
fn arb_metered(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0.0_f64..5.0,
            1 => Just(f64::NAN),
        ],
        2..max_len,
    )
    .prop_map(|mut v| {
        if v.iter().all(|x| x.is_nan()) {
            v[0] = 1.0;
        }
        v
    })
}

fn arb_fill() -> impl Strategy<Value = FillStrategy> {
    prop_oneof![
        Just(FillStrategy::Linear),
        Just(FillStrategy::Previous),
        Just(FillStrategy::SeasonalDaily),
        Just(FillStrategy::Zero),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_codec_round_trips_any_series(values in arb_metered(300), chunk_len in 1_usize..64) {
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, values).unwrap();
        // Both binary flavours: FXM2 (stats + footer) and legacy FXM1.
        for bytes in [
            codec::encode_chunked(&m, chunk_len).unwrap(),
            codec::encode_chunked_v1(&m, chunk_len).unwrap(),
        ] {
            let back = codec::decode(&bytes, "prop.fxm").unwrap();
            prop_assert_eq!(back.len(), m.len());
            prop_assert_eq!(back.gap_count(), m.gap_count());
            for (a, b) in back.values().iter().zip(m.values()) {
                prop_assert!(a.is_nan() == b.is_nan());
                if !a.is_nan() {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn csv_codec_round_trips_any_series(values in arb_metered(120)) {
        let m = MeasuredSeries::new(start(), Resolution::MIN_15, values).unwrap();
        let text = codec::to_csv(&m);
        let back = codec::from_csv(&text, "prop.csv").unwrap();
        prop_assert_eq!(back.len(), m.len());
        for (a, b) in back.values().iter().zip(m.values()) {
            prop_assert!(a.is_nan() == b.is_nan());
            if !a.is_nan() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "shortest-float must round-trip");
            }
        }
    }

    #[test]
    fn fill_gaps_respects_the_documented_energy_bound(
        values in arb_metered(200),
        strategy in arb_fill(),
    ) {
        let gaps = missing::gap_count(&values);
        let finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let observed: f64 = finite.iter().sum();
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut filled = values.clone();
        let n = missing::fill_gaps(&mut filled, strategy, 96).unwrap();
        prop_assert_eq!(n, gaps);
        prop_assert!(filled.iter().all(|v| v.is_finite()));
        let total: f64 = filled.iter().sum();
        match strategy {
            FillStrategy::Zero => {
                prop_assert!((total - observed).abs() < 1e-9, "Zero adds no energy");
            }
            _ => {
                prop_assert!(
                    total >= observed + gaps as f64 * lo - 1e-9,
                    "{strategy:?}: total {total} below bound (observed {observed}, {gaps} gaps, min {lo})"
                );
                prop_assert!(
                    total <= observed + gaps as f64 * hi + 1e-9,
                    "{strategy:?}: total {total} above bound (observed {observed}, {gaps} gaps, max {hi})"
                );
            }
        }
    }

    #[test]
    fn degradation_is_a_pure_function_of_seed(
        seed in any::<u64>(),
        gap_rate in 0.0_f64..0.2,
        noise in 0.0_f64..0.1,
    ) {
        let series = TimeSeries::new(
            start(),
            Resolution::MIN_15,
            (0..192).map(|i| 0.2 + (i % 7) as f64 * 0.05).collect(),
        )
        .unwrap();
        let d = Degradation {
            noise_std: noise,
            gap_rate,
            ..Degradation::default()
        };
        let a = d.apply(&series, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = d.apply(&series, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(codec::encode(&a), codec::encode(&b));
    }

    /// **Compaction round-trip** — for any fleet, shard capacity and
    /// append-batch split, `compact(append*(export(fleet)))` yields a
    /// store whose shard grouping, roll-ups (modulo shard id — ids are
    /// generation counters) and every consumer's series bytes are
    /// bit-identical to exporting the whole fleet in one session.
    #[test]
    fn compaction_round_trips_to_a_fresh_export(
        fleet in proptest::collection::vec(arb_metered(40).prop_map(|mut v| { v.truncate(24); v }), 1..9),
        capacity in 1_usize..5,
        split in 1_usize..8,
    ) {
        let intervals = 24;
        let fleet: Vec<Vec<f64>> = fleet
            .into_iter()
            .map(|mut v| {
                v.resize(intervals, 0.5);
                v
            })
            .collect();
        let series = |values: &[f64]| {
            MeasuredSeries::new(start(), Resolution::MIN_15, values.to_vec()).unwrap()
        };
        let scratch = |tag: &str| {
            let dir = std::env::temp_dir().join(format!(
                "flextract_prop_compact_{tag}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        };
        let writer = |dir: &std::path::Path| {
            ShardedWriter::create(
                dir,
                "prop",
                "compaction proptest",
                start(),
                Resolution::MIN_15,
                intervals,
                SeriesCodec::Binary,
                capacity,
            )
            .unwrap()
        };

        // One-session fresh export of the whole fleet.
        let fresh_dir = scratch("fresh");
        let mut w = writer(&fresh_dir);
        for (i, values) in fleet.iter().enumerate() {
            w.write_consumer(&i.to_string(), ConsumerKind::Household, &series(values), None, None)
                .unwrap();
        }
        let fresh_root = w.finish().unwrap();

        // The same fleet through export + append sessions in batches of
        // `split`, then compaction.
        let frag_dir = scratch("frag");
        let mut batches = fleet.chunks(split).enumerate();
        let (_, first) = batches.next().unwrap();
        let mut w = writer(&frag_dir);
        let mut next = 0_usize;
        for values in first {
            w.write_consumer(&next.to_string(), ConsumerKind::Household, &series(values), None, None)
                .unwrap();
            next += 1;
        }
        w.finish().unwrap();
        for (_, batch) in batches {
            let mut w = ShardedWriter::append(&frag_dir).unwrap();
            for values in batch {
                w.write_consumer(&next.to_string(), ConsumerKind::Household, &series(values), None, None)
                    .unwrap();
                next += 1;
            }
            w.finish().unwrap();
        }
        let summary = flextract_dataset::compact(&frag_dir).unwrap();

        // Same shard grouping and bit-identical roll-ups, id aside.
        prop_assert_eq!(summary.root.shards.len(), fresh_root.shards.len());
        for (a, b) in summary.root.shards.iter().zip(&fresh_root.shards) {
            let mut a = a.clone();
            a.id = b.id;
            prop_assert_eq!(&a, b);
        }
        // Every consumer's stored series reads back bit-identical.
        let fresh = Dataset::open(&fresh_dir).unwrap();
        let compacted = Dataset::open(&frag_dir).unwrap();
        prop_assert_eq!(fresh.len(), compacted.len());
        for i in 0..fresh.len() {
            let a = fresh.consumer(i).unwrap();
            let b = compacted.consumer(i).unwrap();
            prop_assert_eq!(&a.entry.id, &b.entry.id);
            for (x, y) in a.measured.values().iter().zip(b.measured.values()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&fresh_dir).ok();
        std::fs::remove_dir_all(&frag_dir).ok();
    }

    /// **Resident-store transparency** — any query answered through a
    /// warm [`ResidentStore`] (frame cache + chunk pool primed by a
    /// prior pass) is bit-identical to the answer a fresh
    /// [`Dataset::open`] computes, across both layouts, every codec,
    /// and arbitrary slice/predicate pushdowns.
    #[test]
    fn resident_store_answers_are_bit_identical_to_fresh_opens(
        fleet in proptest::collection::vec(arb_metered(40).prop_map(|mut v| { v.truncate(24); v }), 1..7),
        codec_pick in 0_usize..4,
        sharded in any::<bool>(),
        capacity in 1_usize..4,
        slice_at in 0_usize..24,
        slice_len in 1_usize..25,
        threshold in 0.0_f64..5.0,
    ) {
        let intervals = 24;
        let fleet: Vec<Vec<f64>> = fleet
            .into_iter()
            .map(|mut v| {
                v.resize(intervals, 0.5);
                v
            })
            .collect();
        let codec = [
            SeriesCodec::Csv,
            SeriesCodec::Binary,
            SeriesCodec::BinaryV1,
            SeriesCodec::BinaryV3,
        ][codec_pick];
        let dir = std::env::temp_dir().join(format!(
            "flextract_prop_resident_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let series = |values: &[f64]| {
            MeasuredSeries::new(start(), Resolution::MIN_15, values.to_vec()).unwrap()
        };
        if sharded {
            let mut w = ShardedWriter::create(
                &dir, "prop", "resident proptest", start(), Resolution::MIN_15,
                intervals, codec, capacity,
            ).unwrap();
            for (i, values) in fleet.iter().enumerate() {
                w.write_consumer(&i.to_string(), ConsumerKind::Household, &series(values), None, None)
                    .unwrap();
            }
            w.finish().unwrap();
        } else {
            let mut w = DatasetWriter::create(
                &dir, "prop", "resident proptest", start(), Resolution::MIN_15,
                intervals, codec,
            ).unwrap();
            for (i, values) in fleet.iter().enumerate() {
                w.write_consumer(&i.to_string(), ConsumerKind::Household, &series(values), None, None)
                    .unwrap();
            }
            w.finish().unwrap();
        }

        let lo = start() + Duration::minutes(15 * slice_at as i64);
        let hi = start() + Duration::minutes(15 * (slice_at + slice_len).min(intervals) as i64);
        let scans = [
            Scan::new(),
            Scan::new().time_slice(TimeRange::new(lo, hi).unwrap()),
            Scan::new().with_predicate(Predicate::MaxAbove(threshold)),
        ];

        let bits = |a: &flextract_dataset::Aggregates| (
            a.intervals, a.observed, a.gaps, a.sum_kwh.to_bits(),
            a.min.map(f64::to_bits), a.max.map(f64::to_bits),
        );
        let store = ResidentStore::open(&dir).unwrap();
        let fresh = Dataset::open(&dir).unwrap();
        for scan in &scans {
            for idx in 0..fleet.len() {
                // Cold (fills the caches), then warm (serves from them):
                // both must equal the fresh-open answer.
                let (cold, _) = store.consumer_aggregates(idx, scan).unwrap();
                let (warm, rep) = store.consumer_aggregates(idx, scan).unwrap();
                let (expect, _) = fresh.consumer_aggregates(idx, scan).unwrap();
                prop_assert_eq!(bits(&cold), bits(&expect));
                prop_assert_eq!(bits(&warm), bits(&expect));
                prop_assert!(rep.cache_hits > 0, "warm pass must hit: {:?}", rep);
                prop_assert_eq!(rep.bytes_read, 0, "warm pass re-read the frame");
            }
            let (warm_fleet, _) = store.fleet_aggregates(scan).unwrap();
            let (expect_fleet, _) = fresh.fleet_aggregates(scan).unwrap();
            prop_assert_eq!(bits(&warm_fleet), bits(&expect_fleet));
        }
        prop_assert_eq!(store.generation(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
