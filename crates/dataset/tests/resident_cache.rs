//! Integration tests for the resident store's two hard guarantees:
//!
//! 1. **Concurrency determinism** — parallel queries through one
//!    shared handle (1, 2 and 8 threads, mirroring the
//!    `CONSUMER_THREADS` golden matrix) answer bit-identically to a
//!    fresh single-threaded open, no matter how the caches interleave.
//! 2. **Invalidation at kill points** — replaying every intermediate
//!    disk state of an append and a compaction (the PR 7 kill-point
//!    harness technique: copy completed artifacts from a finished twin
//!    onto the pre-state) against an **open** handle. Before the
//!    `root.json` rename the handle keeps serving the old committed
//!    state on the old generation; after it, the new state on a bumped
//!    generation. Never a torn mix.

use flextract_dataset::{
    compact, Aggregates, ConsumerKind, Dataset, MeasuredSeries, Predicate, ResidentStore, Scan,
    SeriesCodec, ShardedWriter, ROOT_FILE, SHARDS_DIR,
};
use flextract_time::{Resolution, TimeRange, Timestamp};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn ts(s: &str) -> Timestamp {
    s.parse().unwrap()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flextract_resident_it_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic series pattern the sharded-store tests use.
fn series_for(i: usize, intervals: usize) -> MeasuredSeries {
    let values: Vec<f64> = (0..intervals)
        .map(|j| {
            let v = (i * 37 + j * 13) % 101;
            if v == 100 {
                f64::NAN
            } else {
                v as f64 * 0.01
            }
        })
        .collect();
    MeasuredSeries::new(ts("2013-03-18"), Resolution::MIN_15, values).unwrap()
}

fn export_sharded(dir: &Path, consumers: std::ops::Range<usize>, capacity: usize) {
    let mut w = ShardedWriter::create(
        dir,
        "resident-it",
        "resident-store integration fleet",
        ts("2013-03-18"),
        Resolution::MIN_15,
        96,
        SeriesCodec::BinaryV3,
        capacity,
    )
    .unwrap();
    for i in consumers {
        w.write_consumer(
            &i.to_string(),
            ConsumerKind::Household,
            &series_for(i, 96),
            None,
            None,
        )
        .unwrap();
    }
    w.finish().unwrap();
}

fn append_consumers(dir: &Path, consumers: std::ops::Range<usize>) {
    let mut w = ShardedWriter::append(dir).unwrap();
    for i in consumers {
        w.write_consumer(
            &i.to_string(),
            ConsumerKind::Household,
            &series_for(i, 96),
            None,
            None,
        )
        .unwrap();
    }
    w.finish().unwrap();
}

fn copy_dir_recursive(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir_recursive(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// One aggregates row reduced to comparable bit patterns.
type AggBits = (usize, usize, usize, u64, Option<u64>, Option<u64>);

fn agg_bits(a: &Aggregates) -> AggBits {
    (
        a.intervals,
        a.observed,
        a.gaps,
        a.sum_kwh.to_bits(),
        a.min.map(f64::to_bits),
        a.max.map(f64::to_bits),
    )
}

/// The query battery a test replays: per-consumer point queries (full,
/// sliced, predicated) plus the fleet roll-up, reduced to bit patterns.
fn battery_scans() -> Vec<Scan> {
    let slice = TimeRange::new(ts("2013-03-18 02:00"), ts("2013-03-18 11:00")).unwrap();
    vec![
        Scan::new(),
        Scan::new().time_slice(slice),
        Scan::new().with_predicate(Predicate::MaxAbove(0.6)),
    ]
}

/// Every battery answer through a fresh single-threaded open — the
/// reference the cached/concurrent answers must match bit-for-bit.
fn fresh_answers(dir: &Path) -> Vec<AggBits> {
    let ds = Dataset::open(dir).unwrap();
    let mut out = Vec::new();
    for scan in battery_scans() {
        for idx in 0..ds.len() {
            let (agg, _) = ds.consumer_aggregates(idx, &scan).unwrap();
            out.push(agg_bits(&agg));
        }
        let (fleet, _) = ds.fleet_aggregates(&scan).unwrap();
        out.push(agg_bits(&fleet));
    }
    out
}

/// The battery minus its fleet rows (one per scan, after `len`
/// consumer rows). Compaction regroups shards, which reassociates the
/// fleet fold's float additions — consumer answers must survive it
/// bit-exactly, fleet sums only per layout.
fn consumer_rows_only(battery: &[AggBits], len: usize) -> Vec<AggBits> {
    battery
        .iter()
        .enumerate()
        .filter(|(i, _)| i % (len + 1) != len)
        .map(|(_, row)| *row)
        .collect()
}

/// The same battery through a shared resident handle.
fn resident_answers(store: &ResidentStore) -> Vec<AggBits> {
    let len = store.dataset().unwrap().len();
    let mut out = Vec::new();
    for scan in battery_scans() {
        for idx in 0..len {
            let (agg, _) = store.consumer_aggregates(idx, &scan).unwrap();
            out.push(agg_bits(&agg));
        }
        let (fleet, _) = store.fleet_aggregates(&scan).unwrap();
        out.push(agg_bits(&fleet));
    }
    out
}

/// Parallel queries through one shared handle, at the golden matrix's
/// thread counts, answer bit-identically to a fresh open — the cache
/// may interleave hits and misses arbitrarily, the answers may not.
#[test]
fn shared_handle_is_bit_identical_across_thread_counts() {
    let dir = scratch("threads");
    export_sharded(&dir, 0..23, 4);
    let expect = fresh_answers(&dir);

    for threads in [1_usize, 2, 8] {
        let store = Arc::new(ResidentStore::open(&dir).unwrap());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let store = store.clone();
                std::thread::spawn(move || {
                    // Two passes per thread: the first races cold
                    // fills, the second runs fully warm.
                    (resident_answers(&store), resident_answers(&store))
                })
            })
            .collect();
        for h in handles {
            let (cold, warm) = h.join().unwrap();
            assert_eq!(cold, expect, "{threads} threads, cold pass");
            assert_eq!(warm, expect, "{threads} threads, warm pass");
        }
        assert_eq!(store.generation(), 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Append kill points against an open handle: the appended shard
/// directory landing on disk changes nothing until the `root.json`
/// rename commits it, at which point the handle revalidates onto the
/// new generation.
#[test]
fn open_handle_survives_append_kill_points() {
    let before_dir = scratch("append_before");
    export_sharded(&before_dir, 0..6, 4);

    // A completed append on a twin tells us which files an interrupted
    // append would have written.
    let done_dir = scratch("append_done");
    copy_dir_recursive(&before_dir, &done_dir);
    append_consumers(&done_dir, 6..9);
    let done_answers = fresh_answers(&done_dir);

    let work = scratch("append_work");
    copy_dir_recursive(&before_dir, &work);
    let store = ResidentStore::open(&work).unwrap();
    let before_answers = resident_answers(&store);
    assert_eq!(before_answers, fresh_answers(&before_dir));
    assert_eq!(store.generation(), 1);

    // Kill point: every new shard directory is on disk, the root is
    // not. The open handle must keep serving the old committed state.
    for entry in std::fs::read_dir(done_dir.join(SHARDS_DIR)).unwrap() {
        let entry = entry.unwrap();
        let dst = work.join(SHARDS_DIR).join(entry.file_name());
        if !dst.exists() {
            copy_dir_recursive(&entry.path(), &dst);
        }
    }
    std::fs::copy(
        done_dir.join(ROOT_FILE),
        work.join(format!("{ROOT_FILE}.tmp")),
    )
    .unwrap();
    assert_eq!(resident_answers(&store), before_answers, "pre-commit");
    assert_eq!(store.generation(), 1, "uncommitted files must not reopen");

    // The rename-commit: the handle revalidates and serves the new
    // fleet on a bumped generation.
    std::fs::rename(work.join(format!("{ROOT_FILE}.tmp")), work.join(ROOT_FILE)).unwrap();
    assert_eq!(resident_answers(&store), done_answers, "post-commit");
    assert_eq!(store.generation(), 2);

    for d in [&before_dir, &done_dir, &work] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Compaction kill points against an open handle: each new shard
/// directory, then the staged `root.json.tmp`, leave the old state
/// served; the rename flips the handle to the compacted store, whose
/// answers equal the fragmented ones (compaction moves bytes, not
/// values).
#[test]
fn open_handle_survives_compaction_kill_points() {
    let before_dir = scratch("compact_before");
    export_sharded(&before_dir, 0..3, 4);
    append_consumers(&before_dir, 3..5);
    append_consumers(&before_dir, 5..9);

    let done_dir = scratch("compact_done");
    copy_dir_recursive(&before_dir, &done_dir);
    let summary = compact(&done_dir).unwrap();
    let new_shard_dirs: Vec<String> = summary.root.shards.iter().map(|s| s.dir_name()).collect();

    let work = scratch("compact_work");
    copy_dir_recursive(&before_dir, &work);
    let store = ResidentStore::open(&work).unwrap();
    let before_answers = resident_answers(&store);

    // Kill points 1..=N+1: after each new shard dir lands, then after
    // the staged root.json.tmp lands — querying the open handle at
    // every step.
    for (step, d) in new_shard_dirs.iter().enumerate() {
        copy_dir_recursive(
            &done_dir.join(SHARDS_DIR).join(d),
            &work.join(SHARDS_DIR).join(d),
        );
        assert_eq!(
            resident_answers(&store),
            before_answers,
            "kill after shard {step}"
        );
        assert_eq!(store.generation(), 1, "kill after shard {step}");
    }
    std::fs::copy(
        done_dir.join(ROOT_FILE),
        work.join(format!("{ROOT_FILE}.tmp")),
    )
    .unwrap();
    assert_eq!(resident_answers(&store), before_answers, "staged root");
    assert_eq!(store.generation(), 1, "staged root must not reopen");

    // Commit. Same consumer values (compaction is layout-only), new
    // generation; fleet sums reassociate with the new shard grouping,
    // so they are compared against a fresh open of the same layout.
    std::fs::rename(work.join(format!("{ROOT_FILE}.tmp")), work.join(ROOT_FILE)).unwrap();
    let after = resident_answers(&store);
    assert_eq!(store.generation(), 2, "rename must revalidate");
    assert_eq!(
        consumer_rows_only(&after, 9),
        consumer_rows_only(&before_answers, 9),
        "compaction preserves every consumer answer"
    );
    assert_eq!(after, fresh_answers(&work), "resident matches fresh open");

    for d in [&before_dir, &done_dir, &work] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// A real `compact()` run with the handle held open across it: one
/// revalidation, identical answers, caches repopulate on the new
/// generation.
#[test]
fn live_compaction_under_an_open_handle() {
    let dir = scratch("live_compact");
    export_sharded(&dir, 0..3, 4);
    append_consumers(&dir, 3..9);

    let store = ResidentStore::open(&dir).unwrap();
    let before = resident_answers(&store);
    compact(&dir).unwrap();
    let after = resident_answers(&store);
    assert_eq!(store.generation(), 2);
    assert_eq!(
        consumer_rows_only(&after, 9),
        consumer_rows_only(&before, 9)
    );
    assert_eq!(after, fresh_answers(&dir), "resident matches fresh open");
    // Warm again on the new generation: answers unchanged, hits again.
    let (_, rep) = store.consumer_aggregates(0, &Scan::new()).unwrap();
    let (_, rep2) = store.consumer_aggregates(0, &Scan::new()).unwrap();
    assert!(rep2.cache_hits >= rep.cache_hits);
    std::fs::remove_dir_all(&dir).ok();
}
