//! End-to-end disaggregation against simulated ground truth.
//!
//! The paper could not evaluate its appliance-level approaches; the
//! simulator's activation log lets us score the full pipeline here.

use flextract_appliance::{ApplianceSpec, Catalog};
use flextract_disagg::{detect_activations, FrequencyTable, MatchConfig, MinedSchedule};
use flextract_series::segment::DayKind;
use flextract_sim::{simulate_household, HouseholdArchetype, HouseholdConfig};
use flextract_time::{Duration, TimeRange, Timestamp};

fn fortnight() -> TimeRange {
    let start: Timestamp = "2013-03-18".parse().unwrap();
    TimeRange::starting_at(start, Duration::weeks(2)).unwrap()
}

/// Count how many ground-truth activations of shiftable appliances have
/// a matching detection (same appliance within ±15 min).
fn matched_truth(
    truths: &[flextract_sim::Activation],
    detections: &[flextract_disagg::DetectedActivation],
) -> usize {
    truths
        .iter()
        .filter(|t| {
            detections
                .iter()
                .any(|d| d.appliance == t.appliance && (d.start - t.start).as_minutes().abs() <= 15)
        })
        .count()
}

#[test]
fn detects_majority_of_big_flexible_loads() {
    let cfg = HouseholdConfig::new(5, HouseholdArchetype::FamilyWithChildren).with_seed(2013);
    let sim = simulate_household(&cfg, fortnight());
    let catalog = Catalog::extended();
    let specs: Vec<&ApplianceSpec> = catalog.shiftable();
    let (detections, residual) = detect_activations(&sim.series, &specs, &MatchConfig::default());

    // Focus on the big, well-separated loads: washer, dryer, dishwasher.
    let big_names = [
        "Washing Machine from Manufacturer Y",
        "Dishwasher from Manufacturer Z",
        "Tumble Dryer",
    ];
    let truths: Vec<_> = sim
        .activations
        .iter()
        .filter(|a| big_names.contains(&a.appliance.as_str()))
        .cloned()
        .collect();
    assert!(
        !truths.is_empty(),
        "the family must have run big appliances"
    );
    let hits = matched_truth(&truths, &detections);
    let recall = hits as f64 / truths.len() as f64;
    assert!(
        recall >= 0.5,
        "recall {recall:.2} over {} truths, {} detections",
        truths.len(),
        detections.len()
    );

    // Residual energy must be less than the original (we explained some
    // load) but non-negative.
    assert!(residual.total_energy() < sim.series.total_energy());
    assert!(residual.values().iter().all(|&v| v >= 0.0));
}

#[test]
fn frequency_mining_recovers_rough_rates() {
    let cfg = HouseholdConfig::new(6, HouseholdArchetype::FamilyWithChildren).with_seed(99);
    let sim = simulate_household(&cfg, fortnight());
    let catalog = Catalog::extended();
    let specs: Vec<&ApplianceSpec> = catalog.shiftable();
    let (detections, _) = detect_activations(&sim.series, &specs, &MatchConfig::default());
    let table = FrequencyTable::mine(&detections, 14.0, &catalog);

    // The robot runs ~1.3×/day but draws only ~0.25 kW — comparable to
    // the stochastic base load — so recall is genuinely poor at any
    // resolution (the classic low-power NILM failure mode). We only
    // require that it is detected at all and not wildly over-counted.
    if let Some(row) = table.row("Vacuum Cleaning Robot from Manufacturer X") {
        assert!(
            row.mean_daily_rate > 0.05 && row.mean_daily_rate < 3.0,
            "robot rate {}",
            row.mean_daily_rate
        );
        assert_eq!(row.time_flexibility, Duration::hours(22));
    }
    // The washer (a 2-3 kW load) must be mined at a rate within a
    // factor of ~2.5 of its catalog truth (3/week × 1.3 activity).
    if let Some(row) = table.row("Washing Machine from Manufacturer Y") {
        let truth = 3.0 / 7.0 * 1.3;
        assert!(
            row.mean_daily_rate > truth / 2.5 && row.mean_daily_rate < truth * 2.5,
            "washer rate {} vs truth {truth}",
            row.mean_daily_rate
        );
    }
    // Shortlist is non-empty and only flexible appliances.
    let shortlist = table.shortlist();
    assert!(!shortlist.is_empty());
    for row in shortlist {
        assert!(row.time_flexibility > Duration::ZERO);
    }
}

#[test]
fn schedule_mining_finds_preferred_windows() {
    let cfg = HouseholdConfig::new(7, HouseholdArchetype::Couple).with_seed(7);
    // A long window so histograms have support.
    let range = TimeRange::starting_at(
        "2013-03-18".parse::<Timestamp>().unwrap(),
        Duration::weeks(4),
    )
    .unwrap();
    let sim = simulate_household(&cfg, range);
    let catalog = Catalog::extended();
    let specs: Vec<&ApplianceSpec> = catalog.shiftable();
    let (detections, _) = detect_activations(&sim.series, &specs, &MatchConfig::default());
    let schedules = MinedSchedule::mine_all(&detections, 20.0, 8.0, 60);
    assert!(!schedules.is_empty());

    // The dishwasher's catalog windows are 13:00-14:30 and 19:30-22:00;
    // its mined distribution should put most mass between 12:00 and 23:00.
    if let Some(dw) = schedules
        .iter()
        .find(|s| s.appliance.contains("Dishwasher"))
    {
        let total: f64 = dw.histograms[0].iter().chain(&dw.histograms[1]).sum();
        if total > 0.0 {
            let in_window: f64 = dw.histograms[0][12..23]
                .iter()
                .chain(&dw.histograms[1][12..23])
                .sum();
            assert!(
                in_window / total > 0.7,
                "dishwasher mass inside 12-23h: {}",
                in_window / total
            );
        }
        // Rates derived from slots are consistent with daily_rate.
        let _ = dw.daily_rate(DayKind::All);
    }
}

#[test]
fn disaggregation_quality_collapses_at_15min() {
    // The paper's closing claim: appliance-level extraction needs finer
    // than 15-min data. Score the same household at both resolutions.
    let cfg = HouseholdConfig::new(8, HouseholdArchetype::FamilyWithChildren).with_seed(314);
    let sim = simulate_household(&cfg, fortnight());
    let catalog = Catalog::extended();
    let specs: Vec<&ApplianceSpec> = catalog.shiftable();

    let (d1, _) = detect_activations(&sim.series, &specs, &MatchConfig::default());
    let coarse = sim.series_at(flextract_time::Resolution::MIN_15);
    let (d15, _) = detect_activations(&coarse, &specs, &MatchConfig::default());

    let truths: Vec<_> = sim
        .activations
        .iter()
        .filter(|a| a.shiftable)
        .cloned()
        .collect();
    let hits1 = matched_truth(&truths, &d1);
    let hits15 = matched_truth(&truths, &d15);
    assert!(
        hits1 >= hits15,
        "1-min should match at least as many truths ({hits1} vs {hits15})"
    );
}
