//! Property tests for the disaggregation pipeline.

use flextract_appliance::{ApplianceSpec, Catalog};
use flextract_disagg::{
    detect_activations, detect_edges, DetectedActivation, FrequencyTable, MatchConfig,
    MinedSchedule,
};
use flextract_series::TimeSeries;
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use proptest::prelude::*;

fn epoch() -> Timestamp {
    Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).unwrap()
}

/// A day of base load with `cycles` staged washer runs at random
/// non-overlapping hours.
fn staged_day(base_kw: f64, start_hours: &[u8], intensity: f64) -> TimeSeries {
    let catalog = Catalog::extended();
    let washer = catalog
        .find_by_name("Washing Machine from Manufacturer Y")
        .unwrap();
    let range = TimeRange::starting_at(epoch(), Duration::days(1)).unwrap();
    let mut series = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
    for v in series.values_mut() {
        *v = base_kw / 60.0;
    }
    for &h in start_hours {
        let at = epoch() + Duration::hours(h as i64);
        series
            .add_overlapping(&washer.profile.to_energy_series(at, intensity))
            .unwrap();
    }
    series
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn edges_always_alternate_consistently(
        values in prop::collection::vec(0.0_f64..0.2, 10..200),
    ) {
        let series = TimeSeries::new(epoch(), Resolution::MIN_1, values).unwrap();
        let edges = detect_edges(&series, 0.5);
        // Edge indices are strictly increasing and in range.
        for pair in edges.windows(2) {
            prop_assert!(pair[0].index < pair[1].index);
        }
        for e in &edges {
            prop_assert!(e.index >= 1 && e.index < series.len());
            prop_assert!(e.delta_kw.abs() >= 0.5);
        }
    }

    #[test]
    fn residual_never_gains_energy(
        base_kw in 0.05_f64..0.3,
        hour_a in 1_u8..10,
        gap in 3_u8..10,
        intensity in 0.2_f64..0.8,
    ) {
        let hour_b = hour_a + gap;
        let series = staged_day(base_kw, &[hour_a, hour_b], intensity);
        let catalog = Catalog::extended();
        let specs: Vec<&ApplianceSpec> = catalog.shiftable();
        let (detections, residual) =
            detect_activations(&series, &specs, &MatchConfig::default());
        prop_assert!(residual.total_energy() <= series.total_energy() + 1e-9);
        prop_assert!(residual.values().iter().all(|&v| v >= 0.0));
        // Detected energy + residual ≈ original (subtraction is capped,
        // so the sum can only fall short by clipping, never exceed).
        let detected: f64 = detections.iter().map(|d| d.energy_kwh).sum();
        prop_assert!(detected <= series.total_energy() + 1e-6);
        // Detections are chronological.
        for pair in detections.windows(2) {
            prop_assert!(pair[0].start <= pair[1].start);
        }
    }

    #[test]
    fn staged_washers_are_mostly_recovered(
        hour_a in 1_u8..9,
        gap in 4_u8..10,
        intensity in 0.3_f64..0.7,
    ) {
        let hour_b = hour_a + gap;
        let series = staged_day(0.1, &[hour_a, hour_b], intensity);
        let catalog = Catalog::extended();
        let specs: Vec<&ApplianceSpec> = catalog.shiftable();
        let (detections, _) = detect_activations(&series, &specs, &MatchConfig::default());
        let washer_hits = [hour_a, hour_b]
            .iter()
            .filter(|&&h| {
                let truth = epoch() + Duration::hours(h as i64);
                detections.iter().any(|d| {
                    d.appliance.contains("Washing Machine")
                        && (d.start - truth).as_minutes().abs() <= 5
                })
            })
            .count();
        // Clean staged cycles over a flat base load: both recovered.
        prop_assert_eq!(washer_hits, 2, "detections: {:?}", detections);
    }

    #[test]
    fn frequency_table_counts_match_inputs(
        names in prop::collection::vec(0_usize..3, 1..40),
        days in 1_f64..60.0,
    ) {
        let name_pool = ["A", "B", "C"];
        let detections: Vec<DetectedActivation> = names
            .iter()
            .enumerate()
            .map(|(i, &n)| DetectedActivation {
                appliance: name_pool[n].to_string(),
                start: epoch() + Duration::minutes(i as i64 * 30),
                intensity: 0.5,
                energy_kwh: 1.0,
                score: 0.1,
            })
            .collect();
        let catalog = Catalog::extended();
        let table = FrequencyTable::mine(&detections, days, &catalog);
        let total: usize = table.rows.iter().map(|r| r.count).sum();
        prop_assert_eq!(total, detections.len());
        for row in &table.rows {
            prop_assert!((row.mean_daily_rate - row.count as f64 / days).abs() < 1e-9);
        }
        // Rows are sorted by descending count.
        for pair in table.rows.windows(2) {
            prop_assert!(pair[0].count >= pair[1].count);
        }
    }

    #[test]
    fn schedule_histograms_conserve_rate_mass(
        starts in prop::collection::vec((0_u32..1440, any::<bool>()), 1..50),
        workdays in 1.0_f64..20.0,
        weekend_days in 1.0_f64..10.0,
    ) {
        let detections: Vec<DetectedActivation> = starts
            .iter()
            .map(|&(minute, weekend)| {
                // 2013-03-18 is a Monday; +5 days is Saturday.
                let day = if weekend { 5 } else { 0 };
                DetectedActivation {
                    appliance: "X".into(),
                    start: epoch() + Duration::days(day) + Duration::minutes(minute as i64),
                    intensity: 0.5,
                    energy_kwh: 1.0,
                    score: 0.1,
                }
            })
            .collect();
        let schedules = MinedSchedule::mine_all(&detections, workdays, weekend_days, 60);
        prop_assert_eq!(schedules.len(), 1);
        let s = &schedules[0];
        let work_count = starts.iter().filter(|(_, w)| !w).count() as f64;
        let weekend_count = starts.iter().filter(|(_, w)| *w).count() as f64;
        let work_mass: f64 = s.histograms[0].iter().sum();
        let weekend_mass: f64 = s.histograms[1].iter().sum();
        prop_assert!((work_mass - work_count / workdays).abs() < 1e-9);
        prop_assert!((weekend_mass - weekend_count / weekend_days).abs() < 1e-9);
        // Slot compression never reports more mass than the histogram.
        let slot_mass: f64 = s.slots(0.0).iter().map(|x| x.expected_per_day).sum();
        prop_assert!(slot_mass <= work_mass + weekend_mass + 1e-9);
    }
}
