//! Template matching: fit catalog load profiles to the measured series.
//!
//! For every candidate start (a rising edge whose magnitude is
//! compatible with an appliance's initial power), the appliance's
//! min/max power envelope is fitted by least squares over its
//! *intensity* parameter, scored by baseline-corrected normalised RMSE,
//! and — if accepted — subtracted from the series before the search
//! continues (greedy sequential extraction, largest appliances first).

use crate::events::rising_edges;
use flextract_appliance::ApplianceSpec;
use flextract_series::{stats, TimeSeries};
use flextract_time::Timestamp;
use serde::{Deserialize, Serialize};

/// Distance metric for the fit score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MatchMetric {
    /// Root-mean-square error (default; punishes shape mismatch).
    #[default]
    L2,
    /// Mean absolute error (more tolerant of brief collisions with
    /// other appliances).
    L1,
}

/// Tuning knobs for [`detect_activations`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Maximum accepted score (normalised error; lower = stricter).
    pub score_threshold: f64,
    /// Error metric.
    pub metric: MatchMetric,
    /// Rising-edge threshold as a fraction of the template's initial
    /// minimum power.
    pub edge_fraction: f64,
    /// How many minutes of pre-start data estimate the local baseline.
    pub baseline_window: usize,
    /// Fraction of the worst-fitting samples to discard before scoring
    /// (robustness against *other* appliances switching mid-cycle).
    pub trim_fraction: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            score_threshold: 0.35,
            metric: MatchMetric::L2,
            edge_fraction: 0.5,
            baseline_window: 30,
            trim_fraction: 0.25,
        }
    }
}

/// One appliance cycle recovered from the total series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectedActivation {
    /// Catalog name of the matched appliance.
    pub appliance: String,
    /// Detected cycle start.
    pub start: Timestamp,
    /// Fitted intensity in `[0, 1]`.
    pub intensity: f64,
    /// Energy attributed to the cycle (kWh).
    pub energy_kwh: f64,
    /// Fit score (normalised error; lower is better).
    pub score: f64,
}

/// Run greedy template matching of `specs` against `series`.
///
/// Returns the detected activations (chronological) and the residual
/// series after subtracting every accepted cycle. Specs are tried in
/// descending peak-power order so large loads (EVs) cannot be
/// mis-explained as stacks of small ones.
pub fn detect_activations(
    series: &TimeSeries,
    specs: &[&ApplianceSpec],
    config: &MatchConfig,
) -> (Vec<DetectedActivation>, TimeSeries) {
    let mut residual = series.clone();
    let mut detections = Vec::new();
    let res_minutes = series.resolution().minutes() as usize;
    let hours = series.resolution().hours_f64();

    let mut ordered: Vec<&ApplianceSpec> = specs.to_vec();
    ordered.sort_by(|a, b| {
        let pa = peak_power(a);
        let pb = peak_power(b);
        pb.partial_cmp(&pa).expect("catalog powers are finite")
    });

    for spec in ordered {
        // Template resampled to the series resolution, in kW.
        let (t_min, t_max) = template_kw(spec, res_minutes);
        if t_min.is_empty() {
            continue;
        }
        let initial_min_kw = t_min[0];
        let edge_thr = (initial_min_kw * config.edge_fraction).max(0.05);
        // Candidate starts must be re-derived after each subtraction;
        // one pass over fresh edges per spec is enough in practice
        // because subtraction only removes explained cycles.
        let candidates = rising_edges(&residual, edge_thr);
        for edge in candidates {
            let start_idx = edge.index;
            if start_idx + t_min.len() > residual.len() {
                continue;
            }
            let window_kw: Vec<f64> = residual.values()[start_idx..start_idx + t_min.len()]
                .iter()
                .map(|e| e / hours)
                .collect();
            let baseline = local_baseline(&residual, start_idx, config.baseline_window, hours);
            let corrected: Vec<f64> = window_kw.iter().map(|p| (p - baseline).max(0.0)).collect();
            let Some((intensity, score)) = fit_intensity(
                &corrected,
                &t_min,
                &t_max,
                config.metric,
                config.trim_fraction,
            ) else {
                continue;
            };
            if score > config.score_threshold {
                continue;
            }
            // Accept: subtract the realised cycle from the residual.
            // The 1-min cycle is zero-padded to a whole number of
            // series intervals so the exact-energy downsample applies
            // at any resolution (e.g. a 100-min cycle on a 15-min grid).
            let start_t = residual.timestamp_of(start_idx);
            let mut cycle_values: Vec<f64> = spec
                .profile
                .power_curve_kw(intensity)
                .into_iter()
                .map(|kw| kw / 60.0)
                .collect();
            let pad = (res_minutes - cycle_values.len() % res_minutes) % res_minutes;
            cycle_values.extend(std::iter::repeat_n(0.0, pad));
            let cycle_1min =
                TimeSeries::new(start_t, flextract_time::Resolution::MIN_1, cycle_values)
                    .expect("series interval starts are minute-aligned");
            let cycle = flextract_series::resample::to_resolution(&cycle_1min, series.resolution())
                .expect("padded cycle lengths divide the series resolution");
            residual
                .sub_overlapping(&cycle)
                .expect("cycle grids share the series resolution");
            detections.push(DetectedActivation {
                appliance: spec.name.clone(),
                start: residual.timestamp_of(start_idx),
                intensity,
                energy_kwh: cycle.total_energy(),
                score,
            });
        }
    }
    residual.clip_negative();
    detections.sort_by_key(|d| d.start);
    (detections, residual)
}

/// Peak of the nominal template power.
fn peak_power(spec: &ApplianceSpec) -> f64 {
    spec.profile
        .nominal_curve_kw()
        .into_iter()
        .fold(0.0, f64::max)
}

/// The min/max power envelopes resampled to `res_minutes`-wide steps.
fn template_kw(spec: &ApplianceSpec, res_minutes: usize) -> (Vec<f64>, Vec<f64>) {
    let min_curve = spec.profile.power_curve_kw(0.0);
    let max_curve = spec.profile.power_curve_kw(1.0);
    if res_minutes <= 1 {
        return (min_curve, max_curve);
    }
    let chunk = |curve: &[f64]| -> Vec<f64> {
        curve
            .chunks(res_minutes)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    };
    (chunk(&min_curve), chunk(&max_curve))
}

/// Median power over the `window` intervals before `start_idx`.
fn local_baseline(series: &TimeSeries, start_idx: usize, window: usize, hours: f64) -> f64 {
    if start_idx == 0 || window == 0 {
        return 0.0;
    }
    let lo = start_idx.saturating_sub(window);
    let pre: Vec<f64> = series.values()[lo..start_idx]
        .iter()
        .map(|e| e / hours)
        .collect();
    stats::median(&pre).unwrap_or(0.0)
}

/// Least-squares fit of the intensity parameter: observed ≈
/// `t_min + x · (t_max − t_min)`. Returns `(x, normalised_error)`.
///
/// The error is *trimmed*: the worst `trim_fraction` of per-sample
/// errors is discarded before aggregation, so another appliance
/// switching on for part of the cycle (a kettle during a wash) does not
/// veto an otherwise excellent fit.
fn fit_intensity(
    observed: &[f64],
    t_min: &[f64],
    t_max: &[f64],
    metric: MatchMetric,
    trim_fraction: f64,
) -> Option<(f64, f64)> {
    let n = observed.len();
    if n != t_min.len() || n == 0 {
        return None;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        let d = t_max[i] - t_min[i];
        num += d * (observed[i] - t_min[i]);
        den += d * d;
    }
    let x = if den > 1e-12 {
        (num / den).clamp(0.0, 1.0)
    } else {
        0.5
    };
    let fitted: Vec<f64> = (0..n)
        .map(|i| t_min[i] + x * (t_max[i] - t_min[i]))
        .collect();
    let mean_fit = stats::mean(&fitted)?;
    if mean_fit <= 1e-9 {
        return None;
    }
    let mut abs_errors: Vec<f64> = observed
        .iter()
        .zip(&fitted)
        .map(|(o, f)| (o - f).abs())
        .collect();
    abs_errors.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
    let keep = ((n as f64 * (1.0 - trim_fraction.clamp(0.0, 0.9))).ceil() as usize).max(1);
    let kept = &abs_errors[..keep.min(n)];
    let err = match metric {
        MatchMetric::L2 => (kept.iter().map(|e| e * e).sum::<f64>() / kept.len() as f64).sqrt(),
        MatchMetric::L1 => kept.iter().sum::<f64>() / kept.len() as f64,
    };
    Some((x, err / mean_fit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_appliance::Catalog;
    use flextract_time::{Duration, Resolution, TimeRange};

    fn catalog() -> Catalog {
        Catalog::extended()
    }

    /// A quiet two-day series with one washer cycle at a known spot.
    fn staged_series(catalog: &Catalog) -> (TimeSeries, Timestamp) {
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let range = TimeRange::starting_at(start, Duration::days(1)).unwrap();
        let mut series = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
        // Small flat base load of 0.1 kW.
        for v in series.values_mut() {
            *v = 0.1 / 60.0;
        }
        let washer = catalog
            .find_by_name("Washing Machine from Manufacturer Y")
            .unwrap();
        let at: Timestamp = "2013-03-18 19:00".parse().unwrap();
        let cycle = washer.profile.to_energy_series(at, 0.6);
        series.add_overlapping(&cycle).unwrap();
        (series, at)
    }

    #[test]
    fn recovers_a_staged_washer_cycle() {
        let cat = catalog();
        let (series, at) = staged_series(&cat);
        let specs: Vec<&ApplianceSpec> = cat.shiftable();
        let (found, residual) = detect_activations(&series, &specs, &MatchConfig::default());
        let washers: Vec<_> = found
            .iter()
            .filter(|d| d.appliance.contains("Washing Machine"))
            .collect();
        assert_eq!(washers.len(), 1, "found {found:?}");
        let d = washers[0];
        // Start within a minute of the truth.
        assert!((d.start - at).as_minutes().abs() <= 1, "start {}", d.start);
        // Intensity close to the staged 0.6.
        assert!(
            (d.intensity - 0.6).abs() < 0.15,
            "intensity {}",
            d.intensity
        );
        // The residual no longer contains the cycle's energy.
        assert!(
            residual.total_energy() < series.total_energy() - d.energy_kwh * 0.8,
            "residual {} vs original {}",
            residual.total_energy(),
            series.total_energy()
        );
    }

    #[test]
    fn empty_series_yields_nothing() {
        let cat = catalog();
        let specs: Vec<&ApplianceSpec> = cat.shiftable();
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let range = TimeRange::starting_at(start, Duration::hours(6)).unwrap();
        let series = TimeSeries::zeros_over(range, Resolution::MIN_1).unwrap();
        let (found, residual) = detect_activations(&series, &specs, &MatchConfig::default());
        assert!(found.is_empty());
        assert_eq!(residual.total_energy(), 0.0);
    }

    #[test]
    fn no_specs_yields_nothing() {
        let cat = catalog();
        let (series, _) = staged_series(&cat);
        let (found, residual) = detect_activations(&series, &[], &MatchConfig::default());
        assert!(found.is_empty());
        assert_eq!(residual, series);
    }

    #[test]
    fn strict_threshold_rejects_everything() {
        let cat = catalog();
        let (series, _) = staged_series(&cat);
        let specs: Vec<&ApplianceSpec> = cat.shiftable();
        let cfg = MatchConfig {
            score_threshold: 0.0,
            ..MatchConfig::default()
        };
        let (found, _) = detect_activations(&series, &specs, &cfg);
        assert!(found.is_empty());
    }

    #[test]
    fn fit_intensity_recovers_known_mix() {
        let t_min = vec![1.0, 1.0, 0.5];
        let t_max = vec![3.0, 3.0, 1.5];
        // Observed at exactly x = 0.25.
        let obs: Vec<f64> = t_min
            .iter()
            .zip(&t_max)
            .map(|(lo, hi)| lo + 0.25 * (hi - lo))
            .collect();
        let (x, err) = fit_intensity(&obs, &t_min, &t_max, MatchMetric::L2, 0.0).unwrap();
        assert!((x - 0.25).abs() < 1e-9);
        assert!(err < 1e-9);
        // L1 agrees on perfect data.
        let (x1, err1) = fit_intensity(&obs, &t_min, &t_max, MatchMetric::L1, 0.0).unwrap();
        assert!((x1 - 0.25).abs() < 1e-9);
        assert!(err1 < 1e-9);
    }

    #[test]
    fn fit_intensity_clamps_and_rejects_degenerates() {
        let t_min = vec![1.0, 1.0];
        let t_max = vec![2.0, 2.0];
        // Observation above the envelope clamps to x = 1.
        let (x, _) = fit_intensity(&[5.0, 5.0], &t_min, &t_max, MatchMetric::L2, 0.0).unwrap();
        assert_eq!(x, 1.0);
        // Mismatched lengths.
        assert!(fit_intensity(&[1.0], &t_min, &t_max, MatchMetric::L2, 0.0).is_none());
        // All-zero template.
        assert!(
            fit_intensity(&[0.0, 0.0], &[0.0, 0.0], &[0.0, 0.0], MatchMetric::L2, 0.0).is_none()
        );
    }

    #[test]
    fn template_resampling_preserves_mean_power() {
        let cat = catalog();
        let washer = cat
            .find_by_name("Washing Machine from Manufacturer Y")
            .unwrap();
        let (m1, _) = template_kw(washer, 1);
        let (m15, _) = template_kw(washer, 15);
        let mean1 = stats::mean(&m1).unwrap();
        let mean15 = stats::mean(&m15).unwrap();
        assert!((mean1 - mean15).abs() < 1e-9);
        assert_eq!(m15.len(), 8); // 120 min / 15
    }

    #[test]
    fn local_baseline_is_pre_start_median() {
        let start: Timestamp = "2013-03-18".parse().unwrap();
        let mut vals = vec![0.1 / 60.0; 120]; // 0.1 kW
        vals[100] = 3.0 / 60.0;
        let s = TimeSeries::new(start, Resolution::MIN_1, vals).unwrap();
        let b = local_baseline(&s, 60, 30, 1.0 / 60.0);
        assert!((b - 0.1).abs() < 1e-9);
        assert_eq!(local_baseline(&s, 0, 30, 1.0 / 60.0), 0.0);
    }
}
