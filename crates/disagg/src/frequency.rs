//! Usage-frequency mining — §4.1's "step 1".
//!
//! From a set of detected activations over an observation window, derive
//! "a shortlist of the possibly used appliances, their usage frequency,
//! and the time flexibility (difference between latest start time and
//! earliest start time)". Frequencies come from counting; time
//! flexibility comes from the catalog's shiftability metadata.

use crate::matching::DetectedActivation;
use flextract_appliance::{Catalog, UsageFrequency};
use flextract_time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row of the mined shortlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplianceUsageRow {
    /// Catalog name.
    pub appliance: String,
    /// Total detected activations in the window.
    pub count: usize,
    /// Mean detected activations per day.
    pub mean_daily_rate: f64,
    /// The rate classified into the paper's frequency buckets.
    pub classified: UsageFrequency,
    /// Time flexibility from the catalog (zero when unknown or
    /// non-shiftable).
    pub time_flexibility: Duration,
    /// Mean fitted intensity across detections.
    pub mean_intensity: f64,
}

/// The §4.1 step-1 output: per-appliance usage statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyTable {
    /// Days in the observation window.
    pub observed_days: f64,
    /// Rows in descending count order.
    pub rows: Vec<ApplianceUsageRow>,
}

impl FrequencyTable {
    /// Mine the table from detections over `observed_days` days,
    /// resolving time flexibility against `catalog`.
    pub fn mine(detections: &[DetectedActivation], observed_days: f64, catalog: &Catalog) -> Self {
        assert!(observed_days > 0.0, "observation window must be positive");
        let mut grouped: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
        for d in detections {
            let entry = grouped.entry(&d.appliance).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += d.intensity;
        }
        let mut rows: Vec<ApplianceUsageRow> = grouped
            .into_iter()
            .map(|(name, (count, intensity_sum))| {
                let rate = count as f64 / observed_days;
                ApplianceUsageRow {
                    appliance: name.to_string(),
                    count,
                    mean_daily_rate: rate,
                    classified: classify_rate(rate),
                    time_flexibility: catalog
                        .find_by_name(name)
                        .map(|s| s.shiftability.max_delay())
                        .unwrap_or(Duration::ZERO),
                    mean_intensity: intensity_sum / count as f64,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.appliance.cmp(&b.appliance))
        });
        FrequencyTable {
            observed_days,
            rows,
        }
    }

    /// The shortlist: appliances with positive time flexibility — the
    /// candidates for flex-offer generation.
    pub fn shortlist(&self) -> Vec<&ApplianceUsageRow> {
        self.rows
            .iter()
            .filter(|r| r.time_flexibility > Duration::ZERO && r.count > 0)
            .collect()
    }

    /// Look up a row by appliance name.
    pub fn row(&self, appliance: &str) -> Option<&ApplianceUsageRow> {
        self.rows.iter().find(|r| r.appliance == appliance)
    }

    /// Render as an aligned text table (experiment output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<45} {:>6} {:>10} {:>14} {:>10}\n",
            "Appliance", "count", "rate/day", "frequency", "time-flex"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<45} {:>6} {:>10.2} {:>14} {:>10}\n",
                r.appliance,
                r.count,
                r.mean_daily_rate,
                match r.classified {
                    UsageFrequency::PerDay(_) => "daily",
                    UsageFrequency::PerWeek(_) => "weekly",
                    UsageFrequency::PerMonth(_) => "monthly",
                    UsageFrequency::Continuous => "continuous",
                },
                r.time_flexibility.to_string(),
            ));
        }
        out
    }
}

/// Classify a mean daily rate into the paper's buckets ("some of the
/// appliances may be used daily while some may be used weekly or
/// monthly").
fn classify_rate(rate: f64) -> UsageFrequency {
    if rate >= 0.5 {
        UsageFrequency::PerDay(rate)
    } else if rate * 7.0 >= 0.5 {
        UsageFrequency::PerWeek(rate * 7.0)
    } else {
        UsageFrequency::PerMonth(rate * 30.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Timestamp;

    fn det(name: &str, start: &str, intensity: f64) -> DetectedActivation {
        DetectedActivation {
            appliance: name.into(),
            start: start.parse::<Timestamp>().unwrap(),
            intensity,
            energy_kwh: 1.0,
            score: 0.1,
        }
    }

    fn sample_detections() -> Vec<DetectedActivation> {
        vec![
            det(
                "Washing Machine from Manufacturer Y",
                "2013-03-18 08:00",
                0.4,
            ),
            det(
                "Washing Machine from Manufacturer Y",
                "2013-03-20 19:00",
                0.6,
            ),
            det(
                "Washing Machine from Manufacturer Y",
                "2013-03-22 09:00",
                0.5,
            ),
            det(
                "Vacuum Cleaning Robot from Manufacturer X",
                "2013-03-18 10:00",
                0.5,
            ),
            det(
                "Vacuum Cleaning Robot from Manufacturer X",
                "2013-03-19 10:00",
                0.5,
            ),
            det(
                "Vacuum Cleaning Robot from Manufacturer X",
                "2013-03-20 10:00",
                0.5,
            ),
            det(
                "Vacuum Cleaning Robot from Manufacturer X",
                "2013-03-21 10:00",
                0.5,
            ),
            det(
                "Vacuum Cleaning Robot from Manufacturer X",
                "2013-03-22 10:00",
                0.5,
            ),
            det(
                "Vacuum Cleaning Robot from Manufacturer X",
                "2013-03-23 10:00",
                0.5,
            ),
            det(
                "Vacuum Cleaning Robot from Manufacturer X",
                "2013-03-24 10:00",
                0.5,
            ),
            det("Electric Oven", "2013-03-19 18:00", 0.7),
        ]
    }

    #[test]
    fn counts_and_rates() {
        let cat = Catalog::extended();
        let table = FrequencyTable::mine(&sample_detections(), 7.0, &cat);
        let roomba = table
            .row("Vacuum Cleaning Robot from Manufacturer X")
            .unwrap();
        assert_eq!(roomba.count, 7);
        assert!((roomba.mean_daily_rate - 1.0).abs() < 1e-9);
        assert!(matches!(roomba.classified, UsageFrequency::PerDay(_)));
        // "time flexibility as 22 hours" — the paper's Roomba example.
        assert_eq!(roomba.time_flexibility, Duration::hours(22));

        let washer = table.row("Washing Machine from Manufacturer Y").unwrap();
        assert_eq!(washer.count, 3);
        assert!(matches!(washer.classified, UsageFrequency::PerWeek(_)));
        assert!((washer.mean_intensity - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rows_sorted_by_count() {
        let cat = Catalog::extended();
        let table = FrequencyTable::mine(&sample_detections(), 7.0, &cat);
        assert_eq!(
            table.rows[0].appliance,
            "Vacuum Cleaning Robot from Manufacturer X"
        );
        for pair in table.rows.windows(2) {
            assert!(pair[0].count >= pair[1].count);
        }
    }

    #[test]
    fn shortlist_keeps_only_flexible_appliances() {
        let cat = Catalog::extended();
        let table = FrequencyTable::mine(&sample_detections(), 7.0, &cat);
        let names: Vec<&str> = table
            .shortlist()
            .iter()
            .map(|r| r.appliance.as_str())
            .collect();
        assert!(names.contains(&"Vacuum Cleaning Robot from Manufacturer X"));
        assert!(names.contains(&"Washing Machine from Manufacturer Y"));
        // The oven is detected but non-shiftable → excluded.
        assert!(!names.contains(&"Electric Oven"));
    }

    #[test]
    fn unknown_appliances_get_zero_flexibility() {
        let cat = Catalog::extended();
        let dets = vec![det("Mystery Gadget", "2013-03-18 12:00", 0.5)];
        let table = FrequencyTable::mine(&dets, 7.0, &cat);
        assert_eq!(table.rows[0].time_flexibility, Duration::ZERO);
        assert!(table.shortlist().is_empty());
    }

    #[test]
    fn monthly_classification() {
        let cat = Catalog::extended();
        let dets = vec![det(
            "Washing Machine from Manufacturer Y",
            "2013-03-18 08:00",
            0.5,
        )];
        let table = FrequencyTable::mine(&dets, 30.0, &cat);
        let row = table.row("Washing Machine from Manufacturer Y").unwrap();
        assert!(matches!(row.classified, UsageFrequency::PerMonth(_)));
    }

    #[test]
    fn render_contains_all_rows() {
        let cat = Catalog::extended();
        let table = FrequencyTable::mine(&sample_detections(), 7.0, &cat);
        let text = table.render();
        for r in &table.rows {
            assert!(text.contains(&r.appliance));
        }
        assert!(text.contains("daily"));
        assert!(text.contains("weekly"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_days_panics() {
        let cat = Catalog::extended();
        FrequencyTable::mine(&[], 0.0, &cat);
    }

    #[test]
    fn empty_detections_empty_table() {
        let cat = Catalog::extended();
        let table = FrequencyTable::mine(&[], 7.0, &cat);
        assert!(table.rows.is_empty());
        assert!(table.shortlist().is_empty());
    }
}
