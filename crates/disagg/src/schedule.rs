//! Usage-schedule mining — §4.2's "step 1".
//!
//! The schedule-based approach refines frequency mining with *when*
//! appliances run: "the usage of the appliances is not uniform, thus,
//! the exact schedule of the usage of each appliance can be derived".
//! The mined schedule is a per-appliance, per-day-kind histogram of
//! start times, compressed into high-probability [`ScheduleSlot`]s.

use crate::matching::DetectedActivation;
use flextract_series::segment::DayKind;
use flextract_time::CivilTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of day-kind variants tracked (workday / weekend).
const KINDS: [DayKind; 2] = [DayKind::Workday, DayKind::Weekend];

/// A recurring usage slot: on days of `day_kind`, the appliance tends to
/// start inside `[window_start, window_end)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSlot {
    /// Which days the slot applies to.
    pub day_kind: DayKind,
    /// Slot start (wall clock).
    pub window_start: CivilTime,
    /// Slot end (wall clock, exclusive).
    pub window_end: CivilTime,
    /// Expected activations per day of this kind landing in the slot.
    pub expected_per_day: f64,
}

/// Mined start-time distribution for one appliance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinedSchedule {
    /// Catalog name.
    pub appliance: String,
    /// Histogram bin width in minutes (divides 1440).
    pub bin_minutes: u32,
    /// Per day-kind histograms of *rates* (activations per day per
    /// bin): index 0 = workday, 1 = weekend.
    pub histograms: [Vec<f64>; 2],
}

impl MinedSchedule {
    /// Mine schedules for every appliance appearing in `detections`.
    ///
    /// `workdays` / `weekend_days` are how many days of each kind the
    /// observation window contained (used to normalise counts to
    /// rates). Bins are `bin_minutes` wide.
    pub fn mine_all(
        detections: &[DetectedActivation],
        workdays: f64,
        weekend_days: f64,
        bin_minutes: u32,
    ) -> Vec<MinedSchedule> {
        assert!(
            bin_minutes > 0 && 1440 % bin_minutes == 0,
            "bins must divide a day"
        );
        let bins = (1440 / bin_minutes) as usize;
        let mut per_appliance: BTreeMap<&str, [Vec<f64>; 2]> = BTreeMap::new();
        for d in detections {
            let hist = per_appliance
                .entry(&d.appliance)
                .or_insert_with(|| [vec![0.0; bins], vec![0.0; bins]]);
            let kind_idx = usize::from(d.start.day_of_week().is_weekend());
            let bin = (d.start.minute_of_day() / bin_minutes) as usize;
            hist[kind_idx][bin] += 1.0;
        }
        per_appliance
            .into_iter()
            .map(|(name, mut hists)| {
                if workdays > 0.0 {
                    for v in &mut hists[0] {
                        *v /= workdays;
                    }
                }
                if weekend_days > 0.0 {
                    for v in &mut hists[1] {
                        *v /= weekend_days;
                    }
                }
                MinedSchedule {
                    appliance: name.to_string(),
                    bin_minutes,
                    histograms: hists,
                }
            })
            .collect()
    }

    /// Expected activations per day of `kind` (sum over bins).
    pub fn daily_rate(&self, kind: DayKind) -> f64 {
        match kind {
            DayKind::Workday => self.histograms[0].iter().sum(),
            DayKind::Weekend => self.histograms[1].iter().sum(),
            DayKind::All => {
                // Weighted 5/2 blend of the week structure.
                (self.daily_rate(DayKind::Workday) * 5.0 + self.daily_rate(DayKind::Weekend) * 2.0)
                    / 7.0
            }
        }
    }

    /// Compress the histograms into slots: maximal runs of consecutive
    /// bins whose rate is at least `min_rate`.
    pub fn slots(&self, min_rate: f64) -> Vec<ScheduleSlot> {
        let mut out = Vec::new();
        for (kind, hist) in KINDS.iter().zip(&self.histograms) {
            let mut run_start: Option<usize> = None;
            let mut run_rate = 0.0;
            for i in 0..=hist.len() {
                let hot = i < hist.len() && hist[i] >= min_rate;
                match (run_start, hot) {
                    (None, true) => {
                        run_start = Some(i);
                        run_rate = hist[i];
                    }
                    (Some(s), false) => {
                        out.push(self.slot_from_run(*kind, s, i, run_rate));
                        run_start = None;
                    }
                    (Some(_), true) => run_rate += hist[i],
                    (None, false) => {}
                }
            }
        }
        out
    }

    fn slot_from_run(
        &self,
        day_kind: DayKind,
        from_bin: usize,
        to_bin: usize,
        rate: f64,
    ) -> ScheduleSlot {
        let start_min = from_bin as u32 * self.bin_minutes;
        let end_min = (to_bin as u32 * self.bin_minutes).min(1439);
        ScheduleSlot {
            day_kind,
            window_start: CivilTime::from_minute_of_day(start_min).expect("bin starts are < 1440"),
            window_end: CivilTime::from_minute_of_day(end_min)
                .expect("bin ends are clamped below 1440"),
            expected_per_day: rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Timestamp;

    fn det(name: &str, start: &str) -> DetectedActivation {
        DetectedActivation {
            appliance: name.into(),
            start: start.parse::<Timestamp>().unwrap(),
            intensity: 0.5,
            energy_kwh: 1.0,
            score: 0.1,
        }
    }

    /// Dishwasher every workday evening (Mon-Fri 2013-03-18..22) and
    /// weekend lunchtime (Sat/Sun 2013-03-23/24).
    fn dishwasher_week() -> Vec<DetectedActivation> {
        let mut v = vec![
            det("Dishwasher", "2013-03-18 20:15"),
            det("Dishwasher", "2013-03-19 20:40"),
            det("Dishwasher", "2013-03-20 20:05"),
            det("Dishwasher", "2013-03-21 20:30"),
            det("Dishwasher", "2013-03-22 20:55"),
        ];
        v.push(det("Dishwasher", "2013-03-23 13:10"));
        v.push(det("Dishwasher", "2013-03-24 13:40"));
        v
    }

    #[test]
    fn rates_split_by_day_kind() {
        let schedules = MinedSchedule::mine_all(&dishwasher_week(), 5.0, 2.0, 60);
        assert_eq!(schedules.len(), 1);
        let s = &schedules[0];
        assert!((s.daily_rate(DayKind::Workday) - 1.0).abs() < 1e-9);
        assert!((s.daily_rate(DayKind::Weekend) - 1.0).abs() < 1e-9);
        assert!((s.daily_rate(DayKind::All) - 1.0).abs() < 1e-9);
        // All workday activity in the 20:00 bin.
        assert!((s.histograms[0][20] - 1.0).abs() < 1e-9);
        // All weekend activity in the 13:00 bin.
        assert!((s.histograms[1][13] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slots_compress_hot_bins() {
        let schedules = MinedSchedule::mine_all(&dishwasher_week(), 5.0, 2.0, 60);
        let slots = schedules[0].slots(0.5);
        assert_eq!(slots.len(), 2);
        let workday_slot = slots
            .iter()
            .find(|s| s.day_kind == DayKind::Workday)
            .unwrap();
        assert_eq!(workday_slot.window_start.hour, 20);
        assert_eq!(workday_slot.window_end.hour, 21);
        assert!((workday_slot.expected_per_day - 1.0).abs() < 1e-9);
        let weekend_slot = slots
            .iter()
            .find(|s| s.day_kind == DayKind::Weekend)
            .unwrap();
        assert_eq!(weekend_slot.window_start.hour, 13);
    }

    #[test]
    fn adjacent_hot_bins_merge_into_one_slot() {
        let dets = vec![
            det("W", "2013-03-18 08:10"),
            det("W", "2013-03-19 08:50"),
            det("W", "2013-03-20 09:10"),
            det("W", "2013-03-21 09:40"),
        ];
        let schedules = MinedSchedule::mine_all(&dets, 4.0, 0.0, 60);
        let slots = schedules[0].slots(0.4);
        assert_eq!(slots.len(), 1, "{slots:?}");
        assert_eq!(slots[0].window_start.hour, 8);
        assert_eq!(slots[0].window_end.hour, 10);
        assert!((slots[0].expected_per_day - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_appliances_are_separated() {
        let mut dets = dishwasher_week();
        dets.push(det("Washer", "2013-03-18 07:30"));
        let schedules = MinedSchedule::mine_all(&dets, 5.0, 2.0, 60);
        assert_eq!(schedules.len(), 2);
        let names: Vec<&str> = schedules.iter().map(|s| s.appliance.as_str()).collect();
        assert!(names.contains(&"Dishwasher") && names.contains(&"Washer"));
    }

    #[test]
    fn high_threshold_gives_no_slots() {
        let schedules = MinedSchedule::mine_all(&dishwasher_week(), 5.0, 2.0, 60);
        assert!(schedules[0].slots(5.0).is_empty());
    }

    #[test]
    fn trailing_run_is_closed() {
        let dets = vec![det("Late", "2013-03-18 23:30")];
        let schedules = MinedSchedule::mine_all(&dets, 1.0, 0.0, 60);
        let slots = schedules[0].slots(0.5);
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].window_start.hour, 23);
        // End clamps to 23:59 rather than wrapping to 00:00.
        assert_eq!(slots[0].window_end.minute_of_day(), 1439);
    }

    #[test]
    #[should_panic(expected = "divide a day")]
    fn bad_bin_width_panics() {
        MinedSchedule::mine_all(&[], 1.0, 1.0, 7);
    }

    #[test]
    fn zero_day_counts_do_not_divide() {
        // No weekend days observed → weekend histogram stays zero
        // without NaN.
        let dets = vec![det("W", "2013-03-18 08:00")];
        let schedules = MinedSchedule::mine_all(&dets, 1.0, 0.0, 60);
        assert!(schedules[0].histograms[1].iter().all(|&v| v == 0.0));
        assert!(schedules[0].daily_rate(DayKind::Weekend).abs() < 1e-12);
    }
}
