//! Power-edge detection.
//!
//! Appliance cycles announce themselves as abrupt power steps (the NILM
//! observation going back to Hart's signature work, which the paper's
//! ref \[9\] builds on). An [`Edge`] is a jump between consecutive
//! intervals whose magnitude exceeds a threshold.

use flextract_series::TimeSeries;
use flextract_time::Timestamp;
use serde::{Deserialize, Serialize};

/// Direction of a power step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeDirection {
    /// Power increased (candidate cycle start).
    Rising,
    /// Power decreased (candidate cycle end).
    Falling,
}

/// A detected power step between intervals `index - 1` and `index`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Index of the interval *after* the step.
    pub index: usize,
    /// Start instant of that interval.
    pub time: Timestamp,
    /// Signed power change in kW (positive = rising).
    pub delta_kw: f64,
    /// Direction, derived from the sign of `delta_kw`.
    pub direction: EdgeDirection,
}

/// Detect all power steps of at least `min_delta_kw` (absolute).
///
/// The series is interpreted as energy per interval; deltas are computed
/// on the implied average power so thresholds stay in kW regardless of
/// resolution.
pub fn detect_edges(series: &TimeSeries, min_delta_kw: f64) -> Vec<Edge> {
    let hours = series.resolution().hours_f64();
    let values = series.values();
    let mut edges = Vec::new();
    for i in 1..values.len() {
        let delta_kw = (values[i] - values[i - 1]) / hours;
        if delta_kw.abs() >= min_delta_kw {
            edges.push(Edge {
                index: i,
                time: series.timestamp_of(i),
                delta_kw,
                direction: if delta_kw > 0.0 {
                    EdgeDirection::Rising
                } else {
                    EdgeDirection::Falling
                },
            });
        }
    }
    edges
}

/// Only the rising edges — the candidate cycle starts.
pub fn rising_edges(series: &TimeSeries, min_delta_kw: f64) -> Vec<Edge> {
    detect_edges(series, min_delta_kw)
        .into_iter()
        .filter(|e| e.direction == EdgeDirection::Rising)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::Resolution;

    fn minutes(vals: Vec<f64>) -> TimeSeries {
        // kWh per 1-min interval; 0.05 kWh/min = 3 kW.
        TimeSeries::new("2013-03-18".parse().unwrap(), Resolution::MIN_1, vals).unwrap()
    }

    #[test]
    fn detects_step_up_and_down() {
        // 0 kW for 3 min, 3 kW for 3 min, back to 0.
        let s = minutes(vec![0.0, 0.0, 0.0, 0.05, 0.05, 0.05, 0.0, 0.0]);
        let edges = detect_edges(&s, 1.0);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].index, 3);
        assert_eq!(edges[0].direction, EdgeDirection::Rising);
        assert!((edges[0].delta_kw - 3.0).abs() < 1e-9);
        assert_eq!(edges[1].index, 6);
        assert_eq!(edges[1].direction, EdgeDirection::Falling);
        assert!((edges[1].delta_kw + 3.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_filters_small_wiggles() {
        let s = minutes(vec![0.001, 0.002, 0.001, 0.002, 0.05, 0.05]);
        // Wiggles are 0.06 kW; the real step is ~2.9 kW.
        let edges = detect_edges(&s, 1.0);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].index, 4);
    }

    #[test]
    fn rising_only_helper() {
        let s = minutes(vec![0.0, 0.05, 0.0, 0.05, 0.0]);
        let rising = rising_edges(&s, 1.0);
        assert_eq!(rising.len(), 2);
        assert!(rising.iter().all(|e| e.direction == EdgeDirection::Rising));
    }

    #[test]
    fn resolution_independence_of_kw_threshold() {
        // The same 3 kW step at 15-min resolution: 0.75 kWh per interval.
        let s = TimeSeries::new(
            "2013-03-18".parse().unwrap(),
            Resolution::MIN_15,
            vec![0.0, 0.0, 0.75, 0.75],
        )
        .unwrap();
        let edges = detect_edges(&s, 1.0);
        assert_eq!(edges.len(), 1);
        assert!((edges[0].delta_kw - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_interval_series() {
        let s = minutes(vec![]);
        assert!(detect_edges(&s, 1.0).is_empty());
        let s = minutes(vec![0.05]);
        assert!(detect_edges(&s, 1.0).is_empty());
    }

    #[test]
    fn edge_times_match_indices() {
        let s = minutes(vec![0.0, 0.0, 0.05, 0.05]);
        let edges = detect_edges(&s, 1.0);
        assert_eq!(edges[0].time, "2013-03-18 00:02".parse().unwrap());
    }
}
