//! # flextract-disagg
//!
//! Appliance-level load disaggregation — "step 1" of the paper's two
//! appliance-level extraction approaches (§4): given a total household
//! consumption series and the appliance catalog, recover *which
//! appliance ran when*.
//!
//! The paper defers this machinery to future work because its data was
//! too coarse ("the granularity of the available time series is not
//! sufficient (only 15 min)") and points at the NILM literature
//! (refs \[8\]\[9\]\[10\]). This crate implements the classic pipeline on the
//! simulator's 1-minute series:
//!
//! 1. [`events`] — rising/falling power-edge detection, yielding
//!    candidate cycle starts;
//! 2. [`matching`] — per-appliance template matching with least-squares
//!    intensity estimation and greedy subtract-and-repeat extraction;
//! 3. [`frequency`] — usage-frequency mining over the detected
//!    activations (§4.1 step 1's "shortlist of the possibly used
//!    appliances and their frequency usage table");
//! 4. [`schedule`] — usage-schedule mining per day-kind and hour
//!    (§4.2 step 1's "shortlist … and their usage schedule").
//!
//! Because it runs at any resolution, the same pipeline also
//! *quantifies* the paper's 15-minute caveat: experiment E7 feeds it
//! 1/5/15-minute versions of the same ground-truth simulation and
//! measures the accuracy collapse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod frequency;
pub mod matching;
pub mod pipeline;
pub mod schedule;

pub use events::{detect_edges, Edge, EdgeDirection};
pub use frequency::{ApplianceUsageRow, FrequencyTable};
pub use matching::{detect_activations, DetectedActivation, MatchConfig, MatchMetric};
pub use pipeline::{disaggregate, DisaggConfig, DisaggResult};
pub use schedule::{MinedSchedule, ScheduleSlot};
