//! The disaggregation pipeline entry point: one call from a cleaned
//! measured series to an appliance-level decomposition.
//!
//! The event/matching/frequency/schedule modules are the pipeline's
//! *stages*; this module is the front door the ingestion path calls
//! after cleaning: detect appliance cycles against the catalog, split
//! the series into an explained (appliance-attributed) part and a
//! residual, and report how much of the signal — and in particular how
//! much *shiftable* (flexible) energy — the decomposition recovered.
//! When a measured dataset carries no simulator ground truth, the
//! recovered shiftable series is the best available reference for
//! scoring extraction (a NILM estimate, clearly labelled as such).

use crate::matching::{detect_activations, DetectedActivation, MatchConfig};
use flextract_appliance::Catalog;
use flextract_series::{SeriesError, TimeSeries};

/// Configuration of the disaggregation pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DisaggConfig {
    /// Template-matching knobs (see [`MatchConfig`]).
    pub matching: MatchConfig,
    /// Restrict detection to shiftable catalog appliances (the ones
    /// that can carry flexibility). When `false`, every catalog
    /// appliance is matched.
    pub shiftable_only: bool,
}

impl DisaggConfig {
    /// The ingestion default: shiftable appliances only — exactly the
    /// loads whose cycles can become flex-offers.
    pub fn shiftable() -> Self {
        DisaggConfig {
            matching: MatchConfig::default(),
            shiftable_only: true,
        }
    }
}

/// The appliance-level decomposition of one consumer series.
#[derive(Debug, Clone, PartialEq)]
pub struct DisaggResult {
    /// Every recovered appliance cycle, chronological.
    pub detections: Vec<DetectedActivation>,
    /// The appliance-attributed part of the series (input − residual,
    /// clamped at zero). For a shiftable-only run this is the
    /// NILM-estimated *flexible* series.
    pub explained: TimeSeries,
    /// What template matching could not attribute to any appliance
    /// (base load plus estimation error).
    pub residual: TimeSeries,
    /// Energy of `explained` (kWh).
    pub explained_kwh: f64,
    /// `explained_kwh / input energy` (0 for an all-zero input).
    pub explained_share: f64,
}

/// Run the disaggregation pipeline on a cleaned series.
///
/// `series` should be at the finest resolution available — template
/// matching degrades with granularity (the paper's "only 15 min"
/// caveat is precisely this effect, measured by experiment E7).
pub fn disaggregate(
    series: &TimeSeries,
    catalog: &Catalog,
    config: &DisaggConfig,
) -> Result<DisaggResult, SeriesError> {
    let specs: Vec<&flextract_appliance::ApplianceSpec> = if config.shiftable_only {
        catalog.shiftable()
    } else {
        catalog.specs().iter().collect()
    };
    let (detections, residual) = detect_activations(series, &specs, &config.matching);
    let mut explained = series.sub(&residual)?;
    // Greedy subtraction can leave slightly negative attribution where
    // templates overlapped; attributed energy is non-negative.
    explained.clip_negative();
    let explained_kwh = explained.total_energy();
    let total = series.total_energy();
    Ok(DisaggResult {
        detections,
        explained,
        residual,
        explained_kwh,
        explained_share: if total > 0.0 {
            explained_kwh / total
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::{Resolution, Timestamp};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// A flat base load with one full-intensity shiftable cycle.
    fn series_with_cycle(catalog: &Catalog) -> TimeSeries {
        let spec = catalog
            .shiftable()
            .into_iter()
            .next()
            .expect("catalog has a shiftable appliance");
        let mut series =
            TimeSeries::new(ts("2013-03-18"), Resolution::MIN_1, vec![0.003; 1440]).unwrap();
        let cycle = spec.profile.to_energy_series(ts("2013-03-18 10:00"), 1.0);
        series.add_overlapping(&cycle).expect("same 1-min grid");
        series
    }

    #[test]
    fn pipeline_recovers_a_planted_cycle() {
        let catalog = Catalog::extended();
        let series = series_with_cycle(&catalog);
        let result = disaggregate(&series, &catalog, &DisaggConfig::shiftable()).unwrap();
        assert!(
            !result.detections.is_empty(),
            "expected at least one detection"
        );
        assert!(result.explained_kwh > 0.0);
        assert!(result.explained_share > 0.0 && result.explained_share <= 1.0);
        // Decomposition is conservative: explained + residual ≈ input
        // up to the negative clamp.
        let recombined = result.explained.total_energy() + result.residual.total_energy();
        assert!(
            recombined >= series.total_energy() - 1e-9,
            "clamp only adds energy"
        );
    }

    #[test]
    fn quiet_series_yields_nothing() {
        let catalog = Catalog::extended();
        let flat = TimeSeries::new(ts("2013-03-18"), Resolution::MIN_1, vec![0.002; 1440]).unwrap();
        let result = disaggregate(&flat, &catalog, &DisaggConfig::shiftable()).unwrap();
        assert!(result.detections.is_empty(), "{:?}", result.detections);
        assert_eq!(result.explained_kwh, 0.0);
        assert_eq!(result.explained_share, 0.0);
    }

    #[test]
    fn shiftable_only_is_a_subset_of_full_catalog() {
        let catalog = Catalog::extended();
        let series = series_with_cycle(&catalog);
        let shiftable = disaggregate(&series, &catalog, &DisaggConfig::shiftable()).unwrap();
        let full = disaggregate(
            &series,
            &catalog,
            &DisaggConfig {
                shiftable_only: false,
                ..DisaggConfig::default()
            },
        )
        .unwrap();
        assert!(full.detections.len() >= shiftable.detections.len());
    }
}
