//! Property tests for appliance profiles and the catalog.

use flextract_appliance::{Catalog, LoadProfile, ProfilePhase};
use flextract_time::Timestamp;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = LoadProfile> {
    prop::collection::vec((1_u32..120, 0.0_f64..3.0, 0.0_f64..2.0), 1..6).prop_map(|phases| {
        LoadProfile::new(
            phases
                .into_iter()
                .map(|(d, lo, width)| ProfilePhase::banded(d, lo, lo + width))
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn envelope_brackets_every_intensity(profile in arb_profile(), x in 0.0_f64..1.0) {
        let (lo, hi) = profile.energy_range_kwh();
        let e = profile.cycle_energy_kwh(x);
        prop_assert!(lo - 1e-9 <= e && e <= hi + 1e-9, "{e} outside [{lo}, {hi}]");
        // The per-minute curve is bounded by the phase bands.
        let curve = profile.power_curve_kw(x);
        let min_curve = profile.power_curve_kw(0.0);
        let max_curve = profile.power_curve_kw(1.0);
        for ((c, lo_kw), hi_kw) in curve.iter().zip(&min_curve).zip(&max_curve) {
            prop_assert!(lo_kw - 1e-12 <= *c && *c <= hi_kw + 1e-12);
        }
    }

    #[test]
    fn series_realisation_matches_cycle_energy(
        profile in arb_profile(),
        x in 0.0_f64..1.0,
        start_min in 0_i64..(7 * 1440),
    ) {
        let start = Timestamp::from_minutes(start_min);
        let series = profile.to_energy_series(start, x);
        prop_assert_eq!(series.len() as i64, profile.duration().as_minutes());
        prop_assert!((series.total_energy() - profile.cycle_energy_kwh(x)).abs() < 1e-9);
        prop_assert!(series.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn intensity_is_monotone_in_energy(profile in arb_profile(), a in 0.0_f64..1.0, b in 0.0_f64..1.0) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(profile.cycle_energy_kwh(lo) <= profile.cycle_energy_kwh(hi) + 1e-12);
    }
}

#[test]
fn every_catalog_profile_satisfies_the_envelope_properties() {
    for spec in Catalog::extended().iter() {
        let (lo, hi) = spec.profile.energy_range_kwh();
        assert!(lo >= 0.0 && hi >= lo, "{}", spec.name);
        for x in [0.0, 0.3, 0.7, 1.0] {
            let e = spec.profile.cycle_energy_kwh(x);
            assert!(lo - 1e-9 <= e && e <= hi + 1e-9, "{} at {x}", spec.name);
        }
        assert!(spec.cycle_duration().as_minutes() > 0, "{}", spec.name);
    }
}
