//! The appliance catalog, seeded with the paper's Table 1.

use crate::{
    ApplianceCategory, ApplianceSpec, LoadProfile, ProfilePhase, Shiftability, UsageFrequency,
    UsageModel,
};
use flextract_time::{CivilTime, Duration};
use serde::{Deserialize, Serialize};

/// A queryable collection of appliance specifications.
///
/// The paper assumes "the specification of the electricity usage of all
/// appliances ever manufactured in the world" (§4.1). [`Catalog::table1`]
/// reproduces the six published rows; [`Catalog::extended`] adds the
/// always-on and non-shiftable appliances a realistic household mix
/// needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Catalog {
    specs: Vec<ApplianceSpec>,
}

fn t(hour: u8, minute: u8) -> CivilTime {
    CivilTime::new(hour, minute).expect("catalog windows are static and valid")
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog { specs: Vec::new() }
    }

    /// Build from specs.
    pub fn from_specs(specs: Vec<ApplianceSpec>) -> Self {
        Catalog { specs }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All rows in order.
    pub fn specs(&self) -> &[ApplianceSpec] {
        &self.specs
    }

    /// Iterate the rows.
    pub fn iter(&self) -> impl Iterator<Item = &ApplianceSpec> {
        self.specs.iter()
    }

    /// Add a row.
    pub fn push(&mut self, spec: ApplianceSpec) {
        self.specs.push(spec);
    }

    /// Find by exact display name.
    pub fn find_by_name(&self, name: &str) -> Option<&ApplianceSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All rows of one category.
    pub fn by_category(&self, category: ApplianceCategory) -> Vec<&ApplianceSpec> {
        self.specs
            .iter()
            .filter(|s| s.category == category)
            .collect()
    }

    /// The rows whose usage can be shifted — the flexibility candidates.
    pub fn shiftable(&self) -> Vec<&ApplianceSpec> {
        self.specs
            .iter()
            .filter(|s| s.shiftability.is_shiftable())
            .collect()
    }

    /// The rows that cannot be shifted (base and comfort load).
    pub fn non_shiftable(&self) -> Vec<&ApplianceSpec> {
        self.specs
            .iter()
            .filter(|s| !s.shiftability.is_shiftable())
            .collect()
    }

    /// Exactly the paper's Table 1: six appliances with their published
    /// energy-consumption ranges, given executable sub-15-min profiles.
    pub fn table1() -> Self {
        let specs = vec![
            // "Vacuum Cleaning Robot from Manufacturer X  0.5 - 1"
            ApplianceSpec {
                name: "Vacuum Cleaning Robot from Manufacturer X".into(),
                category: ApplianceCategory::VacuumRobot,
                energy_range_kwh: (0.5, 1.0),
                // Battery charge: 3 h trickle.
                profile: LoadProfile::new(vec![ProfilePhase::banded(180, 0.5 / 3.0, 1.0 / 3.0)]),
                usage: UsageModel {
                    // The paper's worked example: "cleans the house every
                    // day at 10AM … time flexibility as 22 hours".
                    frequency: UsageFrequency::PerDay(1.0),
                    preferred_windows: vec![(t(9, 30), t(10, 30), 1.0)],
                    weekend_multiplier: 1.0,
                },
                shiftability: Shiftability::Shiftable {
                    max_delay: Duration::hours(22),
                },
            },
            // "Washing Machine from Manufacturer Y  1.2 - 3"
            ApplianceSpec {
                name: "Washing Machine from Manufacturer Y".into(),
                category: ApplianceCategory::WashingMachine,
                energy_range_kwh: (1.2, 3.0),
                profile: LoadProfile::new(vec![
                    ProfilePhase::banded(30, 1.6, 3.6),   // heating
                    ProfilePhase::banded(75, 0.24, 0.72), // wash/rinse
                    ProfilePhase::banded(15, 0.4, 1.2),   // spin
                ]),
                usage: UsageModel {
                    frequency: UsageFrequency::PerWeek(3.0),
                    preferred_windows: vec![(t(7, 0), t(9, 0), 1.0), (t(18, 0), t(21, 0), 1.5)],
                    weekend_multiplier: 1.5,
                },
                shiftability: Shiftability::Shiftable {
                    max_delay: Duration::hours(8),
                },
            },
            // "Dishwasher from Manufacturer Z  1.2 - 2"
            ApplianceSpec {
                name: "Dishwasher from Manufacturer Z".into(),
                category: ApplianceCategory::Dishwasher,
                energy_range_kwh: (1.2, 2.0),
                profile: LoadProfile::new(vec![
                    ProfilePhase::banded(20, 1.8, 3.0), // heating
                    ProfilePhase::banded(60, 0.3, 0.6), // wash
                    ProfilePhase::banded(20, 0.9, 1.2), // dry
                ]),
                usage: UsageModel {
                    frequency: UsageFrequency::PerDay(0.8),
                    preferred_windows: vec![(t(13, 0), t(14, 30), 1.0), (t(19, 30), t(22, 0), 2.0)],
                    // §4.2: "the dishwasher is more used during the
                    // weekends since the family eats at home more often".
                    weekend_multiplier: 1.4,
                },
                shiftability: Shiftability::Shiftable {
                    max_delay: Duration::hours(10),
                },
            },
            // "Small Electric Vehicle  30 - 50"
            ApplianceSpec {
                name: "Small Electric Vehicle".into(),
                category: ApplianceCategory::ElectricVehicle,
                energy_range_kwh: (30.0, 50.0),
                profile: LoadProfile::new(vec![ProfilePhase::banded(150, 12.0, 20.0)]),
                usage: UsageModel {
                    frequency: UsageFrequency::PerDay(0.8),
                    preferred_windows: vec![(t(21, 0), t(23, 45), 1.0)],
                    weekend_multiplier: 0.7,
                },
                // Figure 1: start anywhere between 10 PM and 5 AM.
                shiftability: Shiftability::Shiftable {
                    max_delay: Duration::hours(7),
                },
            },
            // "Medium El. Vehicle  50 - 60"
            ApplianceSpec {
                name: "Medium El. Vehicle".into(),
                category: ApplianceCategory::ElectricVehicle,
                energy_range_kwh: (50.0, 60.0),
                profile: LoadProfile::new(vec![ProfilePhase::banded(150, 20.0, 24.0)]),
                usage: UsageModel {
                    frequency: UsageFrequency::PerDay(0.7),
                    preferred_windows: vec![(t(21, 0), t(23, 45), 1.0)],
                    weekend_multiplier: 0.7,
                },
                shiftability: Shiftability::Shiftable {
                    max_delay: Duration::hours(7),
                },
            },
            // "Large El. Vehicle  60 - 70"
            ApplianceSpec {
                name: "Large El. Vehicle".into(),
                category: ApplianceCategory::ElectricVehicle,
                energy_range_kwh: (60.0, 70.0),
                profile: LoadProfile::new(vec![ProfilePhase::banded(180, 20.0, 70.0 / 3.0)]),
                usage: UsageModel {
                    frequency: UsageFrequency::PerDay(0.6),
                    preferred_windows: vec![(t(21, 0), t(23, 45), 1.0)],
                    weekend_multiplier: 0.7,
                },
                shiftability: Shiftability::Shiftable {
                    max_delay: Duration::hours(7),
                },
            },
        ];
        Catalog { specs }
    }

    /// Table 1 plus the non-flexible appliances that dominate real
    /// household base load — needed so simulated series look like the
    /// paper's Figure 5 day rather than isolated spikes.
    pub fn extended() -> Self {
        let mut cat = Self::table1();
        cat.push(ApplianceSpec {
            name: "Refrigerator A+".into(),
            category: ApplianceCategory::Refrigerator,
            energy_range_kwh: (0.03, 0.07),
            // One compressor duty cycle; the simulator chains them
            // back-to-back all day.
            profile: LoadProfile::new(vec![ProfilePhase::banded(30, 0.06, 0.14)]),
            usage: UsageModel::uniform(UsageFrequency::Continuous),
            shiftability: Shiftability::NonShiftable,
        });
        cat.push(ApplianceSpec {
            name: "Electric Oven".into(),
            category: ApplianceCategory::Oven,
            energy_range_kwh: (1.5, 2.5),
            profile: LoadProfile::new(vec![ProfilePhase::banded(60, 1.5, 2.5)]),
            usage: UsageModel {
                frequency: UsageFrequency::PerDay(0.7),
                preferred_windows: vec![(t(17, 30), t(19, 30), 1.0)],
                weekend_multiplier: 1.3,
            },
            shiftability: Shiftability::NonShiftable,
        });
        cat.push(ApplianceSpec {
            name: "Kettle".into(),
            category: ApplianceCategory::Electronics,
            energy_range_kwh: (1.0 / 6.0, 0.2),
            profile: LoadProfile::new(vec![ProfilePhase::banded(5, 2.0, 2.4)]),
            usage: UsageModel {
                frequency: UsageFrequency::PerDay(3.0),
                preferred_windows: vec![
                    (t(6, 30), t(8, 30), 2.0),
                    (t(12, 0), t(13, 0), 1.0),
                    (t(19, 0), t(21, 0), 1.0),
                ],
                weekend_multiplier: 1.1,
            },
            shiftability: Shiftability::NonShiftable,
        });
        cat.push(ApplianceSpec {
            name: "Television & Electronics".into(),
            category: ApplianceCategory::Electronics,
            energy_range_kwh: (0.3, 0.6),
            profile: LoadProfile::new(vec![ProfilePhase::banded(180, 0.1, 0.2)]),
            usage: UsageModel {
                frequency: UsageFrequency::PerDay(1.5),
                preferred_windows: vec![(t(18, 0), t(22, 30), 1.0)],
                weekend_multiplier: 1.4,
            },
            shiftability: Shiftability::NonShiftable,
        });
        cat.push(ApplianceSpec {
            name: "Lighting Circuit".into(),
            category: ApplianceCategory::Lighting,
            energy_range_kwh: (0.5, 1.5),
            profile: LoadProfile::new(vec![ProfilePhase::banded(300, 0.1, 0.3)]),
            usage: UsageModel {
                frequency: UsageFrequency::PerDay(1.0),
                preferred_windows: vec![(t(17, 0), t(19, 0), 1.0)],
                weekend_multiplier: 1.1,
            },
            shiftability: Shiftability::NonShiftable,
        });
        cat.push(ApplianceSpec {
            name: "Tumble Dryer".into(),
            category: ApplianceCategory::TumbleDryer,
            energy_range_kwh: (3.0, 4.5),
            profile: LoadProfile::new(vec![ProfilePhase::banded(90, 2.0, 3.0)]),
            usage: UsageModel {
                frequency: UsageFrequency::PerWeek(2.0),
                preferred_windows: vec![(t(9, 0), t(12, 0), 1.0), (t(19, 0), t(21, 0), 1.0)],
                weekend_multiplier: 1.5,
            },
            shiftability: Shiftability::Shiftable {
                max_delay: Duration::hours(6),
            },
        });
        cat.push(ApplianceSpec {
            name: "Water Heater".into(),
            category: ApplianceCategory::WaterHeater,
            energy_range_kwh: (3.0, 4.0),
            profile: LoadProfile::new(vec![ProfilePhase::banded(120, 1.5, 2.0)]),
            usage: UsageModel {
                frequency: UsageFrequency::PerDay(1.0),
                preferred_windows: vec![(t(4, 0), t(6, 0), 1.0)],
                weekend_multiplier: 1.0,
            },
            shiftability: Shiftability::Shiftable {
                max_delay: Duration::hours(4),
            },
        });
        cat.push(ApplianceSpec {
            name: "Heat Pump".into(),
            category: ApplianceCategory::HeatPump,
            energy_range_kwh: (4.0, 8.0),
            profile: LoadProfile::new(vec![ProfilePhase::banded(240, 1.0, 2.0)]),
            usage: UsageModel {
                frequency: UsageFrequency::PerDay(1.0),
                preferred_windows: vec![(t(5, 0), t(7, 0), 1.0), (t(16, 0), t(18, 0), 0.8)],
                weekend_multiplier: 1.0,
            },
            shiftability: Shiftability::Shiftable {
                max_delay: Duration::hours(2),
            },
        });
        cat
    }

    /// Render the catalog in the layout of the paper's Table 1.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<45} {:<22} {}\n",
            "Appliance name", "Energy Range (kWh)", "Energy profile"
        ));
        out.push_str(&"-".repeat(100));
        out.push('\n');
        for s in &self.specs {
            let phases: Vec<String> = s
                .profile
                .phases()
                .iter()
                .map(|p| format!("{}min@{:.2}-{:.2}kW", p.duration_min, p.min_kw, p.max_kw))
                .collect();
            out.push_str(&format!(
                "{:<45} {:<22} {}\n",
                s.name,
                format!("{} - {}", s.energy_range_kwh.0, s.energy_range_kwh.1),
                phases.join(" | ")
            ));
        }
        out
    }
}

impl<'a> IntoIterator for &'a Catalog {
    type Item = &'a ApplianceSpec;
    type IntoIter = std::slice::Iter<'a, ApplianceSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.specs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_exactly_the_published_rows() {
        let cat = Catalog::table1();
        assert_eq!(cat.len(), 6);
        let expect = [
            ("Vacuum Cleaning Robot from Manufacturer X", 0.5, 1.0),
            ("Washing Machine from Manufacturer Y", 1.2, 3.0),
            ("Dishwasher from Manufacturer Z", 1.2, 2.0),
            ("Small Electric Vehicle", 30.0, 50.0),
            ("Medium El. Vehicle", 50.0, 60.0),
            ("Large El. Vehicle", 60.0, 70.0),
        ];
        for (name, lo, hi) in expect {
            let s = cat
                .find_by_name(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.energy_range_kwh, (lo, hi), "{name}");
        }
    }

    #[test]
    fn table1_profiles_integrate_to_declared_ranges() {
        for s in Catalog::table1().iter() {
            assert!(
                s.profile_consistent(1e-9),
                "{}: profile integrates to {:?}, declared {:?}",
                s.name,
                s.profile.energy_range_kwh(),
                s.energy_range_kwh
            );
        }
    }

    #[test]
    fn table1_profiles_are_sub_15min_granularity() {
        // "granularity must be even smaller than 15min": every profile
        // has at least one phase, and expansion is per-minute.
        for s in Catalog::table1().iter() {
            assert!(!s.profile.phases().is_empty());
            let curve = s.profile.nominal_curve_kw();
            assert_eq!(curve.len() as i64, s.profile.duration().as_minutes());
        }
    }

    #[test]
    fn table1_is_fully_shiftable_and_roomba_has_22h() {
        let cat = Catalog::table1();
        assert_eq!(cat.shiftable().len(), 6);
        let roomba = cat
            .find_by_name("Vacuum Cleaning Robot from Manufacturer X")
            .unwrap();
        assert_eq!(roomba.shiftability.max_delay(), Duration::hours(22));
        assert_eq!(roomba.usage.frequency.mean_daily_rate(), Some(1.0));
    }

    #[test]
    fn extended_adds_non_shiftable_base_load() {
        let cat = Catalog::extended();
        assert!(cat.len() > 6);
        assert!(!cat.non_shiftable().is_empty());
        let fridge = cat.find_by_name("Refrigerator A+").unwrap();
        assert_eq!(fridge.usage.frequency, UsageFrequency::Continuous);
        assert!(!fridge.shiftability.is_shiftable());
        // Every extended profile is still self-consistent.
        for s in cat.iter() {
            assert!(s.profile_consistent(1e-9), "{}", s.name);
        }
    }

    #[test]
    fn category_queries() {
        let cat = Catalog::extended();
        assert_eq!(cat.by_category(ApplianceCategory::ElectricVehicle).len(), 3);
        assert_eq!(cat.by_category(ApplianceCategory::WashingMachine).len(), 1);
        assert!(cat.by_category(ApplianceCategory::Refrigerator).len() == 1);
    }

    #[test]
    fn rendered_table_contains_every_row() {
        let cat = Catalog::table1();
        let table = cat.render_table();
        for s in cat.iter() {
            assert!(table.contains(&s.name), "table missing {}", s.name);
        }
        assert!(table.contains("30 - 50"));
        assert!(table.contains("Energy profile"));
    }

    #[test]
    fn push_and_find() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        let spec = Catalog::table1().specs()[0].clone();
        cat.push(spec);
        assert_eq!(cat.len(), 1);
        assert!(cat
            .find_by_name("Vacuum Cleaning Robot from Manufacturer X")
            .is_some());
        assert!(cat.find_by_name("Nonexistent").is_none());
    }

    #[test]
    fn iteration_conveniences() {
        let cat = Catalog::table1();
        let names: Vec<_> = (&cat).into_iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 6);
        assert_eq!(cat.iter().count(), 6);
    }

    #[test]
    fn serde_round_trip() {
        let cat = Catalog::extended();
        let json = serde_json::to_string(&cat).unwrap();
        let back: Catalog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cat);
    }
}
