//! Phase-wise appliance load profiles.
//!
//! An appliance cycle (one washing-machine run, one EV charge) is
//! modelled as consecutive **phases**, each with a duration and a
//! `[min, max]` power band — the paper's "energy profiles with min and
//! max ranges for every time stamp". The envelope is stored phase-wise
//! for compactness and expanded to 1-minute power samples on demand.

use flextract_series::TimeSeries;
use flextract_time::{Duration, Resolution, Timestamp};
use serde::{Deserialize, Serialize};

/// One phase of an appliance cycle: `duration_min` minutes drawing
/// between `min_kw` and `max_kw`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilePhase {
    /// Phase length in whole minutes (> 0).
    pub duration_min: u32,
    /// Lower bound of the power band (kW, ≥ 0).
    pub min_kw: f64,
    /// Upper bound of the power band (kW, ≥ `min_kw`).
    pub max_kw: f64,
}

impl ProfilePhase {
    /// A constant-power phase (no band width).
    pub fn flat(duration_min: u32, kw: f64) -> Self {
        ProfilePhase {
            duration_min,
            min_kw: kw,
            max_kw: kw,
        }
    }

    /// A banded phase.
    pub fn banded(duration_min: u32, min_kw: f64, max_kw: f64) -> Self {
        debug_assert!(min_kw >= 0.0 && max_kw >= min_kw);
        ProfilePhase {
            duration_min,
            min_kw,
            max_kw,
        }
    }
}

/// A whole-cycle load profile: consecutive phases at 1-min granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    phases: Vec<ProfilePhase>,
}

impl LoadProfile {
    /// Build from phases; empty or zero-duration phases are rejected by
    /// debug assertion (catalog profiles are static data).
    pub fn new(phases: Vec<ProfilePhase>) -> Self {
        debug_assert!(
            !phases.is_empty(),
            "a load profile needs at least one phase"
        );
        debug_assert!(phases.iter().all(|p| p.duration_min > 0));
        LoadProfile { phases }
    }

    /// The phases in order.
    pub fn phases(&self) -> &[ProfilePhase] {
        &self.phases
    }

    /// Total cycle duration.
    pub fn duration(&self) -> Duration {
        Duration::minutes(self.phases.iter().map(|p| p.duration_min as i64).sum())
    }

    /// Per-cycle energy bounds `(min_kwh, max_kwh)` — integrating the
    /// power envelope.
    pub fn energy_range_kwh(&self) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for p in &self.phases {
            let h = p.duration_min as f64 / 60.0;
            lo += p.min_kw * h;
            hi += p.max_kw * h;
        }
        (lo, hi)
    }

    /// Expand to per-minute power samples at `intensity` ∈ [0, 1], which
    /// interpolates each phase between its min (0) and max (1) power.
    pub fn power_curve_kw(&self, intensity: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.fill_power_curve_kw(intensity, &mut out);
        out
    }

    /// [`LoadProfile::power_curve_kw`] into a reusable buffer (cleared
    /// first). This loop is the single owner of the phase-expansion
    /// math — every other per-minute realisation derives from it, so
    /// the simulator's cycle energies and the disaggregator's matching
    /// templates can never diverge.
    pub fn fill_power_curve_kw(&self, intensity: f64, out: &mut Vec<f64>) {
        let x = intensity.clamp(0.0, 1.0);
        out.clear();
        out.reserve(self.phases.iter().map(|p| p.duration_min as usize).sum());
        for p in &self.phases {
            let kw = p.min_kw + (p.max_kw - p.min_kw) * x;
            out.extend(std::iter::repeat_n(kw, p.duration_min as usize));
        }
    }

    /// The nominal (midpoint-intensity) per-minute power curve — used as
    /// the matching template by the disaggregator.
    pub fn nominal_curve_kw(&self) -> Vec<f64> {
        self.power_curve_kw(0.5)
    }

    /// Fill `out` with one cycle's per-minute energies (kWh per minute)
    /// at `intensity` — the allocation-free core of
    /// [`LoadProfile::to_energy_series`]. `out` is cleared first, so a
    /// caller can reuse one scratch buffer across many cycles.
    pub fn fill_energy_values(&self, intensity: f64, out: &mut Vec<f64>) {
        self.fill_power_curve_kw(intensity, out);
        for v in out.iter_mut() {
            *v /= 60.0; // 1 minute of kW → kWh
        }
    }

    /// Realise one cycle starting at `start` as a 1-minute energy
    /// series (kWh per minute) at the given intensity.
    pub fn to_energy_series(&self, start: Timestamp, intensity: f64) -> TimeSeries {
        let start = start.floor_to(Resolution::MIN_1);
        let mut values = Vec::new();
        self.fill_energy_values(intensity, &mut values);
        TimeSeries::new(start, Resolution::MIN_1, values)
            .expect("minute floor is always aligned to MIN_1")
    }

    /// Energy (kWh) of one cycle at the given intensity.
    pub fn cycle_energy_kwh(&self, intensity: f64) -> f64 {
        let (lo, hi) = self.energy_range_kwh();
        lo + (hi - lo) * intensity.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn washer_like() -> LoadProfile {
        LoadProfile::new(vec![
            ProfilePhase::banded(20, 1.8, 2.2), // heating
            ProfilePhase::banded(60, 0.3, 0.5), // wash
            ProfilePhase::banded(10, 0.6, 1.0), // spin
        ])
    }

    #[test]
    fn duration_sums_phases() {
        assert_eq!(washer_like().duration(), Duration::minutes(90));
    }

    #[test]
    fn energy_range_integrates_envelope() {
        let (lo, hi) = washer_like().energy_range_kwh();
        // lo = 1.8*(20/60) + 0.3*1 + 0.6*(10/60) = 0.6 + 0.3 + 0.1 = 1.0
        assert!((lo - 1.0).abs() < 1e-9, "{lo}");
        // hi = 2.2/3 + 0.5 + 1.0/6 ≈ 0.7333 + 0.5 + 0.1667 = 1.4
        assert!((hi - 1.4).abs() < 1e-9, "{hi}");
    }

    #[test]
    fn intensity_interpolates_power() {
        let p = washer_like();
        let at_min = p.power_curve_kw(0.0);
        let at_max = p.power_curve_kw(1.0);
        let mid = p.power_curve_kw(0.5);
        assert_eq!(at_min.len(), 90);
        assert!((at_min[0] - 1.8).abs() < 1e-12);
        assert!((at_max[0] - 2.2).abs() < 1e-12);
        assert!((mid[0] - 2.0).abs() < 1e-12);
        // Out-of-range intensity clamps.
        assert_eq!(p.power_curve_kw(7.0), at_max);
        assert_eq!(p.power_curve_kw(-1.0), at_min);
    }

    #[test]
    fn nominal_curve_is_midpoint() {
        let p = washer_like();
        assert_eq!(p.nominal_curve_kw(), p.power_curve_kw(0.5));
    }

    #[test]
    fn energy_series_realisation() {
        let p = washer_like();
        let start: Timestamp = "2013-03-18 10:00".parse().unwrap();
        let s = p.to_energy_series(start, 0.0);
        assert_eq!(s.resolution(), Resolution::MIN_1);
        assert_eq!(s.len(), 90);
        assert!((s.total_energy() - 1.0).abs() < 1e-9);
        // Intensity 1.0 integrates to the max bound.
        let s_hi = p.to_energy_series(start, 1.0);
        assert!((s_hi.total_energy() - 1.4).abs() < 1e-9);
        // Unaligned start is floored to the minute.
        let s2 = p.to_energy_series(start, 0.5);
        assert_eq!(s2.start(), start);
    }

    #[test]
    fn cycle_energy_matches_series_energy() {
        let p = washer_like();
        let start: Timestamp = "2013-03-18 10:00".parse().unwrap();
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let direct = p.cycle_energy_kwh(x);
            let via_series = p.to_energy_series(start, x).total_energy();
            assert!((direct - via_series).abs() < 1e-9, "intensity {x}");
        }
    }

    #[test]
    fn fill_energy_values_matches_the_envelope_integral() {
        // Anchored against the *independently computed* per-cycle
        // energy integral, not against to_energy_series (which derives
        // from the same fill) — so a drift in the shared phase
        // expansion cannot cancel out of the comparison.
        let p = washer_like();
        let mut scratch = vec![99.0; 3]; // stale content must be cleared
        for &x in &[0.0, 0.3, 0.5, 1.0] {
            p.fill_energy_values(x, &mut scratch);
            assert_eq!(scratch.len(), 90);
            let total: f64 = scratch.iter().sum();
            assert!(
                (total - p.cycle_energy_kwh(x)).abs() < 1e-9,
                "intensity {x}: {total} vs {}",
                p.cycle_energy_kwh(x)
            );
            // Per-minute values are the power curve scaled to kWh.
            let kw = p.power_curve_kw(x);
            assert!(scratch.iter().zip(&kw).all(|(e, k)| *e == k / 60.0));
        }
    }

    #[test]
    fn flat_phase_helper() {
        let ph = ProfilePhase::flat(30, 1.5);
        assert_eq!(ph.min_kw, ph.max_kw);
        let p = LoadProfile::new(vec![ph]);
        let (lo, hi) = p.energy_range_kwh();
        assert!((lo - 0.75).abs() < 1e-12);
        assert_eq!(lo, hi);
    }

    #[test]
    fn serde_round_trip() {
        let p = washer_like();
        let json = serde_json::to_string(&p).unwrap();
        let back: LoadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
