//! Appliance specifications: identity, usage model and shiftability.

use crate::LoadProfile;
use flextract_time::{CivilTime, Duration};
use serde::{Deserialize, Serialize};

/// Broad appliance class, used for catalog queries and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ApplianceCategory {
    VacuumRobot,
    WashingMachine,
    Dishwasher,
    TumbleDryer,
    ElectricVehicle,
    Refrigerator,
    Oven,
    WaterHeater,
    HeatPump,
    Lighting,
    Electronics,
}

impl std::fmt::Display for ApplianceCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ApplianceCategory::VacuumRobot => "vacuum robot",
            ApplianceCategory::WashingMachine => "washing machine",
            ApplianceCategory::Dishwasher => "dishwasher",
            ApplianceCategory::TumbleDryer => "tumble dryer",
            ApplianceCategory::ElectricVehicle => "electric vehicle",
            ApplianceCategory::Refrigerator => "refrigerator",
            ApplianceCategory::Oven => "oven",
            ApplianceCategory::WaterHeater => "water heater",
            ApplianceCategory::HeatPump => "heat pump",
            ApplianceCategory::Lighting => "lighting",
            ApplianceCategory::Electronics => "electronics",
        };
        f.write_str(name)
    }
}

/// How often an appliance is typically used — the core datum of the
/// frequency-based approach (§4.1: "some of the appliances may be used
/// daily while some may be used weekly or monthly, or even yearly").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UsageFrequency {
    /// Mean activations per day.
    PerDay(f64),
    /// Mean activations per week.
    PerWeek(f64),
    /// Mean activations per month (30 days).
    PerMonth(f64),
    /// Runs continuously (base load); the simulator models it as an
    /// always-on draw, and extraction never shifts it.
    Continuous,
}

impl UsageFrequency {
    /// Expected activations per day (`None` for continuous loads).
    pub fn mean_daily_rate(&self) -> Option<f64> {
        match *self {
            UsageFrequency::PerDay(n) => Some(n),
            UsageFrequency::PerWeek(n) => Some(n / 7.0),
            UsageFrequency::PerMonth(n) => Some(n / 30.0),
            UsageFrequency::Continuous => None,
        }
    }
}

/// Whether (and how far) an appliance's usage can be shifted in time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shiftability {
    /// The cycle can be delayed by up to `max_delay` after its natural
    /// start ("time flexibility … 22 hours (it needs to be charged
    /// before the next usage)", §4.1).
    Shiftable {
        /// Maximum admissible delay.
        max_delay: Duration,
    },
    /// The cycle serves an immediate need (cooking, lighting) and
    /// cannot move.
    NonShiftable,
}

impl Shiftability {
    /// `true` for [`Shiftability::Shiftable`].
    pub fn is_shiftable(&self) -> bool {
        matches!(self, Shiftability::Shiftable { .. })
    }

    /// The admissible delay (zero for non-shiftable appliances).
    pub fn max_delay(&self) -> Duration {
        match *self {
            Shiftability::Shiftable { max_delay } => max_delay,
            Shiftability::NonShiftable => Duration::ZERO,
        }
    }
}

/// When during the day an appliance tends to start.
///
/// Weights need not be normalised; the simulator samples start windows
/// proportionally. `weekend_multiplier` scales the *usage rate* on
/// weekends (the schedule-based approach's motivating example: "the
/// dishwasher is more used during the weekends", §4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageModel {
    /// Typical activation rate.
    pub frequency: UsageFrequency,
    /// Preferred start windows `(from, to, weight)` in wall-clock time;
    /// windows may wrap past midnight (`from > to`).
    pub preferred_windows: Vec<(CivilTime, CivilTime, f64)>,
    /// Rate multiplier applied on Saturdays and Sundays.
    pub weekend_multiplier: f64,
}

impl UsageModel {
    /// A model with a single all-day window and no weekend effect.
    pub fn uniform(frequency: UsageFrequency) -> Self {
        UsageModel {
            frequency,
            preferred_windows: vec![(
                CivilTime::MIDNIGHT,
                CivilTime {
                    hour: 23,
                    minute: 59,
                },
                1.0,
            )],
            weekend_multiplier: 1.0,
        }
    }

    /// Expected activations for a day, accounting for the weekend
    /// multiplier. `None` for continuous loads.
    pub fn expected_rate(&self, weekend: bool) -> Option<f64> {
        let base = self.frequency.mean_daily_rate()?;
        Some(if weekend {
            base * self.weekend_multiplier
        } else {
            base
        })
    }
}

/// One catalog row: the executable version of a Table-1 entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplianceSpec {
    /// Display name, e.g. `"Washing Machine from Manufacturer Y"`.
    pub name: String,
    /// Broad class.
    pub category: ApplianceCategory,
    /// Per-cycle energy consumption range (kWh) — Table 1's middle
    /// column. Kept as declared data and cross-checked against the
    /// profile by [`ApplianceSpec::profile_consistent`].
    pub energy_range_kwh: (f64, f64),
    /// The sub-15-min load profile — Table 1's "Energy profile" column.
    pub profile: LoadProfile,
    /// Typical usage pattern.
    pub usage: UsageModel,
    /// Whether and how far cycles can be delayed.
    pub shiftability: Shiftability,
}

impl ApplianceSpec {
    /// `true` when the declared energy range brackets what the profile
    /// actually integrates to (within `tol` kWh at both ends).
    pub fn profile_consistent(&self, tol: f64) -> bool {
        let (lo, hi) = self.profile.energy_range_kwh();
        (lo - self.energy_range_kwh.0).abs() <= tol && (hi - self.energy_range_kwh.1).abs() <= tol
    }

    /// Convenience: the profile's cycle duration.
    pub fn cycle_duration(&self) -> Duration {
        self.profile.duration()
    }
}

impl std::fmt::Display for ApplianceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}) {:.1}-{:.1} kWh/cycle, {}",
            self.name,
            self.category,
            self.energy_range_kwh.0,
            self.energy_range_kwh.1,
            match self.shiftability {
                Shiftability::Shiftable { max_delay } => format!("shiftable +{max_delay}"),
                Shiftability::NonShiftable => "non-shiftable".to_string(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfilePhase;

    fn spec() -> ApplianceSpec {
        ApplianceSpec {
            name: "Test Washer".into(),
            category: ApplianceCategory::WashingMachine,
            energy_range_kwh: (1.0, 1.4),
            profile: LoadProfile::new(vec![
                ProfilePhase::banded(20, 1.8, 2.2),
                ProfilePhase::banded(60, 0.3, 0.5),
                ProfilePhase::banded(10, 0.6, 1.0),
            ]),
            usage: UsageModel::uniform(UsageFrequency::PerWeek(3.0)),
            shiftability: Shiftability::Shiftable {
                max_delay: Duration::hours(12),
            },
        }
    }

    #[test]
    fn frequency_daily_rates() {
        assert_eq!(UsageFrequency::PerDay(2.0).mean_daily_rate(), Some(2.0));
        assert!((UsageFrequency::PerWeek(7.0).mean_daily_rate().unwrap() - 1.0).abs() < 1e-12);
        assert!((UsageFrequency::PerMonth(30.0).mean_daily_rate().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(UsageFrequency::Continuous.mean_daily_rate(), None);
    }

    #[test]
    fn shiftability_accessors() {
        let s = Shiftability::Shiftable {
            max_delay: Duration::hours(22),
        };
        assert!(s.is_shiftable());
        assert_eq!(s.max_delay(), Duration::hours(22));
        assert!(!Shiftability::NonShiftable.is_shiftable());
        assert_eq!(Shiftability::NonShiftable.max_delay(), Duration::ZERO);
    }

    #[test]
    fn usage_model_weekend_scaling() {
        let mut m = UsageModel::uniform(UsageFrequency::PerDay(1.0));
        m.weekend_multiplier = 2.0;
        assert_eq!(m.expected_rate(false), Some(1.0));
        assert_eq!(m.expected_rate(true), Some(2.0));
        let c = UsageModel::uniform(UsageFrequency::Continuous);
        assert_eq!(c.expected_rate(true), None);
    }

    #[test]
    fn profile_consistency_check() {
        let s = spec();
        assert!(s.profile_consistent(1e-9));
        let mut bad = s.clone();
        bad.energy_range_kwh = (0.5, 3.0);
        assert!(!bad.profile_consistent(0.1));
        assert!(bad.profile_consistent(2.0)); // generous tolerance passes
    }

    #[test]
    fn display_mentions_shiftability() {
        let shown = spec().to_string();
        assert!(shown.contains("shiftable +12h00m"), "{shown}");
        assert!(shown.contains("washing machine"), "{shown}");
        assert!(shown.contains("1.0-1.4"), "{shown}");
    }

    #[test]
    fn cycle_duration_delegates_to_profile() {
        assert_eq!(spec().cycle_duration(), Duration::minutes(90));
    }

    #[test]
    fn category_display_names() {
        assert_eq!(
            ApplianceCategory::ElectricVehicle.to_string(),
            "electric vehicle"
        );
        assert_eq!(ApplianceCategory::VacuumRobot.to_string(), "vacuum robot");
    }

    #[test]
    fn serde_round_trip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: ApplianceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
