//! # flextract-appliance
//!
//! Appliance model catalog — the paper's Table 1 made executable.
//!
//! The appliance-level extraction approaches (§4) "rely on the
//! specifications of the electricity consumption of all possible
//! appliances in fine-grained manner": per-appliance energy consumption
//! ranges and **energy profiles with min and max ranges for every time
//! stamp (granularity must be even smaller than 15 min)**. This crate
//! provides:
//!
//! * [`LoadProfile`] — a phase-wise min/max power envelope at 1-minute
//!   granularity, with realisation into energy series;
//! * [`ApplianceSpec`] — one catalog row: identity, per-cycle energy
//!   range, profile, usage model and shiftability;
//! * [`Catalog`] — a queryable collection, with [`Catalog::table1`]
//!   reproducing the paper's six rows exactly and
//!   [`Catalog::extended`] adding the non-flexible base-load appliances
//!   a realistic household needs.
//!
//! ```
//! use flextract_appliance::Catalog;
//!
//! let catalog = Catalog::table1();
//! assert_eq!(catalog.len(), 6);
//! let washer = catalog.find_by_name("Washing Machine from Manufacturer Y").unwrap();
//! assert_eq!(washer.energy_range_kwh, (1.2, 3.0));
//! assert!(washer.shiftability.is_shiftable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod profile;
mod spec;

pub use catalog::Catalog;
pub use profile::{LoadProfile, ProfilePhase};
pub use spec::{ApplianceCategory, ApplianceSpec, Shiftability, UsageFrequency, UsageModel};
