//! Extrinsic accuracy against simulated ground truth.
//!
//! The simulator records every shiftable appliance cycle it placed
//! ([`flextract_sim::Activation`]), so the *true flexible load* is a
//! known series. An extraction is scored by interval-level energy
//! overlap: of the energy the extractor called flexible, how much
//! really was (precision); of the truly flexible energy, how much was
//! captured (recall).

use flextract_series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Interval-level energy precision/recall of an extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthScore {
    /// Overlap energy ÷ extracted energy.
    pub precision: f64,
    /// Overlap energy ÷ true flexible energy.
    pub recall: f64,
    /// Total extracted energy (kWh).
    pub extracted_kwh: f64,
    /// Total true flexible energy (kWh).
    pub truth_kwh: f64,
    /// Energy counted as correct: `Σ min(extracted_i, truth_i)`.
    pub overlap_kwh: f64,
}

impl GroundTruthScore {
    /// Score `extracted` against the ground-truth `truth` series.
    ///
    /// Both must live on the same grid (resample first if needed);
    /// intervals present in only one series count as zero on the other
    /// side.
    pub fn score(extracted: &TimeSeries, truth: &TimeSeries) -> Self {
        let mut overlap = 0.0;
        for (t, e) in extracted.iter() {
            let tr = truth.value_at(t).unwrap_or(0.0);
            overlap += e.min(tr).max(0.0);
        }
        let extracted_kwh = extracted.total_energy();
        let truth_kwh = truth.total_energy();
        GroundTruthScore {
            precision: if extracted_kwh > 0.0 {
                overlap / extracted_kwh
            } else {
                0.0
            },
            recall: if truth_kwh > 0.0 {
                overlap / truth_kwh
            } else {
                0.0
            },
            extracted_kwh,
            truth_kwh,
            overlap_kwh: overlap,
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision;
        let r = self.recall;
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl std::fmt::Display for GroundTruthScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P {:.2} / R {:.2} / F1 {:.2} ({:.1} of {:.1} kWh)",
            self.precision,
            self.recall,
            self.f1(),
            self.overlap_kwh,
            self.truth_kwh
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_time::{Resolution, Timestamp};

    fn series(vals: Vec<f64>) -> TimeSeries {
        TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vals,
        )
        .unwrap()
    }

    #[test]
    fn perfect_extraction_scores_one() {
        let truth = series(vec![0.0, 1.0, 2.0, 0.0]);
        let s = GroundTruthScore::score(&truth, &truth);
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
        assert!((s.f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_extraction_scores_zero() {
        let truth = series(vec![0.0, 1.0, 0.0, 0.0]);
        let wrong = series(vec![1.0, 0.0, 0.0, 0.0]);
        let s = GroundTruthScore::score(&wrong, &truth);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let truth = series(vec![1.0, 1.0, 0.0, 0.0]);
        let got = series(vec![0.5, 1.0, 0.5, 0.0]);
        let s = GroundTruthScore::score(&got, &truth);
        // Overlap = 0.5 + 1.0 = 1.5; extracted = 2.0; truth = 2.0.
        assert!((s.overlap_kwh - 1.5).abs() < 1e-12);
        assert!((s.precision - 0.75).abs() < 1e-12);
        assert!((s.recall - 0.75).abs() < 1e-12);
    }

    #[test]
    fn grid_mismatch_counts_missing_as_zero() {
        let truth = series(vec![1.0; 4]);
        let shifted = TimeSeries::new(
            "2013-03-18 01:00".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            vec![1.0; 4],
        )
        .unwrap();
        let s = GroundTruthScore::score(&shifted, &truth);
        assert_eq!(s.overlap_kwh, 0.0);
    }

    #[test]
    fn empty_series_yield_zero_not_nan() {
        let empty = series(vec![]);
        let truth = series(vec![1.0]);
        let s = GroundTruthScore::score(&empty, &truth);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert!(!s.f1().is_nan());
    }

    #[test]
    fn display_is_compact() {
        let truth = series(vec![1.0, 1.0]);
        let s = GroundTruthScore::score(&truth, &truth);
        let shown = s.to_string();
        assert!(shown.contains("P 1.00"));
        assert!(shown.contains("F1 1.00"));
    }
}
