//! The canonical Figure-5 day.
//!
//! Figure 5 of the paper walks the peak-based approach through one
//! household-day: "consumption time series from one household during
//! one day" with a daily total of 39.02 kWh, eight candidate peaks
//! whose sizes it annotates, a 5 % flexible part giving the filter
//! threshold `39.02 × 0.05 = 1.951 kWh`, two surviving peaks (numbers
//! 6 and 7, sized 2.22 and 5.47 kWh) and selection probabilities of
//! 29 % and 71 %.
//!
//! The original trace is MIRABEL trial data we cannot redistribute, so
//! [`fig5_day`] *engineers* a 96-interval day with exactly those
//! properties: the same total, the same eight peak sizes in the same
//! intra-day order, and therefore the same filtering and selection
//! arithmetic. The evening peak tops out at 1.2 kWh/interval, matching
//! the figure's y-axis.

use flextract_series::TimeSeries;
use flextract_time::{Resolution, Timestamp};

/// The paper-annotated expectations for the Figure-5 day.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Expected {
    /// Daily total consumption (kWh).
    pub day_total_kwh: f64,
    /// The eight peak sizes in time order (kWh).
    pub peak_sizes_kwh: [f64; 8],
    /// The flexible share of the walk-through.
    pub flexible_share: f64,
    /// The filtering threshold: `share × total` (kWh).
    pub min_peak_energy_kwh: f64,
    /// 1-based numbers of the peaks surviving the filter.
    pub survivors: [usize; 2],
    /// Selection probabilities of the survivors, rounded to whole
    /// percent as the paper prints them.
    pub probabilities_pct: [u32; 2],
}

/// The constants as printed in the paper.
pub const FIG5_EXPECTED: Fig5Expected = Fig5Expected {
    day_total_kwh: 39.02,
    peak_sizes_kwh: [0.47, 1.5, 0.48, 0.48, 1.85, 2.22, 5.47, 0.48],
    flexible_share: 0.05,
    min_peak_energy_kwh: 1.951,
    survivors: [6, 7],
    probabilities_pct: [29, 71],
};

/// Interval indices occupied by each peak `(first_index, values)`.
const PEAK_LAYOUT: [(usize, &[f64]); 8] = [
    // Peak 1, ~02:00: a lone fridge+standby blip.
    (8, &[0.47]),
    // Peak 2, 06:30-07:15: the morning routine (1.5 kWh).
    (26, &[0.48, 0.54, 0.48]),
    // Peaks 3 and 4: mid-morning kettle-sized blips.
    (36, &[0.48]),
    (41, &[0.48]),
    // Peak 5, 12:00-13:00: lunch (1.85 kWh).
    (48, &[0.44, 0.48, 0.49, 0.44]),
    // Peak 6, 15:00-16:00: afternoon appliances (2.22 kWh).
    (60, &[0.50, 0.60, 0.62, 0.50]),
    // Peak 7, 18:15-19:45: the evening peak (5.47 kWh, max 1.2).
    (73, &[0.60, 0.90, 1.15, 1.20, 0.92, 0.70]),
    // Peak 8, 22:30: late-night blip.
    (90, &[0.48]),
];

/// Background level for the 75 non-peak intervals, chosen so the day
/// total is exactly 39.02 kWh: `(39.02 − 12.95) / 75`.
const BACKGROUND_KWH: f64 = 26.07 / 75.0;

/// Build the canonical Figure-5 day (2013-03-18, 96 × 15 min).
pub fn fig5_day() -> TimeSeries {
    let start: Timestamp = Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).expect("static date is valid");
    let mut values = vec![BACKGROUND_KWH; 96];
    for (first, peak_values) in PEAK_LAYOUT {
        for (k, &v) in peak_values.iter().enumerate() {
            values[first + k] = v;
        }
    }
    TimeSeries::new(start, Resolution::MIN_15, values).expect("midnight start is aligned to 15 min")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_series::peaks::{detect_peaks, filter_peaks, selection_probabilities};
    use flextract_series::PeakThreshold;

    #[test]
    fn day_total_is_39_02() {
        let day = fig5_day();
        assert_eq!(day.len(), 96);
        assert!(
            (day.total_energy() - 39.02).abs() < 1e-9,
            "{}",
            day.total_energy()
        );
    }

    #[test]
    fn background_stays_below_the_average_line() {
        let day = fig5_day();
        let mean = day.total_energy() / 96.0;
        // The paper draws the line "at around 0.46" (visually); the
        // arithmetic mean of a 39.02 kWh day is 0.4065 kWh/interval.
        assert!((mean - 0.4065).abs() < 1e-3, "{mean}");
        assert!(BACKGROUND_KWH < mean);
        // Every peak interval is strictly above the line.
        for (first, vals) in PEAK_LAYOUT {
            for (k, &v) in vals.iter().enumerate() {
                assert!(
                    v > mean,
                    "peak interval {} = {v} not above {mean}",
                    first + k
                );
            }
        }
    }

    #[test]
    fn detects_exactly_the_eight_annotated_peaks() {
        let day = fig5_day();
        let (thr, peaks) = detect_peaks(&day, PeakThreshold::Mean).unwrap();
        assert!((thr - day.total_energy() / 96.0).abs() < 1e-12);
        assert_eq!(peaks.len(), 8, "{peaks:?}");
        for (peak, expect) in peaks.iter().zip(FIG5_EXPECTED.peak_sizes_kwh) {
            assert!(
                (peak.energy_kwh - expect).abs() < 1e-9,
                "size {} vs {expect}",
                peak.energy_kwh
            );
        }
    }

    #[test]
    fn filtering_keeps_peaks_6_and_7() {
        let day = fig5_day();
        let (_, peaks) = detect_peaks(&day, PeakThreshold::Mean).unwrap();
        let min_energy = FIG5_EXPECTED.flexible_share * day.total_energy();
        assert!((min_energy - 1.951).abs() < 1e-9, "{min_energy}");
        let survivors = filter_peaks(peaks, min_energy);
        assert_eq!(survivors.len(), 2);
        assert!((survivors[0].energy_kwh - 2.22).abs() < 1e-9);
        assert!((survivors[1].energy_kwh - 5.47).abs() < 1e-9);
    }

    #[test]
    fn probabilities_round_to_29_and_71_percent() {
        let day = fig5_day();
        let (_, peaks) = detect_peaks(&day, PeakThreshold::Mean).unwrap();
        let survivors = filter_peaks(peaks, 1.951);
        let probs = selection_probabilities(&survivors);
        assert_eq!(
            (probs[0] * 100.0).round() as u32,
            FIG5_EXPECTED.probabilities_pct[0]
        );
        assert_eq!(
            (probs[1] * 100.0).round() as u32,
            FIG5_EXPECTED.probabilities_pct[1]
        );
    }

    #[test]
    fn evening_peak_reaches_the_figure_maximum() {
        let day = fig5_day();
        let (idx, max) = day.argmax().unwrap();
        assert!((max - 1.2).abs() < 1e-12);
        // 18:15 + 3 intervals = 19:00.
        assert_eq!(day.timestamp_of(idx).to_string(), "2013-03-18 19:00");
    }
}
