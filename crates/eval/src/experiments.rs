//! Experiment runners E5–E9 (see `DESIGN.md` for the index).
//!
//! Each runner takes an [`ExperimentParams`] so integration tests can
//! run it small and the `flextract-bench` binaries can run it at paper
//! scale, and returns a result struct with a `render()` text table.

use crate::accuracy::GroundTruthScore;
use crate::realism::RealismReport;
use flextract_agg::{aggregate_offers, schedule_offers, AggregationConfig, ScheduleConfig};
use flextract_appliance::Catalog;
use flextract_core::{
    BasicExtractor, ExtractionConfig, ExtractionInput, ExtractionOutput, FlexibilityExtractor,
    FrequencyBasedExtractor, MultiTariffExtractor, PeakExtractor, RandomExtractor,
    ScheduleBasedExtractor,
};
use flextract_disagg::{detect_activations, MatchConfig};
use flextract_flexoffer::FlexOffer;
use flextract_series::{resample, TimeSeries};
use flextract_sim::{
    simulate_fleet, simulate_tariff_pair, simulate_wind_production, FleetConfig,
    HouseholdArchetype, HouseholdConfig, SimulatedHousehold, TariffResponse, WindFarmConfig,
};
use flextract_time::{Duration, Resolution, TimeRange, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Common sizing knobs for every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Number of simulated households.
    pub households: usize,
    /// Number of simulated days.
    pub days: i64,
    /// Base RNG seed (simulation and extraction derive from it).
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            households: 10,
            days: 14,
            seed: 2013,
        }
    }
}

impl ExperimentParams {
    /// The simulated horizon, starting Monday 2013-03-18 (the EDBT'13
    /// week).
    pub fn horizon(&self) -> TimeRange {
        let start: Timestamp = Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).expect("static date");
        TimeRange::starting_at(start, Duration::days(self.days)).expect("days >= 0")
    }

    fn fleet(&self) -> FleetConfig {
        FleetConfig {
            households: self.households,
            base_seed: self.seed,
            threads: 4,
            ..FleetConfig::default()
        }
    }
}

// ---------------------------------------------------------------- E5

/// One row of the share sweep: the configured share against what each
/// household-level approach actually extracted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareSweepRow {
    /// Configured flexible share.
    pub share: f64,
    /// Achieved share per approach: (random, basic, peak).
    pub achieved: (f64, f64, f64),
    /// Offers per household-day per approach.
    pub offers_per_day: (f64, f64, f64),
}

/// E5: sweep the flexible-share parameter over the MIRACLE 0.1–6.5 %
/// range (§1 ref \[7\]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareSweep {
    /// Parameters used.
    pub params: ExperimentParams,
    /// One row per configured share.
    pub rows: Vec<ShareSweepRow>,
}

/// Run E5.
pub fn share_sweep(shares: &[f64], params: ExperimentParams) -> ShareSweep {
    let fleet = simulate_fleet(&params.fleet(), params.horizon());
    let mut rows = Vec::with_capacity(shares.len());
    for &share in shares {
        let cfg = ExtractionConfig::with_share(share);
        let extractors: [&dyn FlexibilityExtractor; 3] = [
            &RandomExtractor::new(cfg.clone()),
            &BasicExtractor::new(cfg.clone()),
            &PeakExtractor::new(cfg.clone()),
        ];
        let mut achieved = [0.0; 3];
        let mut offers = [0.0; 3];
        let mut total_energy = 0.0;
        for h in &fleet.households {
            let market = h.series_at(Resolution::MIN_15);
            total_energy += market.total_energy();
            for (k, ex) in extractors.iter().enumerate() {
                let out = ex
                    .extract(
                        &ExtractionInput::household(&market),
                        &mut StdRng::seed_from_u64(params.seed ^ (k as u64) << 32 ^ h.config.id),
                    )
                    .expect("household extraction cannot fail on simulated data");
                achieved[k] += out.extracted_energy();
                offers[k] += out.flex_offers.len() as f64;
            }
        }
        let hd = (params.households as f64 * params.days as f64).max(1.0);
        rows.push(ShareSweepRow {
            share,
            achieved: (
                achieved[0] / total_energy,
                achieved[1] / total_energy,
                achieved[2] / total_energy,
            ),
            offers_per_day: (offers[0] / hd, offers[1] / hd, offers[2] / hd),
        });
    }
    ShareSweep { params, rows }
}

impl ShareSweep {
    /// Aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E5: flexible-share sweep (achieved share % / offers per household-day)\n",
        );
        out.push_str(&format!(
            "{:>8} | {:>16} | {:>16} | {:>16}\n",
            "share%", "random", "basic", "peak"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>8.2} | {:>8.2} {:>7.2} | {:>8.2} {:>7.2} | {:>8.2} {:>7.2}\n",
                r.share * 100.0,
                r.achieved.0 * 100.0,
                r.offers_per_day.0,
                r.achieved.1 * 100.0,
                r.offers_per_day.1,
                r.achieved.2 * 100.0,
                r.offers_per_day.2,
            ));
        }
        out
    }
}

// ---------------------------------------------------------------- E6

/// One approach's evaluation in the comparison experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproachEvaluation {
    /// Aggregated realism metrics (averaged over households).
    pub realism: RealismReport,
    /// Ground-truth energy precision/recall (pooled over households).
    pub ground_truth: GroundTruthScore,
}

/// E6: all six approaches side by side on the same fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproachComparison {
    /// Parameters used.
    pub params: ExperimentParams,
    /// One evaluation per approach, in taxonomy order.
    pub evaluations: Vec<ApproachEvaluation>,
}

/// Run one extractor over every household and pool the results.
///
/// The closure returns the extraction output, the series it consumed
/// (for realism metrics), and the matching ground-truth flexible series
/// — multi-tariff runs its own tariff-shifted simulation, so its truth
/// differs from the fleet household's.
fn run_approach(
    name: &'static str,
    households: &[SimulatedHousehold],
    params: &ExperimentParams,
    mut run: impl FnMut(
        &SimulatedHousehold,
        &mut StdRng,
    ) -> Option<(ExtractionOutput, TimeSeries, TimeSeries)>,
) -> ApproachEvaluation {
    let mut pooled_extracted: Option<TimeSeries> = None;
    let mut pooled_truth: Option<TimeSeries> = None;
    let mut reports: Vec<RealismReport> = Vec::new();
    for h in households {
        let mut rng = StdRng::seed_from_u64(params.seed ^ h.config.id.wrapping_mul(7919));
        let Some((out, consumed, truth)) = run(h, &mut rng) else {
            continue;
        };
        reports.push(RealismReport::measure(&out, &consumed));
        pooled_extracted = Some(match pooled_extracted {
            None => out.extracted_series.clone(),
            Some(acc) => acc.add(&out.extracted_series).expect("same fleet grid"),
        });
        pooled_truth = Some(match pooled_truth {
            None => truth,
            Some(acc) => acc.add(&truth).expect("same fleet grid"),
        });
    }
    let ground_truth = match (&pooled_extracted, &pooled_truth) {
        (Some(e), Some(t)) => GroundTruthScore::score(e, t),
        _ => GroundTruthScore {
            precision: 0.0,
            recall: 0.0,
            extracted_kwh: 0.0,
            truth_kwh: 0.0,
            overlap_kwh: 0.0,
        },
    };
    // Average the per-household realism reports field-wise.
    let n = reports.len().max(1) as f64;
    let avg_opt = |f: fn(&RealismReport) -> Option<f64>| {
        let vals: Vec<f64> = reports.iter().filter_map(f).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    let realism = RealismReport {
        approach: name.to_string(),
        offer_count: reports.iter().map(|r| r.offer_count).sum(),
        achieved_share: reports.iter().map(|r| r.achieved_share).sum::<f64>() / n,
        dispersion_entropy: avg_opt(|r| r.dispersion_entropy),
        peak_coverage: avg_opt(|r| r.peak_coverage),
        extracted_sparseness: reports.iter().map(|r| r.extracted_sparseness).sum::<f64>() / n,
        load_correlation: avg_opt(|r| r.load_correlation),
        residual_autocorr_delta: avg_opt(|r| r.residual_autocorr_delta),
        mean_time_flexibility_h: reports
            .iter()
            .map(|r| r.mean_time_flexibility_h)
            .sum::<f64>()
            / n,
        mean_offer_energy_kwh: reports.iter().map(|r| r.mean_offer_energy_kwh).sum::<f64>() / n,
    };
    ApproachEvaluation {
        realism,
        ground_truth,
    }
}

/// Run E6.
pub fn approach_comparison(params: ExperimentParams) -> ApproachComparison {
    let fleet = simulate_fleet(&params.fleet(), params.horizon());
    let catalog = Catalog::extended();
    let cfg = ExtractionConfig::default();
    let mut evaluations = Vec::with_capacity(6);

    // Household-level approaches on the 15-min market series.
    let random = RandomExtractor::new(cfg.clone());
    evaluations.push(run_approach(
        "random",
        &fleet.households,
        &params,
        |h, rng| {
            let market = h.series_at(Resolution::MIN_15);
            let out = random
                .extract(&ExtractionInput::household(&market), rng)
                .ok()?;
            let truth = h.flexible_series_at(Resolution::MIN_15);
            Some((out, market, truth))
        },
    ));
    let basic = BasicExtractor::new(cfg.clone());
    evaluations.push(run_approach(
        "basic",
        &fleet.households,
        &params,
        |h, rng| {
            let market = h.series_at(Resolution::MIN_15);
            let out = basic
                .extract(&ExtractionInput::household(&market), rng)
                .ok()?;
            let truth = h.flexible_series_at(Resolution::MIN_15);
            Some((out, market, truth))
        },
    ));
    let peak = PeakExtractor::new(cfg.clone());
    evaluations.push(run_approach(
        "peak",
        &fleet.households,
        &params,
        |h, rng| {
            let market = h.series_at(Resolution::MIN_15);
            let out = peak
                .extract(&ExtractionInput::household(&market), rng)
                .ok()?;
            let truth = h.flexible_series_at(Resolution::MIN_15);
            Some((out, market, truth))
        },
    ));

    // Multi-tariff: the same consumer simulated under a flat tariff one
    // month earlier as the reference, tariff response in the observed
    // month. Truth comes from the tariff-shifted run itself.
    let mt = MultiTariffExtractor::new(cfg.clone());
    let ref_horizon = TimeRange::starting_at(
        params.horizon().start() - Duration::days(params.days),
        Duration::days(params.days),
    )
    .expect("positive horizon");
    evaluations.push(run_approach(
        "multi-tariff",
        &fleet.households,
        &params,
        |h, rng| {
            let (flat, multi) = simulate_tariff_pair(
                &h.config,
                ref_horizon,
                params.horizon(),
                TariffResponse::overnight(0.85),
            );
            let reference = flat.series_at(Resolution::MIN_15);
            let observed = multi.series_at(Resolution::MIN_15);
            let out = mt
                .extract(
                    &ExtractionInput::household(&observed).with_reference(&reference),
                    rng,
                )
                .ok()?;
            let truth = multi.flexible_series_at(Resolution::MIN_15);
            Some((out, observed, truth))
        },
    ));

    // Appliance-level approaches with the 1-min series and the catalog.
    let freq = FrequencyBasedExtractor::new(cfg.clone());
    evaluations.push(run_approach(
        "frequency",
        &fleet.households,
        &params,
        |h, rng| {
            let market = h.series_at(Resolution::MIN_15);
            let out = freq
                .extract(
                    &ExtractionInput::household(&market)
                        .with_fine_series(&h.series)
                        .with_catalog(&catalog),
                    rng,
                )
                .ok()?;
            let truth = h.flexible_series_at(Resolution::MIN_15);
            Some((out, market, truth))
        },
    ));
    let sched = ScheduleBasedExtractor::new(cfg);
    evaluations.push(run_approach(
        "schedule",
        &fleet.households,
        &params,
        |h, rng| {
            let market = h.series_at(Resolution::MIN_15);
            let out = sched
                .extract(
                    &ExtractionInput::household(&market)
                        .with_fine_series(&h.series)
                        .with_catalog(&catalog),
                    rng,
                )
                .ok()?;
            let truth = h.flexible_series_at(Resolution::MIN_15);
            Some((out, market, truth))
        },
    ));

    ApproachComparison {
        params,
        evaluations,
    }
}

impl ApproachComparison {
    /// Aligned text table: realism metrics + ground-truth P/R/F1.
    pub fn render(&self) -> String {
        let mut out = String::from("E6: approach comparison\n");
        out.push_str(&RealismReport::header());
        for e in &self.evaluations {
            out.push_str(&e.realism.render_row());
        }
        out.push_str("\nground truth (pooled energy overlap):\n");
        for e in &self.evaluations {
            out.push_str(&format!("{:<12} {}\n", e.realism.approach, e.ground_truth));
        }
        out
    }
}

// ---------------------------------------------------------------- E7

/// One resolution's disaggregation quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularityRow {
    /// Series resolution used for detection.
    pub resolution_min: i64,
    /// Detected activations (all appliances).
    pub detections: usize,
    /// Ground-truth shiftable activations.
    pub truths: usize,
    /// Truth activations matched by a same-appliance detection within
    /// ±15 minutes.
    pub matched: usize,
    /// Activation-level recall.
    pub recall: f64,
    /// Activation-level precision (detections that match some truth).
    pub precision: f64,
}

/// E7: the paper's closing claim quantified — appliance-level
/// extraction degrades as granularity coarsens to 15 min.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularityStudy {
    /// Parameters used.
    pub params: ExperimentParams,
    /// One row per resolution (1, 5, 15 min).
    pub rows: Vec<GranularityRow>,
}

/// Run E7.
pub fn granularity(params: ExperimentParams) -> GranularityStudy {
    let fleet = simulate_fleet(&params.fleet(), params.horizon());
    let catalog = Catalog::extended();
    let specs = catalog.shiftable();
    let resolutions = [Resolution::MIN_1, Resolution::MIN_5, Resolution::MIN_15];
    let mut rows = Vec::with_capacity(resolutions.len());
    for res in resolutions {
        let mut detections = 0usize;
        let mut truths = 0usize;
        let mut matched = 0usize;
        let mut matched_detections = 0usize;
        for h in &fleet.households {
            let series =
                resample::to_resolution(&h.series, res).expect("day-aligned simulation grids");
            let (dets, _) = detect_activations(&series, &specs, &MatchConfig::default());
            let truth: Vec<_> = h.activations.iter().filter(|a| a.shiftable).collect();
            detections += dets.len();
            truths += truth.len();
            matched += truth
                .iter()
                .filter(|t| {
                    dets.iter().any(|d| {
                        d.appliance == t.appliance && (d.start - t.start).as_minutes().abs() <= 15
                    })
                })
                .count();
            matched_detections += dets
                .iter()
                .filter(|d| {
                    truth.iter().any(|t| {
                        d.appliance == t.appliance && (d.start - t.start).as_minutes().abs() <= 15
                    })
                })
                .count();
        }
        rows.push(GranularityRow {
            resolution_min: res.minutes(),
            detections,
            truths,
            matched,
            recall: if truths > 0 {
                matched as f64 / truths as f64
            } else {
                0.0
            },
            precision: if detections > 0 {
                matched_detections as f64 / detections as f64
            } else {
                0.0
            },
        });
    }
    GranularityStudy { params, rows }
}

impl GranularityStudy {
    /// Aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("E7: disaggregation accuracy vs granularity\n");
        out.push_str(&format!(
            "{:>10} {:>10} {:>8} {:>8} {:>8} {:>10}\n",
            "resolution", "detections", "truths", "matched", "recall", "precision"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>9}m {:>10} {:>8} {:>8} {:>8.2} {:>10.2}\n",
                r.resolution_min, r.detections, r.truths, r.matched, r.recall, r.precision
            ));
        }
        out
    }
}

// ---------------------------------------------------------------- E8

/// One approach's aggregation + scheduling outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationRow {
    /// Which extraction fed the pipeline.
    pub approach: String,
    /// Micro offers extracted.
    pub offers: usize,
    /// Macro offers after aggregation.
    pub aggregates: usize,
    /// Mean members per aggregate.
    pub compression: f64,
    /// Total time flexibility lost to aggregation (hours).
    pub flexibility_loss_h: f64,
    /// Squared-imbalance improvement from scheduling (fraction).
    pub imbalance_improvement: f64,
    /// RES utilisation after scheduling.
    pub res_utilisation: f64,
}

/// E8: the §6 claim — aggregates of even coarse peak-based offers
/// schedule realistically against wind production.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationStudy {
    /// Parameters used.
    pub params: ExperimentParams,
    /// Random-baseline and peak-based rows.
    pub rows: Vec<AggregationRow>,
}

/// Run E8.
pub fn aggregation_study(params: ExperimentParams) -> AggregationStudy {
    let fleet = simulate_fleet(&params.fleet(), params.horizon());
    // Wind farm sized at roughly a third of the fleet's mean load.
    let mean_kw = fleet.total.total_energy() / (params.days as f64 * 24.0);
    let farm = WindFarmConfig {
        capacity_kw: mean_kw,
        seed: params.seed ^ 0xCAFE,
        ..WindFarmConfig::default()
    };
    let production = simulate_wind_production(&farm, params.horizon(), Resolution::MIN_15);
    let cfg = ExtractionConfig::default();
    let approaches: Vec<(&'static str, Box<dyn FlexibilityExtractor>)> = vec![
        ("random", Box::new(RandomExtractor::new(cfg.clone()))),
        ("peak", Box::new(PeakExtractor::new(cfg))),
    ];
    let mut rows = Vec::with_capacity(approaches.len());
    for (name, ex) in approaches {
        let mut offers: Vec<FlexOffer> = Vec::new();
        let mut residual: Option<TimeSeries> = None;
        for h in &fleet.households {
            let market = h.series_at(Resolution::MIN_15);
            let out = ex
                .extract(
                    &ExtractionInput::household(&market),
                    &mut StdRng::seed_from_u64(params.seed ^ h.config.id),
                )
                .expect("household extraction cannot fail on simulated data");
            // Re-key ids so they stay unique across the fleet.
            offers.extend(out.flex_offers);
            residual = Some(match residual {
                None => out.modified_series,
                Some(acc) => acc.add(&out.modified_series).expect("same fleet grid"),
            });
        }
        let residual = residual.expect("fleets are non-empty");
        let aggregates = aggregate_offers(&offers, &AggregationConfig::default())
            .expect("offers are non-empty for positive shares");
        let agg_offers: Vec<FlexOffer> = aggregates.iter().map(|a| a.offer.clone()).collect();
        let schedule = schedule_offers(
            &agg_offers,
            &residual,
            &production,
            &ScheduleConfig::default(),
            &mut StdRng::seed_from_u64(params.seed ^ 0xBEEF),
        )
        .expect("scheduling aggregates cannot fail");
        rows.push(AggregationRow {
            approach: name.to_string(),
            offers: offers.len(),
            aggregates: aggregates.len(),
            compression: offers.len() as f64 / aggregates.len().max(1) as f64,
            flexibility_loss_h: aggregates
                .iter()
                .map(|a| a.flexibility_loss().as_hours_f64())
                .sum(),
            imbalance_improvement: schedule.improvement(),
            res_utilisation: schedule.after.res_utilisation,
        });
    }
    AggregationStudy { params, rows }
}

impl AggregationStudy {
    /// Aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("E8: aggregation + RES scheduling\n");
        out.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>12} {:>12} {:>12} {:>8}\n",
            "approach",
            "offers",
            "aggregates",
            "compression",
            "flex-loss(h)",
            "improvement",
            "RES-use"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>8} {:>10} {:>12.1} {:>12.1} {:>11.1}% {:>8.2}\n",
                r.approach,
                r.offers,
                r.aggregates,
                r.compression,
                r.flexibility_loss_h,
                r.imbalance_improvement * 100.0,
                r.res_utilisation,
            ));
        }
        out
    }
}

// ---------------------------------------------------------------- E9

/// One tariff-sensitivity level's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TariffRow {
    /// Consumer tariff sensitivity simulated.
    pub sensitivity: f64,
    /// True tariff-shifted energy (kWh, fleet total).
    pub shifted_truth_kwh: f64,
    /// Energy the extractor recovered (kWh).
    pub extracted_kwh: f64,
    /// Energy precision against the shifted-load truth.
    pub precision: f64,
    /// Energy recall against the shifted-load truth.
    pub recall: f64,
    /// Offers extracted.
    pub offers: usize,
}

/// E9: the multi-tariff approach the paper could not evaluate, swept
/// over consumer sensitivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TariffStudy {
    /// Parameters used.
    pub params: ExperimentParams,
    /// One row per sensitivity level.
    pub rows: Vec<TariffRow>,
}

/// Run E9.
pub fn tariff_study(sensitivities: &[f64], params: ExperimentParams) -> TariffStudy {
    let catalog = Catalog::extended();
    let cfg = ExtractionConfig::default();
    let mt = MultiTariffExtractor::new(cfg);
    let ref_horizon = TimeRange::starting_at(
        params.horizon().start() - Duration::days(params.days),
        Duration::days(params.days),
    )
    .expect("positive horizon");
    let mut rows = Vec::with_capacity(sensitivities.len());
    for &sensitivity in sensitivities {
        let mut truth_total: Option<TimeSeries> = None;
        let mut extracted_total: Option<TimeSeries> = None;
        let mut offers = 0usize;
        for i in 0..params.households {
            let cfg_h = HouseholdConfig::new(i as u64, HouseholdArchetype::FamilyWithChildren)
                .with_seed(params.seed + i as u64);
            let (flat, multi) = simulate_tariff_pair(
                &cfg_h,
                ref_horizon,
                params.horizon(),
                TariffResponse::overnight(sensitivity),
            );
            // Truth: the energy of the *shifted* activations only,
            // realised from the catalog profiles at their recorded
            // intensity and landing position.
            let mut truth = multi.series.scale(0.0);
            for a in multi.activations.iter().filter(|a| a.was_shifted()) {
                if let Some(spec) = catalog.find_by_name(&a.appliance) {
                    let cycle = spec.profile.to_energy_series(a.start, a.intensity);
                    truth
                        .add_overlapping(&cycle)
                        .expect("simulation grids share 1-min resolution");
                }
            }
            let truth15 =
                resample::to_resolution(&truth, Resolution::MIN_15).expect("day-aligned grids");
            let reference = flat.series_at(Resolution::MIN_15);
            let observed = multi.series_at(Resolution::MIN_15);
            let out = mt
                .extract(
                    &ExtractionInput::household(&observed).with_reference(&reference),
                    &mut StdRng::seed_from_u64(params.seed ^ (i as u64)),
                )
                .expect("multi-tariff extraction with reference cannot fail");
            offers += out.flex_offers.len();
            truth_total = Some(match truth_total {
                None => truth15,
                Some(acc) => acc.add(&truth15).expect("same grid"),
            });
            extracted_total = Some(match extracted_total {
                None => out.extracted_series,
                Some(acc) => acc.add(&out.extracted_series).expect("same grid"),
            });
        }
        let truth = truth_total.expect("households > 0");
        let extracted = extracted_total.expect("households > 0");
        let score = GroundTruthScore::score(&extracted, &truth);
        rows.push(TariffRow {
            sensitivity,
            shifted_truth_kwh: truth.total_energy(),
            extracted_kwh: extracted.total_energy(),
            precision: score.precision,
            recall: score.recall,
            offers,
        });
    }
    TariffStudy { params, rows }
}

impl TariffStudy {
    /// Aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("E9: multi-tariff extraction vs consumer sensitivity\n");
        out.push_str(&format!(
            "{:>11} {:>12} {:>12} {:>10} {:>8} {:>8}\n",
            "sensitivity", "truth(kWh)", "extr.(kWh)", "precision", "recall", "offers"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>11.2} {:>12.1} {:>12.1} {:>10.2} {:>8.2} {:>8}\n",
                r.sensitivity,
                r.shifted_truth_kwh,
                r.extracted_kwh,
                r.precision,
                r.recall,
                r.offers
            ));
        }
        out
    }
}

// ---------------------------------------------------------------- E10

/// One peak-threshold variant's outcome (the DESIGN.md ablation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAblationRow {
    /// Threshold variant name.
    pub threshold: String,
    /// Offers extracted across the fleet.
    pub offers: usize,
    /// Days on which no peak survived filtering.
    pub empty_days: usize,
    /// Achieved share of total energy.
    pub achieved_share: f64,
    /// Peak-hour coverage of the extracted energy.
    pub peak_coverage: f64,
    /// Ground-truth F1 against the true flexible load.
    pub f1: f64,
}

/// E10: how sensitive is the peak-based approach to its peak
/// *definition* (mean vs median vs quantile line)?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAblation {
    /// Parameters used.
    pub params: ExperimentParams,
    /// One row per threshold variant.
    pub rows: Vec<ThresholdAblationRow>,
}

/// Run E10.
pub fn threshold_ablation(params: ExperimentParams) -> ThresholdAblation {
    use flextract_series::PeakThreshold;
    let fleet = simulate_fleet(&params.fleet(), params.horizon());
    let cfg = ExtractionConfig::default();
    let variants: Vec<(String, PeakThreshold)> = vec![
        ("mean (paper)".into(), PeakThreshold::Mean),
        ("median".into(), PeakThreshold::Median),
        ("q60".into(), PeakThreshold::Quantile(0.6)),
        ("q80".into(), PeakThreshold::Quantile(0.8)),
    ];
    let mut rows = Vec::with_capacity(variants.len());
    for (name, threshold) in variants {
        let ex = PeakExtractor::with_threshold(cfg.clone(), threshold);
        let eval = run_approach("peak", &fleet.households, &params, |h, rng| {
            let market = h.series_at(Resolution::MIN_15);
            let out = ex.extract(&ExtractionInput::household(&market), rng).ok()?;
            let truth = h.flexible_series_at(Resolution::MIN_15);
            Some((out, market, truth))
        });
        // Count empty days via a second deterministic pass.
        let mut empty_days = 0usize;
        for h in &fleet.households {
            let market = h.series_at(Resolution::MIN_15);
            let mut rng = StdRng::seed_from_u64(params.seed ^ h.config.id.wrapping_mul(7919));
            if let Ok(out) = ex.extract(&ExtractionInput::household(&market), &mut rng) {
                empty_days += out
                    .diagnostics
                    .peak_reports
                    .iter()
                    .filter(|r| r.selected.is_none())
                    .count();
            }
        }
        rows.push(ThresholdAblationRow {
            threshold: name,
            offers: eval.realism.offer_count,
            empty_days,
            achieved_share: eval.realism.achieved_share,
            peak_coverage: eval.realism.peak_coverage.unwrap_or(0.0),
            f1: eval.ground_truth.f1(),
        });
    }
    ThresholdAblation { params, rows }
}

impl ThresholdAblation {
    /// Aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("E10: peak-threshold ablation (peak-based approach)\n");
        out.push_str(&format!(
            "{:<14} {:>7} {:>11} {:>8} {:>9} {:>7}\n",
            "threshold", "offers", "empty-days", "share%", "peak-cov", "F1"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>7} {:>11} {:>8.2} {:>9.3} {:>7.3}\n",
                r.threshold,
                r.offers,
                r.empty_days,
                r.achieved_share * 100.0,
                r.peak_coverage,
                r.f1
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentParams {
        ExperimentParams {
            households: 3,
            days: 4,
            seed: 77,
        }
    }

    #[test]
    fn share_sweep_is_monotone_in_share() {
        let sweep = share_sweep(&[0.01, 0.05], small());
        assert_eq!(sweep.rows.len(), 2);
        // Basic achieves its configured share closely and monotonically.
        assert!(sweep.rows[1].achieved.1 > sweep.rows[0].achieved.1);
        assert!((sweep.rows[0].achieved.1 - 0.01).abs() < 0.003);
        assert!((sweep.rows[1].achieved.1 - 0.05).abs() < 0.01);
        let text = sweep.render();
        assert!(text.contains("E5"));
        assert!(text.contains("peak"));
    }

    #[test]
    fn approach_comparison_produces_all_six() {
        let cmp = approach_comparison(small());
        assert_eq!(cmp.evaluations.len(), 6);
        let names: Vec<&str> = cmp
            .evaluations
            .iter()
            .map(|e| e.realism.approach.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "random",
                "basic",
                "peak",
                "multi-tariff",
                "frequency",
                "schedule"
            ]
        );
        // The appliance-level approaches must beat the random baseline
        // on ground-truth precision (the paper's central claim).
        let by_name = |n: &str| {
            cmp.evaluations
                .iter()
                .find(|e| e.realism.approach == n)
                .unwrap()
        };
        let random_p = by_name("random").ground_truth.precision;
        let freq_p = by_name("frequency").ground_truth.precision;
        assert!(
            freq_p > random_p,
            "frequency precision {freq_p} should beat random {random_p}"
        );
        let text = cmp.render();
        assert!(text.contains("ground truth"));
    }

    #[test]
    fn granularity_degrades_toward_15min() {
        // Recall needs a couple of weeks of routine to stabilise; at
        // very small scales the ordering is noisy.
        let study = granularity(ExperimentParams {
            households: 6,
            days: 14,
            seed: 2013,
        });
        assert_eq!(study.rows.len(), 3);
        assert_eq!(study.rows[0].resolution_min, 1);
        assert_eq!(study.rows[2].resolution_min, 15);
        assert!(
            study.rows[0].recall > study.rows[2].recall,
            "1-min recall {} vs 15-min {}",
            study.rows[0].recall,
            study.rows[2].recall
        );
        assert!(study.render().contains("E7"));
    }

    #[test]
    fn aggregation_study_compresses_and_improves() {
        let study = aggregation_study(small());
        assert_eq!(study.rows.len(), 2);
        for row in &study.rows {
            assert!(row.aggregates <= row.offers);
            assert!(row.compression >= 1.0);
            assert!(
                row.imbalance_improvement >= -0.05,
                "{}",
                row.imbalance_improvement
            );
        }
        assert!(study.render().contains("E8"));
    }

    #[test]
    fn threshold_ablation_produces_all_variants() {
        let ab = threshold_ablation(small());
        assert_eq!(ab.rows.len(), 4);
        assert_eq!(ab.rows[0].threshold, "mean (paper)");
        for r in &ab.rows {
            assert!(r.achieved_share >= 0.0 && r.achieved_share <= 0.06);
            assert!((0.0..=1.0).contains(&r.peak_coverage));
            assert!((0.0..=1.0).contains(&r.f1));
        }
        // A higher quantile line defines fewer/taller peaks; the q80
        // variant must concentrate extraction at least as much as the
        // median variant.
        let med = ab.rows.iter().find(|r| r.threshold == "median").unwrap();
        let q80 = ab.rows.iter().find(|r| r.threshold == "q80").unwrap();
        assert!(
            q80.peak_coverage >= med.peak_coverage - 0.05,
            "q80 {} vs median {}",
            q80.peak_coverage,
            med.peak_coverage
        );
        assert!(ab.render().contains("E10"));
    }

    #[test]
    fn tariff_study_recall_grows_with_sensitivity() {
        let study = tariff_study(&[0.0, 0.9], small());
        assert_eq!(study.rows.len(), 2);
        // Zero sensitivity → no shifted truth.
        assert!(study.rows[0].shifted_truth_kwh < 1e-9);
        // High sensitivity → real shifted energy, some of it recovered.
        assert!(study.rows[1].shifted_truth_kwh > 0.0);
        assert!(
            study.rows[1].recall > 0.0,
            "recall {}",
            study.rows[1].recall
        );
        assert!(study.render().contains("E9"));
    }
}
