//! Measured-vs-ground-truth extraction fidelity.
//!
//! When a dataset was exported from the simulator it carries the
//! undegraded ground-truth series alongside the degraded measured one,
//! so the pipeline can run the *same extractor* on both and compare —
//! turning the paper's deferred caveat ("the granularity of the
//! available time series is not sufficient (only 15 min)", §4) into a
//! measured, scenario-level number: how much extractable flexibility is
//! lost to coarse metering, gaps, noise, and cleaning error.

use serde::{Deserialize, Serialize};

/// The delta between extraction on measured data and extraction on the
/// ground-truth series it was degraded from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Energy extracted from the measured (degraded, cleaned) series
    /// (kWh), summed per consumer in the same order as the truth side
    /// so an identity degradation compares to a delta of exactly zero.
    /// May differ from a report's fleet-total `extracted_kwh` in the
    /// last ulp (that total associates its additions differently).
    pub measured_extracted_kwh: f64,
    /// Offers extracted from the measured series.
    pub measured_offers: usize,
    /// Energy extracted from the undegraded ground-truth series (kWh).
    pub truth_extracted_kwh: f64,
    /// Offers extracted from the ground-truth series.
    pub truth_offers: usize,
    /// `measured − truth` extracted energy (kWh): negative means
    /// degradation lost flexibility, positive means noise or fill
    /// error manufactured it.
    pub extracted_kwh_delta: f64,
    /// `|delta| / truth` (0 when both sides extracted nothing).
    pub extracted_kwh_rel_error: f64,
    /// `measured − truth` offer count.
    pub offer_delta: i64,
}

impl FidelityReport {
    /// Build the report from the two extraction tallies.
    pub fn compare(
        measured_extracted_kwh: f64,
        measured_offers: usize,
        truth_extracted_kwh: f64,
        truth_offers: usize,
    ) -> Self {
        let delta = measured_extracted_kwh - truth_extracted_kwh;
        // A truth side that extracted nothing while the measured side
        // found something is reported as a relative error of 1 per kWh
        // found — a finite, monotone stand-in for "infinitely wrong"
        // that keeps the report serialisable.
        let rel = if truth_extracted_kwh > 0.0 {
            delta.abs() / truth_extracted_kwh
        } else {
            measured_extracted_kwh
        };
        FidelityReport {
            measured_extracted_kwh,
            measured_offers,
            truth_extracted_kwh,
            truth_offers,
            extracted_kwh_delta: delta,
            extracted_kwh_rel_error: rel,
            offer_delta: measured_offers as i64 - truth_offers as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_computes_signed_deltas() {
        let f = FidelityReport::compare(4.5, 9, 5.0, 12);
        assert!((f.extracted_kwh_delta + 0.5).abs() < 1e-12);
        assert!((f.extracted_kwh_rel_error - 0.1).abs() < 1e-12);
        assert_eq!(f.offer_delta, -3);
    }

    #[test]
    fn zero_truth_side_stays_finite() {
        let f = FidelityReport::compare(2.0, 3, 0.0, 0);
        assert!(f.extracted_kwh_rel_error.is_finite());
        assert_eq!(f.offer_delta, 3);
        let quiet = FidelityReport::compare(0.0, 0, 0.0, 0);
        assert_eq!(quiet.extracted_kwh_rel_error, 0.0);
        assert_eq!(quiet.extracted_kwh_delta, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let f = FidelityReport::compare(4.5, 9, 5.0, 12);
        let json = serde_json::to_string(&f).unwrap();
        let back: FidelityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
