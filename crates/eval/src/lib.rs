//! # flextract-eval
//!
//! Evaluation suite for the extraction approaches — the part the paper
//! could only sketch ("there exist no real flex-offers in the world,
//! thus, the statistics … of the output of flexibility extraction
//! cannot be evaluated", §3.1). Two measurement angles make it
//! possible here:
//!
//! * [`realism`] — *intrinsic* statistics of an extraction output: the
//!   paper's own candidates (correlation, sparseness, autocorrelation)
//!   plus temporal-dispersion entropy (quantifying §1's criticism that
//!   random offers are "uniformly dispatched within the day") and
//!   peak-hour coverage.
//! * [`accuracy`] — *extrinsic* scoring against the simulator's
//!   ground-truth flexible load: interval-level precision/recall of the
//!   extracted energy.
//!
//! [`fig5`] hosts the canonical Figure-5 day — a 96-interval series
//! engineered so the peak-based walk-through reproduces the paper's
//! numbers digit-for-digit (39.02 kWh total, peaks of 0.47/1.5/0.48/
//! 0.48/1.85/2.22/5.47/0.48 kWh, 1.951 kWh filter, 29 %/71 %
//! probabilities).
//!
//! [`experiments`] wires everything into the E5–E9 experiment runners
//! indexed in `DESIGN.md`, each returning a rendered table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod experiments;
pub mod fidelity;
pub mod fig5;
pub mod realism;

pub use accuracy::GroundTruthScore;
pub use fidelity::FidelityReport;
pub use fig5::{fig5_day, Fig5Expected, FIG5_EXPECTED};
pub use realism::RealismReport;
