//! Intrinsic realism metrics for extraction outputs.
//!
//! The paper names "correlation, sparseness, autocorrelation" as the
//! statistics by which extraction output *would* be judged if real
//! flex-offers existed (§3.1), and criticises the random baseline for
//! offers "more or less uniformly dispatched within the day" (§1).
//! This module turns both remarks into numbers.

use flextract_core::ExtractionOutput;
use flextract_series::segment::split_whole_days;
use flextract_series::{stats, TimeSeries};
use serde::{Deserialize, Serialize};

/// Intrinsic quality measures of one extraction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealismReport {
    /// Which approach produced the output.
    pub approach: String,
    /// Number of extracted flex-offers.
    pub offer_count: usize,
    /// Extracted energy as a share of the original total.
    pub achieved_share: f64,
    /// Normalised entropy of the offers' start-hour histogram:
    /// 1 = uniformly dispersed (the criticised baseline behaviour),
    /// lower = concentrated where the approach thinks flexibility is.
    pub dispersion_entropy: Option<f64>,
    /// Fraction of extracted energy lying in each day's top-quartile
    /// consumption intervals ("peak coverage"): the peak-based
    /// intuition says flexibility lives there.
    pub peak_coverage: Option<f64>,
    /// Sparseness of the extracted series (fraction of near-zero
    /// intervals) — real flexibility is sparse, not smeared.
    pub extracted_sparseness: f64,
    /// Pearson correlation between the extracted series and the
    /// original consumption (does extracted flexibility follow load?).
    pub load_correlation: Option<f64>,
    /// Day-lag autocorrelation of the *modified* series minus that of
    /// the original: extraction should not destroy the residual's daily
    /// rhythm (values near 0 are good, strongly negative means the
    /// residual lost its structure).
    pub residual_autocorr_delta: Option<f64>,
    /// Mean start-time flexibility of the offers, in hours.
    pub mean_time_flexibility_h: f64,
    /// Mean per-offer extracted energy (kWh).
    pub mean_offer_energy_kwh: f64,
}

impl RealismReport {
    /// Measure `output` against the original input series.
    pub fn measure(output: &ExtractionOutput, original: &TimeSeries) -> Self {
        let offers = &output.flex_offers;
        let offer_count = offers.len();

        // Start-hour histogram entropy.
        let dispersion_entropy = if offer_count >= 2 {
            let mut hist = [0.0_f64; 24];
            for o in offers {
                hist[o.earliest_start().time().hour as usize] += 1.0;
            }
            stats::normalized_entropy(&hist)
        } else {
            None
        };

        // Peak coverage: top-quartile intervals per day.
        let per_day = original.resolution().intervals_per_day();
        let q = 0.75;
        let mut in_peak = 0.0;
        let mut total_extracted = 0.0;
        let mut any_day = false;
        for day in split_whole_days(original) {
            any_day = true;
            let Some(cut) = stats::quantile(day.values(), q) else {
                continue;
            };
            for (i, &c) in day.values().iter().enumerate() {
                let t = day.timestamp_of(i);
                if let Some(e) = output.extracted_series.value_at(t) {
                    total_extracted += e;
                    if c >= cut {
                        in_peak += e;
                    }
                }
            }
        }
        let peak_coverage = if any_day && total_extracted > 0.0 {
            Some(in_peak / total_extracted)
        } else {
            None
        };

        let extracted_sparseness = stats::sparseness(output.extracted_series.values(), 1e-6);
        let load_correlation = stats::pearson(output.extracted_series.values(), original.values());
        let residual_autocorr_delta = match (
            stats::autocorrelation(output.modified_series.values(), per_day),
            stats::autocorrelation(original.values(), per_day),
        ) {
            (Some(m), Some(o)) => Some(m - o),
            _ => None,
        };

        let mean_time_flexibility_h = if offer_count > 0 {
            offers
                .iter()
                .map(|o| o.time_flexibility().as_hours_f64())
                .sum::<f64>()
                / offer_count as f64
        } else {
            0.0
        };
        let mean_offer_energy_kwh = if offer_count > 0 {
            output.extracted_energy() / offer_count as f64
        } else {
            0.0
        };

        RealismReport {
            approach: output.approach.to_string(),
            offer_count,
            achieved_share: output.achieved_share(),
            dispersion_entropy,
            peak_coverage,
            extracted_sparseness,
            load_correlation,
            residual_autocorr_delta,
            mean_time_flexibility_h,
            mean_offer_energy_kwh,
        }
    }

    /// Header line matching [`RealismReport::render_row`].
    pub fn header() -> String {
        format!(
            "{:<12} {:>7} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "approach",
            "offers",
            "share%",
            "dispersion",
            "peak-cov",
            "sparse",
            "load-corr",
            "ac-delta",
            "flex(h)"
        )
    }

    /// One aligned table row.
    pub fn render_row(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into())
        }
        format!(
            "{:<12} {:>7} {:>8.2} {:>10} {:>9} {:>9.3} {:>9} {:>9} {:>9.1}\n",
            self.approach,
            self.offer_count,
            self.achieved_share * 100.0,
            opt(self.dispersion_entropy),
            opt(self.peak_coverage),
            self.extracted_sparseness,
            opt(self.load_correlation),
            opt(self.residual_autocorr_delta),
            self.mean_time_flexibility_h,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextract_core::{
        BasicExtractor, ExtractionConfig, ExtractionInput, FlexibilityExtractor, PeakExtractor,
        RandomExtractor,
    };
    use flextract_time::{Resolution, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A peaky multi-day series: quiet nights, one strong evening hump.
    fn peaky_series(days: usize) -> TimeSeries {
        let mut values = Vec::with_capacity(96 * days);
        for _ in 0..days {
            for i in 0..96 {
                let h = i as f64 / 4.0;
                let evening = 1.4 * (-(h - 19.0) * (h - 19.0) / 3.0).exp();
                values.push(0.15 + evening);
            }
        }
        TimeSeries::new(
            "2013-03-18".parse::<Timestamp>().unwrap(),
            Resolution::MIN_15,
            values,
        )
        .unwrap()
    }

    fn measure(ex: &dyn FlexibilityExtractor, series: &TimeSeries, seed: u64) -> RealismReport {
        let out = ex
            .extract(
                &ExtractionInput::household(series),
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap();
        RealismReport::measure(&out, series)
    }

    #[test]
    fn peak_extraction_is_less_dispersed_than_random() {
        let series = peaky_series(20);
        let cfg = ExtractionConfig::default();
        let random = measure(&RandomExtractor::new(cfg.clone()), &series, 1);
        let peak = measure(&PeakExtractor::new(cfg), &series, 1);
        let (dr, dp) = (
            random.dispersion_entropy.unwrap(),
            peak.dispersion_entropy.unwrap(),
        );
        assert!(dp < dr, "peak {dp} should be below random {dr}");
    }

    #[test]
    fn peak_extraction_covers_the_peaks() {
        let series = peaky_series(10);
        let cfg = ExtractionConfig::default();
        let random = measure(&RandomExtractor::new(cfg.clone()), &series, 2);
        let peak = measure(&PeakExtractor::new(cfg), &series, 2);
        assert!(
            peak.peak_coverage.unwrap() > 0.95,
            "{:?}",
            peak.peak_coverage
        );
        assert!(
            peak.peak_coverage.unwrap() > random.peak_coverage.unwrap(),
            "peak {:?} vs random {:?}",
            peak.peak_coverage,
            random.peak_coverage
        );
    }

    #[test]
    fn extracted_series_is_sparser_for_peak_than_random() {
        let series = peaky_series(10);
        let cfg = ExtractionConfig::default();
        let random = measure(&RandomExtractor::new(cfg.clone()), &series, 3);
        let peak = measure(&PeakExtractor::new(cfg), &series, 3);
        assert!(peak.extracted_sparseness > random.extracted_sparseness);
        assert!(
            peak.extracted_sparseness > 0.8,
            "{}",
            peak.extracted_sparseness
        );
    }

    #[test]
    fn share_is_reported() {
        let series = peaky_series(5);
        let basic = measure(
            &BasicExtractor::new(ExtractionConfig::default()),
            &series,
            4,
        );
        assert!(
            (basic.achieved_share - 0.05).abs() < 0.001,
            "{}",
            basic.achieved_share
        );
        assert!(basic.mean_offer_energy_kwh > 0.0);
        assert!(basic.mean_time_flexibility_h >= 0.0);
    }

    #[test]
    fn degenerate_outputs_yield_none_metrics() {
        let series = peaky_series(2);
        let out = BasicExtractor::new(ExtractionConfig::with_share(0.0))
            .extract(
                &ExtractionInput::household(&series),
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap();
        let report = RealismReport::measure(&out, &series);
        assert_eq!(report.offer_count, 0);
        assert_eq!(report.peak_coverage, None);
        assert_eq!(report.mean_offer_energy_kwh, 0.0);
        assert_eq!(report.extracted_sparseness, 1.0);
    }

    #[test]
    fn render_produces_aligned_rows() {
        let series = peaky_series(3);
        let report = measure(&PeakExtractor::new(ExtractionConfig::default()), &series, 5);
        let header = RealismReport::header();
        let row = report.render_row();
        assert!(header.contains("dispersion"));
        assert!(row.starts_with("peak"));
        assert!(!row.contains("NaN"));
    }

    #[test]
    fn serde_round_trip() {
        let series = peaky_series(3);
        let report = measure(&PeakExtractor::new(ExtractionConfig::default()), &series, 6);
        let json = serde_json::to_string(&report).unwrap();
        let back: RealismReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
