//! Property tests for the civil-time substrate.

use flextract_time::{CivilDate, Duration, Resolution, TimeRange, Timestamp};
use proptest::prelude::*;

/// Timestamps spanning roughly 1990–2050, which covers every workload in
/// the workspace with margin.
fn arb_timestamp() -> impl Strategy<Value = Timestamp> {
    (-(10 * 366 * 1440_i64)..(50 * 366 * 1440)).prop_map(Timestamp::from_minutes)
}

fn arb_resolution() -> impl Strategy<Value = Resolution> {
    prop_oneof![
        Just(Resolution::MIN_1),
        Just(Resolution::MIN_5),
        Just(Resolution::MIN_15),
        Just(Resolution::MIN_30),
        Just(Resolution::HOUR_1),
        Just(Resolution::DAY),
    ]
}

proptest! {
    #[test]
    fn civil_round_trip(t in arb_timestamp()) {
        let back = Timestamp::from_civil(t.civil());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn date_round_trip(days in -40_000_i64..40_000) {
        let date = CivilDate::from_days_since_unix_epoch(days);
        prop_assert_eq!(date.days_since_unix_epoch(), days);
        // Re-validating through the checked constructor must agree.
        let checked = CivilDate::new(date.year, date.month, date.day).unwrap();
        prop_assert_eq!(checked, date);
    }

    #[test]
    fn display_parse_round_trip(t in arb_timestamp()) {
        let shown = t.to_string();
        let parsed: Timestamp = shown.parse().unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn add_then_subtract_is_identity(t in arb_timestamp(), m in -1_000_000_i64..1_000_000) {
        let d = Duration::minutes(m);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
    }

    #[test]
    fn floor_ceil_bracket(t in arb_timestamp(), res in arb_resolution()) {
        let lo = t.floor_to(res);
        let hi = t.ceil_to(res);
        prop_assert!(lo <= t && t <= hi);
        prop_assert!(lo.is_aligned(res));
        prop_assert!(hi.is_aligned(res));
        prop_assert!((hi - lo).as_minutes() == 0 || (hi - lo) == res.interval());
    }

    #[test]
    fn weekday_cycles_every_seven_days(t in arb_timestamp()) {
        let next_week = t + Duration::weeks(1);
        prop_assert_eq!(t.day_of_week(), next_week.day_of_week());
        let tomorrow = t + Duration::days(1);
        prop_assert_eq!(t.day_of_week().next(), tomorrow.day_of_week());
    }

    #[test]
    fn split_days_partitions(t in arb_timestamp(), len_min in 0_i64..(10 * 1440)) {
        let range = TimeRange::starting_at(t, Duration::minutes(len_min)).unwrap();
        let days = range.split_days();
        let total: Duration = days.iter().map(|d| d.duration()).sum();
        prop_assert_eq!(total, range.duration());
        for pair in days.windows(2) {
            prop_assert_eq!(pair[0].end(), pair[1].start());
            // Interior boundaries are midnights.
            prop_assert_eq!(pair[1].start().minute_of_day(), 0);
        }
        if let (Some(first), Some(last)) = (days.first(), days.last()) {
            prop_assert_eq!(first.start(), range.start());
            prop_assert_eq!(last.end(), range.end());
        }
    }

    #[test]
    fn split_chunks_partitions(t in arb_timestamp(), len_min in 1_i64..2000, chunk_min in 1_i64..500) {
        let range = TimeRange::starting_at(t, Duration::minutes(len_min)).unwrap();
        let chunks = range.split_chunks(Duration::minutes(chunk_min));
        let total: Duration = chunks.iter().map(|c| c.duration()).sum();
        prop_assert_eq!(total, range.duration());
        for c in &chunks[..chunks.len().saturating_sub(1)] {
            prop_assert_eq!(c.duration(), Duration::minutes(chunk_min));
        }
    }

    #[test]
    fn intersect_is_commutative_and_contained(
        a in arb_timestamp(), la in 0_i64..5000,
        b in arb_timestamp(), lb in 0_i64..5000,
    ) {
        let ra = TimeRange::starting_at(a, Duration::minutes(la)).unwrap();
        let rb = TimeRange::starting_at(b, Duration::minutes(lb)).unwrap();
        prop_assert_eq!(ra.intersect(rb), rb.intersect(ra));
        if let Some(ix) = ra.intersect(rb) {
            prop_assert!(ra.contains_range(ix));
            prop_assert!(rb.contains_range(ix));
            prop_assert!(!ix.is_empty());
        }
        // Hull always contains both.
        let hull = ra.hull(rb);
        prop_assert!(hull.contains_range(ra));
        prop_assert!(hull.contains_range(rb));
    }

    #[test]
    fn minute_of_day_is_consistent(t in arb_timestamp()) {
        let c = t.civil();
        prop_assert_eq!(t.minute_of_day(), c.time.minute_of_day());
        prop_assert_eq!(t.start_of_day() + Duration::minutes(t.minute_of_day() as i64), t);
    }
}
