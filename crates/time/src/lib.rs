//! # flextract-time
//!
//! Civil-time substrate for the `flextract` workspace.
//!
//! The MIRABEL pipeline reasons about energy in *fixed-width intervals*
//! (typically 15 minutes) anchored to civil wall-clock time: flex-offers
//! say "start between 10 PM and 5 AM", tariffs switch at fixed hours,
//! appliance schedules differ between weekdays and weekends. This crate
//! provides exactly that vocabulary — nothing more — so the rest of the
//! workspace never needs an external date-time dependency:
//!
//! * [`Timestamp`] — minute-resolution instant, stored as minutes since
//!   the *flextract epoch* 2000-01-01 00:00 (a Saturday).
//! * [`Duration`] — signed span in whole minutes.
//! * [`CivilDate`], [`CivilTime`], [`CivilDateTime`] — proleptic-Gregorian
//!   calendar views, converted with Howard Hinnant's `days_from_civil` /
//!   `civil_from_days` algorithms (exact over the range used here; leap
//!   years handled).
//! * [`DayOfWeek`] — weekday with weekend classification.
//! * [`Resolution`] — the width of one series interval (1 min … 1 day).
//! * [`TimeRange`] — half-open `[start, end)` interval with set algebra.
//!
//! Time zones are deliberately out of scope: all MIRABEL series in the
//! paper are local-time series from one market area, so the crate models
//! a single implicit local timeline.
//!
//! ```
//! use flextract_time::{Timestamp, Duration, Resolution, DayOfWeek};
//!
//! let t = Timestamp::from_ymd_hm(2013, 3, 18, 22, 0).unwrap();
//! assert_eq!(t.day_of_week(), DayOfWeek::Monday);
//! let latest_start = t + Duration::hours(7); // 5 AM next day
//! assert_eq!(latest_start.civil().time.hour, 5);
//! assert_eq!(Resolution::MIN_15.intervals_per_day(), 96);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod civil;
mod duration;
mod range;
mod resolution;
mod timestamp;

pub use civil::{CivilDate, CivilDateTime, CivilTime, DayOfWeek};
pub use duration::Duration;
pub use range::TimeRange;
pub use resolution::Resolution;
pub use timestamp::Timestamp;

/// Errors produced when constructing or parsing time values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeError {
    /// A calendar field was outside its valid range (bad month, day,
    /// hour or minute).
    InvalidCivil {
        /// Human-readable description of the offending field.
        what: &'static str,
    },
    /// A string did not match the expected `YYYY-MM-DD[ HH:MM]` layout.
    Parse {
        /// Human-readable description of the parse failure.
        what: &'static str,
    },
    /// A [`TimeRange`] was requested with `end < start`.
    InvertedRange,
    /// A [`Resolution`] was requested that is not a positive divisor of
    /// one day.
    InvalidResolution {
        /// The offending interval length in minutes.
        minutes: i64,
    },
}

impl std::fmt::Display for TimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeError::InvalidCivil { what } => write!(f, "invalid civil field: {what}"),
            TimeError::Parse { what } => write!(f, "parse error: {what}"),
            TimeError::InvertedRange => write!(f, "time range end precedes start"),
            TimeError::InvalidResolution { minutes } => {
                write!(
                    f,
                    "resolution of {minutes} min does not evenly divide a day"
                )
            }
        }
    }
}

impl std::error::Error for TimeError {}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TimeError::InvalidCivil { what: "month 13" };
        assert!(e.to_string().contains("month 13"));
        let e = TimeError::InvalidResolution { minutes: 7 };
        assert!(e.to_string().contains('7'));
        assert!(TimeError::InvertedRange.to_string().contains("precedes"));
        let e = TimeError::Parse {
            what: "missing colon",
        };
        assert!(e.to_string().contains("missing colon"));
    }
}
