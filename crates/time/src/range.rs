//! Half-open time intervals `[start, end)`.

use crate::{Duration, Resolution, TimeError, Timestamp};
use serde::{Deserialize, Serialize};

/// A half-open interval of time, `start` inclusive, `end` exclusive.
///
/// Used throughout the workspace for flex-offer start windows, tariff
/// periods, extraction periods and series spans. Empty ranges
/// (`start == end`) are valid and behave as the empty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    start: Timestamp,
    end: Timestamp,
}

impl TimeRange {
    /// A range from `start` (inclusive) to `end` (exclusive).
    pub fn new(start: Timestamp, end: Timestamp) -> Result<Self, TimeError> {
        if end < start {
            return Err(TimeError::InvertedRange);
        }
        Ok(TimeRange { start, end })
    }

    /// A range of the given non-negative length starting at `start`.
    pub fn starting_at(start: Timestamp, len: Duration) -> Result<Self, TimeError> {
        if len.is_negative() {
            return Err(TimeError::InvertedRange);
        }
        Ok(TimeRange {
            start,
            end: start + len,
        })
    }

    /// The empty range anchored at `start` — infallible, since an
    /// empty range can never be inverted. The canonical way to collapse
    /// a selection to nothing (e.g. stacking disjoint slices).
    pub fn empty_at(start: Timestamp) -> Self {
        TimeRange { start, end: start }
    }

    /// The full civil day containing `t` (midnight to midnight).
    pub fn day_of(t: Timestamp) -> Self {
        let start = t.start_of_day();
        TimeRange {
            start,
            end: start + Duration::DAY,
        }
    }

    /// Inclusive start.
    pub fn start(self) -> Timestamp {
        self.start
    }

    /// Exclusive end.
    pub fn end(self) -> Timestamp {
        self.end
    }

    /// Length of the range.
    pub fn duration(self) -> Duration {
        self.end - self.start
    }

    /// `true` if the range contains no instants.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// `true` if `t` lies inside `[start, end)`.
    pub fn contains(self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// `true` if `other` lies entirely inside this range.
    pub fn contains_range(self, other: TimeRange) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// The overlap of two ranges, or `None` if they are disjoint
    /// (touching ranges overlap in the empty set → `None`).
    pub fn intersect(self, other: TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeRange { start, end })
        } else {
            None
        }
    }

    /// `true` if the two ranges share at least one instant.
    pub fn overlaps(self, other: TimeRange) -> bool {
        self.intersect(other).is_some()
    }

    /// The smallest range covering both inputs.
    pub fn hull(self, other: TimeRange) -> TimeRange {
        TimeRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Shift the whole range by `d`.
    pub fn shift(self, d: Duration) -> TimeRange {
        TimeRange {
            start: self.start + d,
            end: self.end + d,
        }
    }

    /// Widen to the enclosing interval boundaries of `res`
    /// (floor the start, ceil the end).
    pub fn align_outward(self, res: Resolution) -> TimeRange {
        TimeRange {
            start: self.start.floor_to(res),
            end: self.end.ceil_to(res),
        }
    }

    /// Number of whole `res` intervals in the range (the range must be
    /// aligned; use [`TimeRange::align_outward`] first if unsure).
    pub fn interval_count(self, res: Resolution) -> usize {
        (self.duration().as_minutes() / res.minutes()).max(0) as usize
    }

    /// Iterate over the starts of consecutive `res`-wide intervals
    /// covering the range, beginning at `start` (which should be
    /// aligned for meaningful grids).
    pub fn iter_intervals(self, res: Resolution) -> impl Iterator<Item = Timestamp> {
        let step = res.minutes();
        let start = self.start.as_minutes();
        let n = ((self.end.as_minutes() - start).max(0) + step - 1) / step;
        (0..n).map(move |i| Timestamp::from_minutes(start + i * step))
    }

    /// Split into consecutive civil days; the first and last pieces may
    /// be partial days.
    pub fn split_days(self) -> Vec<TimeRange> {
        let mut out = Vec::new();
        let mut cur = self.start;
        while cur < self.end {
            let day_end = cur.start_of_day() + Duration::DAY;
            let end = day_end.min(self.end);
            out.push(TimeRange { start: cur, end });
            cur = end;
        }
        out
    }

    /// Split into consecutive chunks of length `len` (the last chunk may
    /// be shorter). `len` must be positive.
    pub fn split_chunks(self, len: Duration) -> Vec<TimeRange> {
        assert!(len.as_minutes() > 0, "chunk length must be positive");
        let mut out = Vec::with_capacity(
            (self.duration().as_minutes() / len.as_minutes() + 1).max(1) as usize,
        );
        let mut cur = self.start;
        while cur < self.end {
            let end = (cur + len).min(self.end);
            out.push(TimeRange { start: cur, end });
            cur = end;
        }
        out
    }
}

impl std::fmt::Display for TimeRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn r(a: &str, b: &str) -> TimeRange {
        TimeRange::new(ts(a), ts(b)).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let range = r("2013-03-18 10:00", "2013-03-18 12:00");
        assert_eq!(range.duration(), Duration::hours(2));
        assert!(!range.is_empty());
        assert!(TimeRange::new(ts("2013-03-18 12:00"), ts("2013-03-18 10:00")).is_err());
        let empty = TimeRange::new(ts("2013-03-18 10:00"), ts("2013-03-18 10:00")).unwrap();
        assert!(empty.is_empty());
        let by_len = TimeRange::starting_at(ts("2013-03-18 10:00"), Duration::hours(2)).unwrap();
        assert_eq!(by_len, range);
        assert!(TimeRange::starting_at(ts("2013-03-18 10:00"), Duration::minutes(-1)).is_err());
    }

    #[test]
    fn day_of_covers_midnight_to_midnight() {
        let d = TimeRange::day_of(ts("2013-03-18 14:45"));
        assert_eq!(d.start(), ts("2013-03-18"));
        assert_eq!(d.end(), ts("2013-03-19"));
        assert_eq!(d.interval_count(Resolution::MIN_15), 96);
    }

    #[test]
    fn containment_is_half_open() {
        let range = r("2013-03-18 10:00", "2013-03-18 12:00");
        assert!(range.contains(ts("2013-03-18 10:00")));
        assert!(range.contains(ts("2013-03-18 11:59")));
        assert!(!range.contains(ts("2013-03-18 12:00")));
        assert!(!range.contains(ts("2013-03-18 09:59")));
    }

    #[test]
    fn contains_range_accepts_empty_anywhere() {
        let range = r("2013-03-18 10:00", "2013-03-18 12:00");
        let empty = r("2013-03-20 00:00", "2013-03-20 00:00");
        assert!(range.contains_range(empty));
        assert!(range.contains_range(r("2013-03-18 10:30", "2013-03-18 11:00")));
        assert!(!range.contains_range(r("2013-03-18 11:30", "2013-03-18 12:30")));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = r("2013-03-18 10:00", "2013-03-18 12:00");
        let b = r("2013-03-18 11:00", "2013-03-18 13:00");
        let c = r("2013-03-18 12:00", "2013-03-18 13:00"); // touches a
        assert_eq!(
            a.intersect(b),
            Some(r("2013-03-18 11:00", "2013-03-18 12:00"))
        );
        assert!(a.overlaps(b));
        assert_eq!(a.intersect(c), None);
        assert!(!a.overlaps(c));
    }

    #[test]
    fn hull_and_shift() {
        let a = r("2013-03-18 10:00", "2013-03-18 11:00");
        let b = r("2013-03-18 13:00", "2013-03-18 14:00");
        assert_eq!(a.hull(b), r("2013-03-18 10:00", "2013-03-18 14:00"));
        assert_eq!(
            a.shift(Duration::hours(24)),
            r("2013-03-19 10:00", "2013-03-19 11:00")
        );
    }

    #[test]
    fn alignment_widens_outward() {
        let raw = r("2013-03-18 10:07", "2013-03-18 11:52");
        let aligned = raw.align_outward(Resolution::MIN_15);
        assert_eq!(aligned, r("2013-03-18 10:00", "2013-03-18 12:00"));
        assert_eq!(aligned.interval_count(Resolution::MIN_15), 8);
    }

    #[test]
    fn interval_iteration() {
        let range = r("2013-03-18 10:00", "2013-03-18 11:00");
        let starts: Vec<_> = range.iter_intervals(Resolution::MIN_15).collect();
        assert_eq!(starts.len(), 4);
        assert_eq!(starts[0], ts("2013-03-18 10:00"));
        assert_eq!(starts[3], ts("2013-03-18 10:45"));
        // Partial trailing interval still yields a start.
        let ragged = r("2013-03-18 10:00", "2013-03-18 10:20");
        assert_eq!(ragged.iter_intervals(Resolution::MIN_15).count(), 2);
        let empty = r("2013-03-18 10:00", "2013-03-18 10:00");
        assert_eq!(empty.iter_intervals(Resolution::MIN_15).count(), 0);
    }

    #[test]
    fn split_days_handles_partial_edges() {
        let range = r("2013-03-18 18:00", "2013-03-20 06:00");
        let days = range.split_days();
        assert_eq!(days.len(), 3);
        assert_eq!(days[0], r("2013-03-18 18:00", "2013-03-19 00:00"));
        assert_eq!(days[1], r("2013-03-19 00:00", "2013-03-20 00:00"));
        assert_eq!(days[2], r("2013-03-20 00:00", "2013-03-20 06:00"));
    }

    #[test]
    fn split_chunks_covers_range_exactly() {
        let range = r("2013-03-18 00:00", "2013-03-18 20:00");
        let chunks = range.split_chunks(Duration::hours(6));
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3].duration(), Duration::hours(2)); // ragged tail
        let total: Duration = chunks.iter().map(|c| c.duration()).sum();
        assert_eq!(total, range.duration());
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].end(), pair[1].start());
        }
    }

    #[test]
    fn display_format() {
        let range = r("2013-03-18 10:00", "2013-03-18 12:00");
        assert_eq!(range.to_string(), "[2013-03-18 10:00 .. 2013-03-18 12:00)");
    }
}
