//! Interval widths for fixed-resolution series.

use crate::{Duration, TimeError};
use serde::{Deserialize, Serialize};

/// The width of one interval in a fixed-resolution energy series.
///
/// A `Resolution` is a positive number of minutes that evenly divides one
/// day, so every day contains a whole number of intervals and interval
/// boundaries are stable across days. MIRABEL's market operates on
/// 15-minute intervals ([`Resolution::MIN_15`]); the appliance-level
/// extraction approaches need finer granularity (the paper notes the
/// appliance profile "granularity must be even smaller than 15 min").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Resolution {
    minutes: u32,
}

impl Resolution {
    /// One-minute intervals — the simulator's native granularity.
    pub const MIN_1: Resolution = Resolution { minutes: 1 };
    /// Five-minute intervals.
    pub const MIN_5: Resolution = Resolution { minutes: 5 };
    /// Fifteen-minute intervals — the MIRABEL market granularity.
    pub const MIN_15: Resolution = Resolution { minutes: 15 };
    /// Thirty-minute intervals.
    pub const MIN_30: Resolution = Resolution { minutes: 30 };
    /// Hourly intervals.
    pub const HOUR_1: Resolution = Resolution { minutes: 60 };
    /// Daily intervals.
    pub const DAY: Resolution = Resolution { minutes: 24 * 60 };

    /// A resolution of `minutes` per interval. Must be positive and
    /// divide 1440 evenly.
    pub fn from_minutes(minutes: i64) -> Result<Self, TimeError> {
        if minutes <= 0 || (24 * 60) % minutes != 0 {
            return Err(TimeError::InvalidResolution { minutes });
        }
        Ok(Resolution {
            minutes: minutes as u32,
        })
    }

    /// Interval width in minutes.
    pub const fn minutes(self) -> i64 {
        self.minutes as i64
    }

    /// Interval width as a [`Duration`].
    pub const fn interval(self) -> Duration {
        Duration::minutes(self.minutes as i64)
    }

    /// Number of intervals in one day.
    pub const fn intervals_per_day(self) -> usize {
        (24 * 60 / self.minutes) as usize
    }

    /// Number of intervals in one hour (zero if coarser than hourly).
    pub const fn intervals_per_hour(self) -> usize {
        (60 / self.minutes) as usize
    }

    /// Interval width in fractional hours (e.g. 0.25 for 15 min) —
    /// the factor converting average kW power to kWh-per-interval.
    pub fn hours_f64(self) -> f64 {
        self.minutes as f64 / 60.0
    }

    /// `true` if `self` can be reached from `finer` by merging whole
    /// intervals (i.e. `finer` divides `self`).
    pub fn is_multiple_of(self, finer: Resolution) -> bool {
        self.minutes.is_multiple_of(finer.minutes)
    }

    /// How many `finer` intervals make up one `self` interval.
    ///
    /// Returns `None` unless [`Resolution::is_multiple_of`] holds.
    pub fn ratio_to(self, finer: Resolution) -> Option<usize> {
        if self.is_multiple_of(finer) {
            Some((self.minutes / finer.minutes) as usize)
        } else {
            None
        }
    }
}

impl Default for Resolution {
    /// 15 minutes — the MIRABEL market granularity.
    fn default() -> Self {
        Resolution::MIN_15
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.minutes.is_multiple_of(60) {
            write!(f, "{}h", self.minutes / 60)
        } else {
            write!(f, "{}min", self.minutes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_resolutions_divide_the_day() {
        for r in [
            Resolution::MIN_1,
            Resolution::MIN_5,
            Resolution::MIN_15,
            Resolution::MIN_30,
            Resolution::HOUR_1,
            Resolution::DAY,
        ] {
            assert_eq!(r.intervals_per_day() as i64 * r.minutes(), 24 * 60);
        }
        assert_eq!(Resolution::MIN_15.intervals_per_day(), 96);
        assert_eq!(Resolution::MIN_1.intervals_per_day(), 1440);
        assert_eq!(Resolution::HOUR_1.intervals_per_hour(), 1);
        assert_eq!(Resolution::MIN_15.intervals_per_hour(), 4);
    }

    #[test]
    fn from_minutes_validates() {
        assert!(Resolution::from_minutes(0).is_err());
        assert!(Resolution::from_minutes(-15).is_err());
        assert!(Resolution::from_minutes(7).is_err()); // 1440 % 7 != 0
        assert_eq!(Resolution::from_minutes(15).unwrap(), Resolution::MIN_15);
        assert!(Resolution::from_minutes(1440).is_ok());
        assert!(Resolution::from_minutes(2880).is_err()); // > 1 day
    }

    #[test]
    fn ratio_and_multiples() {
        assert!(Resolution::MIN_15.is_multiple_of(Resolution::MIN_5));
        assert!(!Resolution::MIN_15.is_multiple_of(Resolution::MIN_30));
        assert_eq!(Resolution::MIN_15.ratio_to(Resolution::MIN_1), Some(15));
        assert_eq!(Resolution::HOUR_1.ratio_to(Resolution::MIN_15), Some(4));
        assert_eq!(Resolution::MIN_15.ratio_to(Resolution::MIN_30), None);
    }

    #[test]
    fn kwh_conversion_factor() {
        assert!((Resolution::MIN_15.hours_f64() - 0.25).abs() < 1e-12);
        assert!((Resolution::HOUR_1.hours_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(Resolution::MIN_15.to_string(), "15min");
        assert_eq!(Resolution::HOUR_1.to_string(), "1h");
        assert_eq!(Resolution::DAY.to_string(), "24h");
    }

    #[test]
    fn default_is_market_granularity() {
        assert_eq!(Resolution::default(), Resolution::MIN_15);
    }

    #[test]
    fn interval_duration_matches() {
        assert_eq!(Resolution::MIN_15.interval(), Duration::minutes(15));
    }
}
