//! Proleptic-Gregorian calendar types and conversions.
//!
//! The date ↔ day-number conversions are Howard Hinnant's well-known
//! branch-light algorithms (`days_from_civil` / `civil_from_days`),
//! exact for every representable date. Day numbers count days since
//! 1970-01-01 (the Unix civil epoch) so the weekday computation can use
//! the known anchor "1970-01-01 was a Thursday".

use crate::TimeError;
use serde::{Deserialize, Serialize};

/// Day of the week, ISO-8601 ordering (`Monday` = 1 … `Sunday` = 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DayOfWeek {
    /// ISO weekday 1.
    Monday,
    /// ISO weekday 2.
    Tuesday,
    /// ISO weekday 3.
    Wednesday,
    /// ISO weekday 4.
    Thursday,
    /// ISO weekday 5.
    Friday,
    /// ISO weekday 6.
    Saturday,
    /// ISO weekday 7.
    Sunday,
}

impl DayOfWeek {
    /// All seven weekdays in ISO order, Monday first.
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// ISO-8601 weekday number: Monday = 1 … Sunday = 7.
    pub fn iso_number(self) -> u8 {
        self as u8 + 1
    }

    /// Index into [`DayOfWeek::ALL`] (Monday = 0 … Sunday = 6).
    pub fn index(self) -> usize {
        self as usize
    }

    /// `true` for Saturday and Sunday.
    ///
    /// The schedule-based extraction approach (paper §4.2) keys appliance
    /// usage on exactly this distinction ("the dishwasher is more used
    /// during the weekends").
    pub fn is_weekend(self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }

    /// Weekday for a Monday-first index reduced modulo 7, so every
    /// `usize` maps to a day and no lookup can go out of bounds.
    fn from_index_mod7(idx: usize) -> Self {
        match idx % 7 {
            0 => DayOfWeek::Monday,
            1 => DayOfWeek::Tuesday,
            2 => DayOfWeek::Wednesday,
            3 => DayOfWeek::Thursday,
            4 => DayOfWeek::Friday,
            5 => DayOfWeek::Saturday,
            _ => DayOfWeek::Sunday,
        }
    }

    /// Weekday from days since 1970-01-01, which was a Thursday.
    pub(crate) fn from_days_since_unix_epoch(days: i64) -> Self {
        // 1970-01-01 is Thursday → index 3 in Monday-first ordering.
        Self::from_index_mod7((days + 3).rem_euclid(7) as usize)
    }

    /// The weekday following `self`, wrapping Sunday → Monday.
    pub fn next(self) -> Self {
        Self::from_index_mod7(self.index() + 1)
    }
}

impl std::fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DayOfWeek::Monday => "Monday",
            DayOfWeek::Tuesday => "Tuesday",
            DayOfWeek::Wednesday => "Wednesday",
            DayOfWeek::Thursday => "Thursday",
            DayOfWeek::Friday => "Friday",
            DayOfWeek::Saturday => "Saturday",
            DayOfWeek::Sunday => "Sunday",
        };
        f.write_str(name)
    }
}

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CivilDate {
    /// Gregorian year (e.g. 2013).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31 (validated against the month and leap years).
    pub day: u8,
}

impl CivilDate {
    /// Construct a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, TimeError> {
        if !(1..=12).contains(&month) {
            return Err(TimeError::InvalidCivil {
                what: "month outside 1..=12",
            });
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(TimeError::InvalidCivil {
                what: "day outside month length",
            });
        }
        Ok(CivilDate { year, month, day })
    }

    /// Days since 1970-01-01 (negative before it).
    pub fn days_since_unix_epoch(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Date from days since 1970-01-01.
    pub fn from_days_since_unix_epoch(days: i64) -> Self {
        let (year, month, day) = civil_from_days(days);
        CivilDate { year, month, day }
    }

    /// Weekday of this date.
    pub fn day_of_week(self) -> DayOfWeek {
        DayOfWeek::from_days_since_unix_epoch(self.days_since_unix_epoch())
    }

    /// The next calendar day.
    pub fn succ(self) -> Self {
        Self::from_days_since_unix_epoch(self.days_since_unix_epoch() + 1)
    }
}

impl std::fmt::Display for CivilDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A wall-clock time of day with minute resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CivilTime {
    /// Hour, 0–23.
    pub hour: u8,
    /// Minute, 0–59.
    pub minute: u8,
}

impl CivilTime {
    /// Midnight (00:00).
    pub const MIDNIGHT: CivilTime = CivilTime { hour: 0, minute: 0 };

    /// Construct a validated time of day.
    pub fn new(hour: u8, minute: u8) -> Result<Self, TimeError> {
        if hour > 23 {
            return Err(TimeError::InvalidCivil {
                what: "hour outside 0..=23",
            });
        }
        if minute > 59 {
            return Err(TimeError::InvalidCivil {
                what: "minute outside 0..=59",
            });
        }
        Ok(CivilTime { hour, minute })
    }

    /// Minutes since midnight, 0–1439.
    pub fn minute_of_day(self) -> u32 {
        self.hour as u32 * 60 + self.minute as u32
    }

    /// Time of day from minutes since midnight (must be < 1440).
    pub fn from_minute_of_day(m: u32) -> Result<Self, TimeError> {
        if m >= 24 * 60 {
            return Err(TimeError::InvalidCivil {
                what: "minute-of-day outside 0..1440",
            });
        }
        Ok(CivilTime {
            hour: (m / 60) as u8,
            minute: (m % 60) as u8,
        })
    }
}

impl std::fmt::Display for CivilTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02}:{:02}", self.hour, self.minute)
    }
}

/// A calendar date paired with a wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CivilDateTime {
    /// The date component.
    pub date: CivilDate,
    /// The time-of-day component.
    pub time: CivilTime,
}

impl CivilDateTime {
    /// Construct from validated parts.
    pub fn new(date: CivilDate, time: CivilTime) -> Self {
        CivilDateTime { date, time }
    }
}

impl std::fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.date, self.time)
    }
}

/// `true` if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - i64::from(m <= 2);
    let era = y.div_euclid(400);
    let yoe = (y - era * 400) as u64; // [0, 399]
    let m = m as u64;
    let d = d as u64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_epoch_is_day_zero_and_thursday() {
        let d = CivilDate::new(1970, 1, 1).unwrap();
        assert_eq!(d.days_since_unix_epoch(), 0);
        assert_eq!(d.day_of_week(), DayOfWeek::Thursday);
    }

    #[test]
    fn flextract_epoch_is_a_saturday() {
        let d = CivilDate::new(2000, 1, 1).unwrap();
        assert_eq!(d.days_since_unix_epoch(), 10_957);
        assert_eq!(d.day_of_week(), DayOfWeek::Saturday);
    }

    #[test]
    fn edbt_2013_opening_day_is_a_monday() {
        // The workshop ran March 18-22, 2013 in Genoa.
        let d = CivilDate::new(2013, 3, 18).unwrap();
        assert_eq!(d.day_of_week(), DayOfWeek::Monday);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000)); // divisible by 400
        assert!(!is_leap_year(1900)); // divisible by 100 only
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(2013));
    }

    #[test]
    fn month_lengths_respect_leap_years() {
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2013, 2), 28);
        assert_eq!(days_in_month(2013, 1), 31);
        assert_eq!(days_in_month(2013, 4), 30);
        assert_eq!(days_in_month(2013, 13), 0);
    }

    #[test]
    fn date_validation_rejects_bad_fields() {
        assert!(CivilDate::new(2013, 0, 1).is_err());
        assert!(CivilDate::new(2013, 13, 1).is_err());
        assert!(CivilDate::new(2013, 2, 29).is_err());
        assert!(CivilDate::new(2012, 2, 29).is_ok());
        assert!(CivilDate::new(2013, 4, 31).is_err());
        assert!(CivilDate::new(2013, 4, 0).is_err());
    }

    #[test]
    fn time_validation_rejects_bad_fields() {
        assert!(CivilTime::new(24, 0).is_err());
        assert!(CivilTime::new(0, 60).is_err());
        assert!(CivilTime::new(23, 59).is_ok());
    }

    #[test]
    fn minute_of_day_round_trip() {
        for m in 0..(24 * 60) {
            let t = CivilTime::from_minute_of_day(m).unwrap();
            assert_eq!(t.minute_of_day(), m);
        }
        assert!(CivilTime::from_minute_of_day(1440).is_err());
    }

    #[test]
    fn civil_round_trip_across_boundaries() {
        // Year, century and leap boundaries.
        for &(y, m, d) in &[
            (1999, 12, 31),
            (2000, 1, 1),
            (2000, 2, 29),
            (2000, 3, 1),
            (2012, 2, 29),
            (2013, 3, 18),
            (2100, 2, 28),
            (1970, 1, 1),
            (1969, 12, 31),
        ] {
            let date = CivilDate::new(y, m, d).unwrap();
            let days = date.days_since_unix_epoch();
            assert_eq!(
                CivilDate::from_days_since_unix_epoch(days),
                date,
                "{y}-{m}-{d}"
            );
        }
    }

    #[test]
    fn succ_handles_month_and_year_ends() {
        let d = CivilDate::new(2012, 2, 28).unwrap();
        assert_eq!(d.succ(), CivilDate::new(2012, 2, 29).unwrap());
        let d = CivilDate::new(2013, 12, 31).unwrap();
        assert_eq!(d.succ(), CivilDate::new(2014, 1, 1).unwrap());
    }

    #[test]
    fn weekday_helpers() {
        assert!(DayOfWeek::Saturday.is_weekend());
        assert!(DayOfWeek::Sunday.is_weekend());
        assert!(!DayOfWeek::Wednesday.is_weekend());
        assert_eq!(DayOfWeek::Monday.iso_number(), 1);
        assert_eq!(DayOfWeek::Sunday.iso_number(), 7);
        assert_eq!(DayOfWeek::Sunday.next(), DayOfWeek::Monday);
        assert_eq!(DayOfWeek::Thursday.next(), DayOfWeek::Friday);
    }

    #[test]
    fn display_formats() {
        let dt = CivilDateTime::new(
            CivilDate::new(2013, 3, 18).unwrap(),
            CivilTime::new(9, 5).unwrap(),
        );
        assert_eq!(dt.to_string(), "2013-03-18 09:05");
        assert_eq!(DayOfWeek::Friday.to_string(), "Friday");
    }

    #[test]
    fn consecutive_days_advance_weekday() {
        let mut date = CivilDate::new(2013, 1, 1).unwrap();
        let mut dow = date.day_of_week();
        for _ in 0..500 {
            let next = date.succ();
            assert_eq!(next.day_of_week(), dow.next());
            date = next;
            dow = dow.next();
        }
    }
}
