//! Minute-resolution instants on the flextract timeline.

use crate::civil::{CivilDate, CivilDateTime, CivilTime, DayOfWeek};
use crate::{Duration, Resolution, TimeError};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::str::FromStr;

/// Days between 1970-01-01 and the flextract epoch 2000-01-01.
const EPOCH_OFFSET_DAYS: i64 = 10_957;

/// An instant on the (single, implicit-local) flextract timeline, stored
/// as whole minutes since 2000-01-01 00:00.
///
/// `Timestamp` is a plain `i64` newtype: `Copy`, ordered, hashable, and
/// serialised transparently as its minute count. Subtracting two
/// timestamps yields a [`Duration`]; adding a `Duration` shifts the
/// instant.
///
/// ```
/// use flextract_time::{Timestamp, Duration};
/// let t = Timestamp::from_ymd_hm(2013, 3, 18, 22, 0).unwrap();
/// assert_eq!((t + Duration::hours(9)).to_string(), "2013-03-19 07:00");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The flextract epoch, 2000-01-01 00:00 (a Saturday).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Instant from raw minutes since the flextract epoch.
    pub const fn from_minutes(m: i64) -> Self {
        Timestamp(m)
    }

    /// Raw minutes since the flextract epoch.
    pub const fn as_minutes(self) -> i64 {
        self.0
    }

    /// Instant at `hour:minute` on the given civil date.
    pub fn from_ymd_hm(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
    ) -> Result<Self, TimeError> {
        let date = CivilDate::new(year, month, day)?;
        let time = CivilTime::new(hour, minute)?;
        Ok(Self::from_civil(CivilDateTime::new(date, time)))
    }

    /// Midnight at the start of the given civil date.
    pub fn from_date(date: CivilDate) -> Self {
        let days = date.days_since_unix_epoch() - EPOCH_OFFSET_DAYS;
        Timestamp(days * 24 * 60)
    }

    /// Instant from a full civil date-time.
    pub fn from_civil(dt: CivilDateTime) -> Self {
        Self::from_date(dt.date) + Duration::minutes(dt.time.minute_of_day() as i64)
    }

    /// Civil date-time view of this instant.
    pub fn civil(self) -> CivilDateTime {
        let days = self.0.div_euclid(24 * 60);
        let mod_minutes = self.0.rem_euclid(24 * 60) as u32;
        CivilDateTime::new(
            CivilDate::from_days_since_unix_epoch(days + EPOCH_OFFSET_DAYS),
            CivilTime::from_minute_of_day(mod_minutes)
                .expect("rem_euclid(1440) is always a valid minute-of-day"),
        )
    }

    /// The calendar date containing this instant.
    pub fn date(self) -> CivilDate {
        self.civil().date
    }

    /// The wall-clock time of day of this instant.
    pub fn time(self) -> CivilTime {
        self.civil().time
    }

    /// Weekday of this instant.
    pub fn day_of_week(self) -> DayOfWeek {
        let days = self.0.div_euclid(24 * 60) + EPOCH_OFFSET_DAYS;
        DayOfWeek::from_days_since_unix_epoch(days)
    }

    /// Minutes since midnight of this instant's day, 0–1439.
    pub fn minute_of_day(self) -> u32 {
        self.0.rem_euclid(24 * 60) as u32
    }

    /// Midnight at the start of this instant's day.
    pub fn start_of_day(self) -> Self {
        Timestamp(self.0.div_euclid(24 * 60) * 24 * 60)
    }

    /// Round *down* to the start of the interval of width `res`
    /// containing this instant (intervals are anchored at midnight).
    pub fn floor_to(self, res: Resolution) -> Self {
        let w = res.minutes();
        Timestamp(self.0.div_euclid(w) * w)
    }

    /// Round *up* to the next interval boundary of width `res` (identity
    /// if already on a boundary).
    pub fn ceil_to(self, res: Resolution) -> Self {
        let w = res.minutes();
        Timestamp(self.0.div_euclid(w) * w + if self.0.rem_euclid(w) == 0 { 0 } else { w })
    }

    /// `true` if this instant lies exactly on a boundary of `res`.
    pub fn is_aligned(self, res: Resolution) -> bool {
        self.0.rem_euclid(res.minutes()) == 0
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_minutes())
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_minutes();
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.as_minutes())
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.as_minutes();
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration::minutes(self.0 - rhs.0)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.civil())
    }
}

impl FromStr for Timestamp {
    type Err = TimeError;

    /// Parses `YYYY-MM-DD HH:MM` or bare `YYYY-MM-DD` (midnight).
    fn from_str(s: &str) -> Result<Self, TimeError> {
        let s = s.trim();
        let (date_part, time_part) = match s.split_once(' ') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut it = date_part.split('-');
        let year: i32 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(TimeError::Parse { what: "year" })?;
        let month: u8 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(TimeError::Parse { what: "month" })?;
        let day: u8 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(TimeError::Parse { what: "day" })?;
        if it.next().is_some() {
            return Err(TimeError::Parse {
                what: "trailing date fields",
            });
        }
        let (hour, minute) = match time_part {
            None => (0, 0),
            Some(t) => {
                let (h, m) = t.split_once(':').ok_or(TimeError::Parse {
                    what: "missing ':'",
                })?;
                (
                    h.parse().map_err(|_| TimeError::Parse { what: "hour" })?,
                    m.parse().map_err(|_| TimeError::Parse { what: "minute" })?,
                )
            }
        };
        Timestamp::from_ymd_hm(year, month, day, hour, minute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_midnight_2000() {
        let c = Timestamp::EPOCH.civil();
        assert_eq!(c.to_string(), "2000-01-01 00:00");
        assert_eq!(Timestamp::EPOCH.day_of_week(), DayOfWeek::Saturday);
    }

    #[test]
    fn civil_round_trip() {
        let t = Timestamp::from_ymd_hm(2013, 3, 18, 14, 45).unwrap();
        assert_eq!(Timestamp::from_civil(t.civil()), t);
        assert_eq!(t.to_string(), "2013-03-18 14:45");
    }

    #[test]
    fn negative_timestamps_work() {
        // 1999-12-31 23:45 is one quarter-hour before the epoch.
        let t = Timestamp::from_ymd_hm(1999, 12, 31, 23, 45).unwrap();
        assert_eq!(t.as_minutes(), -15);
        assert_eq!(t.minute_of_day(), 23 * 60 + 45);
        assert_eq!(t.civil().to_string(), "1999-12-31 23:45");
    }

    #[test]
    fn duration_arithmetic_crosses_midnight() {
        let t = Timestamp::from_ymd_hm(2013, 3, 18, 22, 0).unwrap();
        let u = t + Duration::hours(9);
        assert_eq!(u.to_string(), "2013-03-19 07:00");
        assert_eq!(u - t, Duration::hours(9));
        let mut v = t;
        v += Duration::hours(1);
        v -= Duration::minutes(30);
        assert_eq!(v.to_string(), "2013-03-18 22:30");
        assert_eq!(
            (t - Duration::days(1)).date(),
            CivilDate::new(2013, 3, 17).unwrap()
        );
    }

    #[test]
    fn day_helpers() {
        let t = Timestamp::from_ymd_hm(2013, 3, 18, 14, 45).unwrap();
        assert_eq!(t.start_of_day().to_string(), "2013-03-18 00:00");
        assert_eq!(t.minute_of_day(), 14 * 60 + 45);
        assert_eq!(t.day_of_week(), DayOfWeek::Monday);
        assert_eq!(t.date(), CivilDate::new(2013, 3, 18).unwrap());
        assert_eq!(t.time(), CivilTime::new(14, 45).unwrap());
    }

    #[test]
    fn floor_and_ceil_to_resolution() {
        let t = Timestamp::from_ymd_hm(2013, 3, 18, 14, 7).unwrap();
        assert_eq!(
            t.floor_to(Resolution::MIN_15).to_string(),
            "2013-03-18 14:00"
        );
        assert_eq!(
            t.ceil_to(Resolution::MIN_15).to_string(),
            "2013-03-18 14:15"
        );
        let aligned = Timestamp::from_ymd_hm(2013, 3, 18, 14, 15).unwrap();
        assert_eq!(aligned.floor_to(Resolution::MIN_15), aligned);
        assert_eq!(aligned.ceil_to(Resolution::MIN_15), aligned);
        assert!(aligned.is_aligned(Resolution::MIN_15));
        assert!(!t.is_aligned(Resolution::MIN_15));
        // Negative side of the epoch floors toward -infinity.
        let neg = Timestamp::from_minutes(-7);
        assert_eq!(
            neg.floor_to(Resolution::MIN_15),
            Timestamp::from_minutes(-15)
        );
        assert_eq!(neg.ceil_to(Resolution::MIN_15), Timestamp::from_minutes(0));
    }

    #[test]
    fn parsing_accepts_date_and_datetime() {
        let t: Timestamp = "2013-03-18 22:00".parse().unwrap();
        assert_eq!(t, Timestamp::from_ymd_hm(2013, 3, 18, 22, 0).unwrap());
        let d: Timestamp = "2013-03-18".parse().unwrap();
        assert_eq!(d, Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).unwrap());
        assert_eq!(d.minute_of_day(), 0);
    }

    #[test]
    fn parsing_rejects_garbage() {
        assert!("".parse::<Timestamp>().is_err());
        assert!("2013".parse::<Timestamp>().is_err());
        assert!("2013-13-01".parse::<Timestamp>().is_err());
        assert!("2013-03-18 25:00".parse::<Timestamp>().is_err());
        assert!("2013-03-18 22".parse::<Timestamp>().is_err());
        assert!("2013-03-18-07 22:00".parse::<Timestamp>().is_err());
        assert!("2013-03-18 2a:00".parse::<Timestamp>().is_err());
    }

    #[test]
    fn serde_is_transparent_minutes() {
        let t = Timestamp::from_minutes(1234);
        assert_eq!(serde_json::to_string(&t).unwrap(), "1234");
        let back: Timestamp = serde_json::from_str("1234").unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn ordering_follows_the_timeline() {
        let a = Timestamp::from_ymd_hm(2013, 3, 18, 0, 0).unwrap();
        let b = Timestamp::from_ymd_hm(2013, 3, 18, 0, 1).unwrap();
        assert!(a < b);
        assert_eq!(b - a, Duration::minutes(1));
    }
}
