//! Signed time spans with whole-minute resolution.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed span of time in whole minutes.
///
/// Minute resolution matches the finest granularity the workspace needs:
/// the paper's appliance profiles are specified at "granularity … even
/// smaller than 15 min" (§4, Table 1) and our simulator bottoms out at
/// one minute.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// One day, 1440 minutes.
    pub const DAY: Duration = Duration(24 * 60);
    /// One hour.
    pub const HOUR: Duration = Duration(60);

    /// A span of `m` minutes (may be negative).
    pub const fn minutes(m: i64) -> Self {
        Duration(m)
    }

    /// A span of `h` hours.
    pub const fn hours(h: i64) -> Self {
        Duration(h * 60)
    }

    /// A span of `d` days.
    pub const fn days(d: i64) -> Self {
        Duration(d * 24 * 60)
    }

    /// A span of `w` weeks.
    pub const fn weeks(w: i64) -> Self {
        Duration(w * 7 * 24 * 60)
    }

    /// Total whole minutes in this span.
    pub const fn as_minutes(self) -> i64 {
        self.0
    }

    /// Total span expressed in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Total span expressed in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / (24.0 * 60.0)
    }

    /// `true` if the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if the span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Absolute value of the span.
    pub const fn abs(self) -> Self {
        Duration(self.0.abs())
    }

    /// Clamp the span into `[lo, hi]`.
    pub fn clamp(self, lo: Duration, hi: Duration) -> Self {
        Duration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Neg for Duration {
    type Output = Duration;
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    /// How many times `rhs` fits in `self` (truncating integer ratio).
    type Output = i64;
    fn div(self, rhs: Duration) -> i64 {
        self.0 / rhs.0
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl std::fmt::Display for Duration {
    /// Renders as `[-]DdHHhMMm`, omitting zero leading components,
    /// e.g. `2h00m`, `1d02h30m`, `45m`, `-15m`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.0;
        let sign = if total < 0 { "-" } else { "" };
        let total = total.abs();
        let days = total / (24 * 60);
        let hours = (total / 60) % 24;
        let minutes = total % 60;
        if days > 0 {
            write!(f, "{sign}{days}d{hours:02}h{minutes:02}m")
        } else if hours > 0 {
            write!(f, "{sign}{hours}h{minutes:02}m")
        } else {
            write!(f, "{sign}{minutes}m")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::hours(2), Duration::minutes(120));
        assert_eq!(Duration::days(1), Duration::hours(24));
        assert_eq!(Duration::weeks(1), Duration::days(7));
        assert_eq!(Duration::DAY, Duration::days(1));
        assert_eq!(Duration::HOUR, Duration::hours(1));
    }

    #[test]
    fn arithmetic() {
        let a = Duration::minutes(90);
        let b = Duration::minutes(30);
        assert_eq!(a + b, Duration::hours(2));
        assert_eq!(a - b, Duration::hours(1));
        assert_eq!(-a, Duration::minutes(-90));
        assert_eq!(a * 2, Duration::hours(3));
        assert_eq!(a / 3, Duration::minutes(30));
        assert_eq!(a / b, 3);
        let mut c = a;
        c += b;
        assert_eq!(c, Duration::hours(2));
        c -= Duration::hours(2);
        assert!(c.is_zero());
    }

    #[test]
    fn predicates_and_abs() {
        assert!(Duration::minutes(-5).is_negative());
        assert!(!Duration::minutes(5).is_negative());
        assert_eq!(Duration::minutes(-5).abs(), Duration::minutes(5));
        assert_eq!(
            Duration::minutes(99).clamp(Duration::ZERO, Duration::HOUR),
            Duration::HOUR
        );
    }

    #[test]
    fn unit_conversions() {
        assert!((Duration::minutes(90).as_hours_f64() - 1.5).abs() < 1e-12);
        assert!((Duration::hours(36).as_days_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Duration = (1..=4).map(Duration::minutes).sum();
        assert_eq!(total, Duration::minutes(10));
    }

    #[test]
    fn display_layouts() {
        assert_eq!(Duration::minutes(45).to_string(), "45m");
        assert_eq!(Duration::hours(2).to_string(), "2h00m");
        assert_eq!(Duration::minutes(150).to_string(), "2h30m");
        assert_eq!(
            (Duration::days(1) + Duration::minutes(150)).to_string(),
            "1d02h30m"
        );
        assert_eq!(Duration::minutes(-15).to_string(), "-15m");
    }

    #[test]
    fn serde_is_transparent() {
        let d = Duration::minutes(135);
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(json, "135");
        let back: Duration = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
