//! The meta-test: the committed tree must pass its own lint gate.
//!
//! This is the same check CI runs via `flextract analyze`, pinned as a
//! plain `cargo test` so the gate cannot be forgotten when the CI
//! config drifts.

use flextract_analyze::{analyze_tree, load_allowlist};
use std::path::Path;

#[test]
fn committed_tree_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allowlist = load_allowlist(&root).expect("analyze.toml must parse");
    let analysis = analyze_tree(&root, &allowlist).expect("workspace must scan");
    assert!(
        analysis.is_clean(),
        "the committed tree has unsuppressed findings — fix them or add a \
         justified suppression to analyze.toml:\n{}",
        analysis.render_text()
    );
    // The gate actually looked at the workspace, and every suppression
    // in analyze.toml is still earning its keep (unused entries would
    // have surfaced as unused-suppression findings above).
    assert!(analysis.files_scanned > 100, "{}", analysis.files_scanned);
    assert!(analysis.suppressed > 0, "{}", analysis.suppressed);
    // The call-graph re-triage must never regress to the pre-semantic
    // budget: the pattern-scan era excused 47 occurrences, and scoping
    // suppressions to witness paths is only honest if it excuses
    // strictly fewer.
    assert!(analysis.suppressed < 47, "{}", analysis.suppressed);
}
