// Sink crate: unchecked indexing, two crates from `Scan::aggregates`.

pub fn at(xs: &[f64], i: usize) -> f64 {
    xs[i]
}
