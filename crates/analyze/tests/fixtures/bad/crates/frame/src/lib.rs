// Fixture: a library file under a panic-surface/float-fold scoped path
// that violates every source-level lint. Never compiled — only lexed by
// the analyze engine's fixture tests. The missing crate-root
// `#![forbid(unsafe_code)]` attribute is itself one of the violations.

use std::collections::HashMap;
use std::time::Instant;

pub fn decode(buf: &[u8]) -> f64 {
    let started = Instant::now();
    let mut seen: HashMap<u32, f64> = HashMap::new();
    let mut rng = rand::thread_rng();
    let first = buf[0];
    let head: u32 = parse_header(buf).unwrap();
    let total = seen.values().copied().sum::<f64>();
    let _ = (started, first, head, rng.gen::<f64>());
    total
}
