// Fixture crate root: missing `#![forbid(unsafe_code)]` on purpose
// (forbid-unsafe) and folding floats ad hoc (float-fold). The public
// `Scan::aggregates` entry reaches a panic sink two crates away, in
// crates/kernel/src/quant.rs — the witness-path acceptance case.

pub struct Scan;

impl Scan {
    pub fn aggregates(&self, xs: &[f64]) -> f64 {
        let total = xs.iter().copied().sum::<f64>();
        total + flextract_series::window::pick(xs, 0)
    }
}
