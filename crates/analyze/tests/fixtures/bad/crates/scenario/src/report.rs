// A golden-feeding constructor that reaches a wall-clock read through
// a private helper — determinism-taint with a one-hop witness — plus a
// detached thread spawn outside the ordered helpers (unordered-spawn).

pub fn summarize(xs: &[f64]) -> ScenarioReport {
    ScenarioReport {
        total: xs.len(),
        stamp: stamp_ms(),
    }
}

fn stamp_ms() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}

pub fn fan_out() {
    std::thread::spawn(|| {});
}

pub struct ScenarioReport {
    pub total: usize,
    pub stamp: u64,
}
