// Middle hop: forwards into the kernel crate. No sink of its own.

pub fn pick(xs: &[f64], i: usize) -> f64 {
    flextract_kernel::quant::at(xs, i)
}
