// Fixture: a vendored build script (its mere presence is a violation)
// that also reaches for a subprocess.
fn main() {
    let _ = std::process::Command::new("curl");
}
