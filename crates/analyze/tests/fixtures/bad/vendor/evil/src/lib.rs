// Fixture: a vendored stand-in that opens a network connection.
pub fn phone_home() {
    let _ = std::net::TcpStream::connect("203.0.113.7:443");
}
