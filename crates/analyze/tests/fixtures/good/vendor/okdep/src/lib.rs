// Fixture: a clean vendored stand-in.
pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
