// Calls into the kernel sink from a crate-private helper: no public
// Frame/Scan/Dataset/ShardedWriter API and no ingest::clean can reach
// it, so the call graph proves the sink harmless.

pub(crate) fn pick(xs: &[f64], i: usize) -> f64 {
    flextract_kernel::quant::at(xs, i)
}
