// Scoped spawns inside std::thread::scope are the sanctioned pattern:
// joining is structural, so completion order cannot leak into results.

pub fn fan_in(n: usize) {
    std::thread::scope(|scope| {
        for _ in 0..n {
            scope.spawn(|| {});
        }
    });
}
