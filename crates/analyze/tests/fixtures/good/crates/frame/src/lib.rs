#![forbid(unsafe_code)]
// Fixture: a clean library file under the strictest lint scope. Every
// forbidden pattern below appears only where the lexer must mask it —
// comments, string literals, raw strings, and #[cfg(test)] regions —
// so the engine must report nothing.
//
// Docs may discuss SystemTime::now(), HashMap iteration and
// thread_rng() freely.

pub fn tidy(values: &[f64]) -> f64 {
    let label = "Instant::now() inside a plain string";
    let raw = r#"rand::thread_rng() and x.unwrap() in a raw string"#;
    let [lo, hi] = [0usize, 1usize];
    let first = values.get(lo).copied().unwrap_or(0.0);
    let second = values.get(hi).copied().unwrap_or(0.0);
    let _ = (label, raw);
    first + second
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_panic_and_index() {
        let xs = vec![1.0f64, 2.0];
        let v = xs.first().copied().unwrap();
        assert!(v + xs[1] > 0.0);
    }
}
