// The very same panic sink as the bad tree — but nothing public on an
// entry type reaches it, so the reachability pass must stay silent.

pub fn at(xs: &[f64], i: usize) -> f64 {
    xs[i]
}
