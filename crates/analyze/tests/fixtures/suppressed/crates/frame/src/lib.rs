#![forbid(unsafe_code)]
// Fixture: exactly one deliberate violation, excused by the sibling
// analyze.toml — exercises the suppression round-trip.

pub fn risky(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap()
}
