#![forbid(unsafe_code)]
// Fixture: exactly one deliberate violation — a panic sink reachable
// from the public `Frame::risky` entry — excused by the sibling
// analyze.toml through a `via`-scoped suppression.

pub struct Frame;

impl Frame {
    pub fn risky(&self, xs: &[f64]) -> f64 {
        xs.first().copied().unwrap()
    }
}
